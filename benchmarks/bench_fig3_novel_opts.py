"""Regenerate Figure 3: execution-time reduction from the novel rewrites.

"Execution time reduction provided by Alternate Elimination optimization,
Pre-Counting optimization, and a combination of both over the classical
eager count optimization" — queries Q4..Q11 under the AnySum scheme (the
only built-in scheme compatible with alternate elimination), baseline
plans using selection pushing + join reordering + eager counting, exactly
as Section 8 describes.
"""

import pytest

from repro.bench.measure import reduction_percent
from repro.bench.reporting import render_bars
from repro.bench.workload import PAPER_QUERIES
from repro.graft.optimizer import OptimizerOptions

from benchmarks.conftest import (
    make_runner,
    median_seconds,
    record_rows,
    write_artifact,
)

QUERIES = sorted(PAPER_QUERIES, key=lambda name: int(name[1:]))

VARIANTS = {
    "eager-count (baseline)": OptimizerOptions(
        pre_counting=False, alternate_elimination=False
    ),
    "alt-elim": OptimizerOptions(
        pre_counting=False, alternate_elimination=True
    ),
    "pre-count": OptimizerOptions(
        pre_counting=True, alternate_elimination=False
    ),
    "combined": OptimizerOptions(
        pre_counting=True, alternate_elimination=True
    ),
}

MEASURED: dict[tuple[str, str], float] = {}


@pytest.mark.parametrize("variant", list(VARIANTS))
@pytest.mark.parametrize("query", QUERIES)
def test_fig3_measure(query, variant, fx, benchmark):
    run = make_runner(fx, fx.queries[query], "anysum", VARIANTS[variant])
    benchmark.pedantic(run, rounds=9, iterations=1, warmup_rounds=1)
    record_rows(benchmark, run)
    MEASURED[(query, variant)] = median_seconds(benchmark)


def test_fig3_report(fx, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    missing = [
        (q, v) for q in QUERIES for v in VARIANTS if (q, v) not in MEASURED
    ]
    if missing:
        pytest.skip(f"measurements missing (run the whole module): {missing}")

    series = {}
    for q in QUERIES:
        base = MEASURED[(q, "eager-count (baseline)")]
        series[q] = {
            "alt-elim reduction": reduction_percent(base, MEASURED[(q, "alt-elim")]),
            "pre-count reduction": reduction_percent(base, MEASURED[(q, "pre-count")]),
            "combined reduction": reduction_percent(base, MEASURED[(q, "combined")]),
        }
    text = render_bars(
        series,
        unit="%",
        title=(
            "Figure 3: execution time reduction over the eager-count "
            f"baseline (AnySum, {fx.num_docs} docs)"
        ),
    )
    write_artifact("figure3.txt", text)

    # Shape assertions (who wins, roughly where), not absolute numbers:
    # alternate elimination helps the clear majority of queries ...
    helped = sum(series[q]["alt-elim reduction"] > 0 for q in QUERIES)
    assert helped >= 5, series
    # ... pre-counting strongly helps the all-free-keyword queries ...
    assert series["Q4"]["pre-count reduction"] > 20
    assert series["Q5"]["pre-count reduction"] > 20
    # ... and cannot apply to Q7/Q11 (no free keywords): no real change.
    assert abs(series["Q7"]["pre-count reduction"]) < 20
    assert abs(series["Q11"]["pre-count reduction"]) < 20
