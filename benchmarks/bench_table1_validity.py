"""Regenerate Table 1: the optimization validity matrix.

Each optimization with the scoring scheme operator/direction requirements
that make it score-consistent.  The artifact is static (it is the
optimizer's own gating logic); the benchmark times the full gating pass
over all built-in schemes, which is the per-query optimizer overhead the
paper's desideratum (3) cares about.
"""

from repro.bench.reporting import render_table
from repro.graft.validity import OPTIMIZATIONS, allowed_optimizations, table1_rows
from repro.sa.registry import available_schemes, get_scheme

from benchmarks.conftest import write_artifact


def _gate_all_schemes():
    return {
        name: allowed_optimizations(get_scheme(name).properties)
        for name in available_schemes()
    }


def test_table1_regeneration(benchmark):
    benchmark.pedantic(_gate_all_schemes, rounds=9, iterations=10)
    rows = [
        [r["optimization"], r["operator requirement"], r["direction requirement"]]
        for r in table1_rows()
    ]
    text = render_table(
        ["OPTIMIZATION", "OPERATOR REQ.", "DIRECTION REQ."],
        rows,
        title="Table 1: optimization validity requirements",
    )
    write_artifact("table1.txt", text)
    assert len(rows) == len(OPTIMIZATIONS) == 11
