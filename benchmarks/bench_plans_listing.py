"""Repeatability artifact: the exact plans the benchmarks execute.

The paper notes "plans used in experiments are listed in [the technical
report] to ensure repeatability"; this module is our analog — it writes
every (query, scheme/variant) plan used by the Figure 3 and Figure 4
benchmarks as an operator-tree listing, with the rewrites that produced
it, to ``benchmarks/results/plans.txt``.
"""

from repro.bench.workload import PAPER_QUERIES
from repro.graft.explain import explain
from repro.graft.optimizer import Optimizer, OptimizerOptions
from repro.sa.registry import get_scheme

from benchmarks.conftest import write_artifact

FIG3_VARIANTS = {
    "eager-count": OptimizerOptions(pre_counting=False, alternate_elimination=False),
    "alt-elim": OptimizerOptions(pre_counting=False, alternate_elimination=True),
    "pre-count": OptimizerOptions(pre_counting=True, alternate_elimination=False),
    "combined": OptimizerOptions(),
}

FIG4_SCHEMES = ("lucene", "anysum")


def _listing(fx) -> str:
    sections = []
    for name in sorted(PAPER_QUERIES, key=lambda n: int(n[1:])):
        query = fx.queries[name]
        sections.append(f"==== {name}: {PAPER_QUERIES[name]}")
        for variant, options in FIG3_VARIANTS.items():
            res = Optimizer(get_scheme("anysum"), fx.index, options).optimize(query)
            sections.append(f"-- Figure 3 / anysum / {variant} "
                            f"(rewrites: {', '.join(res.applied)})")
            sections.append(explain(res.plan))
        for scheme_name in FIG4_SCHEMES:
            res = Optimizer(get_scheme(scheme_name), fx.index).optimize(query)
            sections.append(f"-- Figure 4 / {scheme_name} "
                            f"(rewrites: {', '.join(res.applied)})")
            sections.append(explain(res.plan))
        sections.append("")
    return "\n".join(sections)


def test_plans_listing(fx, benchmark):
    text = benchmark.pedantic(lambda: _listing(fx), rounds=3, iterations=1)
    write_artifact("plans.txt", text)
    # Sanity: each query contributes all six plans and the novel
    # operators appear where they should.
    assert text.count("====") == 8
    assert "delta[doc]" in text
    assert "CA(" in text
    assert "forward" not in text  # forward-scan off in these figures