"""Regenerate Table 3: optimizations consistently applicable per scheme.

"By combining Table 1 and Table 2 we derive the set of optimizations that
may be consistently applied for each scoring scheme" — this is literally
what :func:`repro.graft.validity.allowed_optimizations` computes from the
declared properties, so the artifact is the optimizer's live behaviour.
"""

from repro.bench.reporting import render_table
from repro.graft.validity import OPTIMIZATIONS, allowed_optimizations
from repro.sa.registry import get_scheme

from benchmarks.conftest import write_artifact

SCHEMES = (
    "anysum",
    "sumbest",
    "lucene",
    "join-normalized",
    "event-model",
    "meansum",
    "bestsum-mindist",
)


def _build_table():
    allowed = {
        name: set(allowed_optimizations(get_scheme(name).properties))
        for name in SCHEMES
    }
    rows = []
    for spec in OPTIMIZATIONS:
        rows.append(
            [spec.name]
            + ["yes" if spec.name in allowed[name] else "" for name in SCHEMES]
        )
    return rows


def test_table3_regeneration(benchmark):
    rows = benchmark.pedantic(_build_table, rounds=9, iterations=10)
    text = render_table(
        ["OPTIMIZATION"] + list(SCHEMES),
        rows,
        title="Table 3: optimizations valid per scheme (Table 1 x Table 2)",
    )
    write_artifact("table3.txt", text)
    by_name = {r[0]: dict(zip(SCHEMES, r[1:])) for r in rows}
    # Classical rewrites unrestricted (paper's headline observation).
    for opt in ("join-reordering", "selection-pushing", "zigzag-join",
                "eager-counting", "sort-elimination"):
        assert all(by_name[opt][s] == "yes" for s in SCHEMES)
    # Novel rewrites constant-gated: AnySum only.
    assert by_name["alternate-elimination"] == {
        s: ("yes" if s == "anysum" else "") for s in SCHEMES
    }
    assert by_name["forward-scan-join"]["anysum"] == "yes"
    # Row-first schemes blocked from eager aggregation.
    assert by_name["eager-aggregation"]["event-model"] == ""
    assert by_name["eager-aggregation"]["bestsum-mindist"] == ""
