"""The Section 5.2.3 / Section 8 claim: "pre-counting yields significant
performance gains over eager counting; we report a query with twenty-fold
runtime speedup".

The speedup is the term-position-scan vs term-document-scan ratio, so it
is largest for queries made entirely of free, *frequent* keywords (long
postings, high in-document frequency).  We use the four most frequent
planted words, mirroring that setup, and report the measured speedup plus
the index-work ratio that explains it.
"""

import pytest

from repro.bench.reporting import render_table
from repro.corpus.synthetic import SyntheticCorpusConfig, generate_corpus
from repro.exec.engine import execute, make_runtime
from repro.graft.optimizer import Optimizer, OptimizerOptions
from repro.index.builder import build_index
from repro.mcalc.parser import parse_query
from repro.sa.registry import get_scheme

from benchmarks.conftest import (
    make_runner,
    median_seconds,
    write_artifact,
    write_bench_json,
)

#: The speedup ratio is bounded by the mean in-document frequency of the
#: query's keywords (positions scanned per doc entry skipped).  The
#: paper's twenty-fold query used high-frequency terms over full-length
#: Wikipedia articles; the equivalent regime here is the head of the Zipf
#: background vocabulary over long documents, where each keyword occurs
#: tens of times per document.
QUERY_TEXT = "w000000 w000001 w000002"

_LONG_DOC_FIXTURE = {}


def long_doc_fixture():
    """A dedicated corpus of Wikipedia-length documents (~1200 tokens)."""
    if "fx" not in _LONG_DOC_FIXTURE:
        collection = generate_corpus(
            SyntheticCorpusConfig(num_docs=800, mean_doc_length=1200)
        )
        index = build_index(collection)
        _LONG_DOC_FIXTURE["fx"] = (collection, index)
    return _LONG_DOC_FIXTURE["fx"]
MEASURED: dict[str, float] = {}

VARIANTS = {
    "eager-count": OptimizerOptions(pre_counting=False, alternate_elimination=False),
    "pre-count": OptimizerOptions(pre_counting=True, alternate_elimination=False),
}


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_precount_measure(variant, benchmark):
    import types

    collection, index = long_doc_fixture()
    env = types.SimpleNamespace(collection=collection, index=index)
    query = parse_query(QUERY_TEXT, collection.analyzer)
    run = make_runner(env, query, "anysum", VARIANTS[variant])
    benchmark.pedantic(run, rounds=9, iterations=1, warmup_rounds=1)
    benchmark.extra_info["rows"] = getattr(run, "rows", None)
    MEASURED[variant] = median_seconds(benchmark)


def test_precount_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if set(MEASURED) != set(VARIANTS):
        pytest.skip("measurements missing (run the whole module)")

    from repro.obs.metrics import MetricsRegistry, record_execution_metrics

    collection, index = long_doc_fixture()
    query = parse_query(QUERY_TEXT, collection.analyzer)
    scheme = get_scheme("anysum")
    work = {}
    result_rows = None
    registry = MetricsRegistry()  # fresh: only this benchmark's work
    for variant, options in VARIANTS.items():
        res = Optimizer(scheme, index, options).optimize(query)
        runtime = make_runtime(index, scheme, res.info)
        result_rows = len(execute(res.plan, runtime))
        record_execution_metrics(runtime.metrics, registry)
        registry.histogram(
            "bench_run_seconds", "Per-variant median runtime", labelnames=("variant",)
        ).labels(variant=variant).observe(MEASURED[variant])
        work[variant] = (
            runtime.metrics.positions_scanned,
            runtime.metrics.doc_entries_scanned,
        )

    speedup = MEASURED["eager-count"] / MEASURED["pre-count"]
    rows = [
        [
            variant,
            f"{MEASURED[variant] * 1000:.3f} ms",
            str(work[variant][0]),
            str(work[variant][1]),
        ]
        for variant in VARIANTS
    ]
    rows.append(["speedup", f"{speedup:.1f}x", "", ""])
    text = render_table(
        ["plan", "median time", "positions scanned", "doc entries scanned"],
        rows,
        title=(
            f"Pre-counting vs eager counting on {QUERY_TEXT!r} "
            f"(Section 5.2.3; paper reports up to ~20x)"
        ),
    )
    write_artifact("precount_speedup.txt", text)
    write_bench_json(
        "precount_speedup",
        {
            "median_ms": {v: MEASURED[v] * 1000 for v in VARIANTS},
            "speedup": speedup,
            "work": {
                v: {"positions_scanned": work[v][0],
                    "doc_entries_scanned": work[v][1]}
                for v in VARIANTS
            },
            "metrics": registry.snapshot(),
        },
        wall_ms=MEASURED["pre-count"] * 1000,
        rows=result_rows,
        params={"query": QUERY_TEXT, "scheme": "anysum"},
    )

    # Shape: pre-counting must eliminate position scanning entirely and
    # deliver a clearly super-unit speedup on this all-frequent-keyword
    # query.
    assert work["pre-count"][0] == 0
    assert work["eager-count"][1] == 0
    assert speedup > 4.0, MEASURED
