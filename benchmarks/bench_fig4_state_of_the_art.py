"""Regenerate Figure 4: GRAFT vs the rigid state-of-the-art engines.

"Comparative execution times for Q4 through Q11 on GRAFT optimized for
Lucene's scoring scheme, Lucene, GRAFT optimized for Terrier's scoring
scheme, and Terrier.  Lucene and Terrier do not support Q8 or Q10."

The rigid engines here are the re-implementations of
:mod:`repro.baselines` (see DESIGN.md on why running the JVM originals
would measure the wrong thing); both pairs compute *identical rankings*
(asserted by tests/baselines/test_engines.py), so the comparison is purely
rigid-vs-flexible plan generation on the same substrate.
"""

import pytest

from repro.baselines import LuceneLikeEngine, TerrierLikeEngine
from repro.bench.reporting import render_bars
from repro.bench.workload import PAPER_QUERIES, RIGID_SUPPORTED

from benchmarks.conftest import (
    make_runner,
    median_seconds,
    record_rows,
    write_artifact,
)

QUERIES = sorted(PAPER_QUERIES, key=lambda name: int(name[1:]))
MEASURED: dict[tuple[str, str], float] = {}

SYSTEMS = (
    "graft[lucene]",
    "lucene-like",
    "graft[anysum]",
    "terrier-like",
)


def _runner(fx, query_name, system):
    query = fx.queries[query_name]
    if system == "graft[lucene]":
        return make_runner(fx, query, "lucene")
    if system == "graft[anysum]":
        return make_runner(fx, query, "anysum")
    if system == "lucene-like":
        engine = LuceneLikeEngine(fx.index)
        return lambda: engine.search(query)
    engine = TerrierLikeEngine(fx.index)
    return lambda: engine.search(query)


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("query", QUERIES)
def test_fig4_measure(query, system, fx, benchmark):
    if system.endswith("like") and query not in RIGID_SUPPORTED:
        pytest.skip("Lucene and Terrier do not support the WINDOW predicate")
    run = _runner(fx, query, system)
    benchmark.pedantic(run, rounds=9, iterations=1, warmup_rounds=1)
    record_rows(benchmark, run)
    MEASURED[(query, system)] = median_seconds(benchmark)


def test_fig4_report(fx, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not any((q, "graft[lucene]") in MEASURED for q in QUERIES):
        pytest.skip("measurements missing (run the whole module)")

    series = {}
    for q in QUERIES:
        series[q] = {
            system: MEASURED[(q, system)] * 1000.0
            for system in SYSTEMS
            if (q, system) in MEASURED
        }
    text = render_bars(
        series,
        unit="ms",
        title=(
            "Figure 4: execution time, GRAFT (flexible plans) vs rigid "
            f"engines ({fx.num_docs} docs; Q8/Q10 unsupported by the rigid "
            "engines)"
        ),
    )
    write_artifact("figure4.txt", text)

    # Shape assertions: GRAFT must stay within a small constant factor of
    # the rigid engines on the queries both support ("properly optimized
    # GRAFT plans run as fast, if not faster"); we allow generous slack
    # because absolute constants are machine- and interpreter-dependent.
    for q in RIGID_SUPPORTED:
        graft = series[q]["graft[lucene]"]
        rigid = series[q]["lucene-like"]
        assert graft < rigid * 12, (q, graft, rigid)
        graft = series[q]["graft[anysum]"]
        rigid = series[q]["terrier-like"]
        assert graft < rigid * 12, (q, graft, rigid)
    # GRAFT additionally answers the WINDOW queries the rigid engines
    # cannot run at all.
    assert (("Q8", "graft[lucene]") in MEASURED
            and ("Q10", "graft[anysum]") in MEASURED)
