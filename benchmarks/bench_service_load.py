"""End-to-end query-service throughput: qps, p50, p99 over sockets.

The other benchmarks time the engine from the inside; this module times
what a client actually experiences — HTTP framing, admission control,
the thread-pool handoff, and the reader generation — by booting the
full :mod:`repro.serve` stack on an ephemeral loopback port and driving
it with the stdlib load generator over the eight paper queries.

Three legs:

* **steady state** — generous limits, nothing shed: the service-layer
  overhead on top of raw engine execution, reported as qps with p50/p99
  of accepted requests.  ``rows`` is the exact total result count, so
  the exported record doubles as a service-layer correctness gate
  (this is the same measurement ``repro bench`` records as
  ``service_load`` for the ``--check`` regression gate).
* **hot swap under load** — the same run with a mid-run checkpoint and
  reader generation swap: what swapping costs live traffic, with zero
  dropped requests by construction.
* **overload** — 4x oversubscription against a single execution slot:
  how fast the service says no (shed 503s are the point, not errors).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api import SearchEngine
from repro.bench.reporting import render_table
from repro.serve import HttpServer, QueryService, ServiceConfig
from repro.serve.loadgen import run_loadgen

from benchmarks.conftest import median_seconds, write_artifact, write_bench_json

SCHEME = "sumbest"
REQUESTS = 64
CONCURRENCY = 8

REPORTS: dict[str, dict] = {}


def _store(fx, tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-bench") / "store"
    engine = SearchEngine(fx.collection)
    engine._index = fx.index  # reuse the session fixture's index
    engine.save(root)
    return root


async def _drive(store, config, **loadgen_kw):
    service = QueryService(store, config)
    server = HttpServer(service, registry=service.registry)
    host, port = await server.start()
    try:
        report = await run_loadgen(host, port, scheme=SCHEME, **loadgen_kw)
        return report, service.status()
    finally:
        await server.stop()


def _generous() -> ServiceConfig:
    # Sized so the steady-state run never sheds: measure, don't refuse.
    return ServiceConfig(
        max_inflight=CONCURRENCY, max_queue=REQUESTS, deadline_ms=60_000.0
    )


def test_steady_state_throughput(benchmark, fx, tmp_path_factory):
    store = _store(fx, tmp_path_factory)

    def run():
        report, _ = asyncio.run(_drive(
            store, _generous(),
            requests=REQUESTS, concurrency=CONCURRENCY,
        ))
        assert not (report.errors or report.shed or report.timeouts), (
            report.summary()
        )
        run.rows = report.rows
        run.report = report

    run.rows = None
    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["rows"] = run.rows
    REPORTS["steady_state"] = {
        **run.report.summary(), "median_s": median_seconds(benchmark),
    }


def test_hot_swap_under_load(benchmark, fx, tmp_path_factory):
    store = _store(fx, tmp_path_factory)

    def run():
        report, status = asyncio.run(_drive(
            store, _generous(),
            requests=REQUESTS, concurrency=CONCURRENCY,
            swap_at=REQUESTS // 4,
        ))
        assert not (report.errors or report.shed or report.timeouts), (
            report.summary()
        )
        # The swap really happened behind live traffic, losslessly.
        assert status["swaps"] >= 1, status
        run.rows = report.rows
        run.report = report

    run.rows = None
    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["rows"] = run.rows
    REPORTS["hot_swap"] = {
        **run.report.summary(), "median_s": median_seconds(benchmark),
    }


def test_overload_sheds_fast(benchmark, fx, tmp_path_factory):
    store = _store(fx, tmp_path_factory)
    config = ServiceConfig(
        max_inflight=1, max_queue=2, deadline_ms=10_000.0,
        executor_workers=1, retry_after_s=0.05, retry_jitter_s=0.05,
    )

    def run():
        report, _ = asyncio.run(_drive(
            store, config,
            requests=REQUESTS, concurrency=4 * CONCURRENCY,
        ))
        assert report.errors == 0, report.summary()
        assert report.shed > 0, report.summary()  # overload must shed
        run.report = report

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    REPORTS["overload"] = {
        **run.report.summary(), "median_s": median_seconds(benchmark),
    }


def test_service_load_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if set(REPORTS) != {"steady_state", "hot_swap", "overload"}:
        pytest.skip("measurements missing (run the whole module)")

    # The swap must not change what clients see: rows are exact.
    assert REPORTS["steady_state"]["rows"] == REPORTS["hot_swap"]["rows"]

    table_rows = [
        [
            leg,
            f"{r['qps']:.1f} q/s",
            f"{r['p50_ms']:.2f} ms",
            f"{r['p99_ms']:.2f} ms",
            f"{r['ok']}/{r['requests']}",
            str(r["shed"]),
        ]
        for leg, r in REPORTS.items()
    ]
    text = render_table(
        ["leg", "throughput", "p50", "p99", "ok", "shed"],
        table_rows,
        title=(
            f"Query service under load "
            f"({REQUESTS} requests, {CONCURRENCY} clients)"
        ),
    )
    write_artifact("service_load.txt", text)
    steady = REPORTS["steady_state"]
    write_bench_json(
        "service_load_report",
        REPORTS,
        wall_ms=steady["median_s"] * 1000.0,
        rows=steady["rows"],
        params={
            "scheme": SCHEME,
            "requests": REQUESTS,
            "concurrency": CONCURRENCY,
            "qps": round(steady["qps"], 2),
            "p50_ms": round(steady["p50_ms"], 3),
            "p99_ms": round(steady["p99_ms"], 3),
        },
    )