"""Sharded-execution throughput and the two-tier query cache's payoff.

Four claims are measured over the paper's eight evaluation queries:

* **Thread-sharded throughput** — one pass over the whole workload
  executed serially and through
  :func:`repro.exec.parallel.execute_sharded` at 2 and 4 shards.  The
  result *rows* must be identical at every shard count (the
  score-consistent merge is exact, not approximate), so the exported
  records double as a correctness gate.  Wall-clock speedup is reported
  next to ``os.cpu_count()``: thread parallelism is bounded by cores
  and, for pure-Python operators, by the GIL — on a single-core runner
  the expected speedup is ~1.0x and the honest number is recorded
  rather than gamed (docs/PERFORMANCE.md).

* **Process-sharded throughput** — the same pass through
  :func:`repro.exec.procpool.execute_sharded_process`: the packed index
  published once in shared memory, one attach per worker process.  This
  is the driver that escapes the GIL; rows must again be identical.

* **Packed decode** — the serial workload over the
  :class:`repro.index.packed.PackedIndex` decoding view, pinning the
  batch-decode scan path next to the object-index serial anchor.

* **Plan-cache repeat** — the same workload through a
  :class:`repro.api.SearchEngine` twice, cold then warm.  The warm pass
  must hit the plan cache on every query (hits are asserted via the
  engine's cache stats, which back the
  ``graft_plan_cache_hits_total`` metric) and skips
  parse→canonicalize→optimize entirely.
"""

import os

import pytest

from repro.api import SearchEngine
from repro.bench.reporting import render_table
from repro.bench.workload import PAPER_QUERIES
from repro.exec.cache import CacheConfig
from repro.exec.engine import execute, make_runtime
from repro.exec.parallel import execute_sharded
from repro.exec.procpool import (
    ProcessShardPool,
    ProcPoolUnavailableError,
    default_worker_count,
    execute_sharded_process,
)
from repro.graft.optimizer import Optimizer
from repro.index.packed import PackedIndex, pack_index
from repro.index.shard import ShardedIndex
from repro.sa.context import IndexScoringContext
from repro.sa.registry import get_scheme

from benchmarks.conftest import median_seconds, write_artifact, write_bench_json

SCHEME = "sumbest"

SHARD_COUNTS = (1, 2, 4)
PROC_SHARD_COUNTS = (2, 4)

MEASURED: dict[int, float] = {}
ROWS: dict[int, int] = {}
MEASURED_PROC: dict[int, float] = {}
ROWS_PROC: dict[int, int] = {}
PACKED: dict[str, float | int] = {}
CACHE: dict[str, float | dict] = {}


def _optimized(fx):
    scheme = get_scheme(SCHEME)
    return scheme, [
        Optimizer(scheme, fx.index).optimize(query)
        for query in fx.queries.values()
    ]


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_parallel_measure(shards, benchmark, fx):
    scheme, optimized = _optimized(fx)
    ctx = IndexScoringContext(fx.index)
    sharded = ShardedIndex(fx.index, shards) if shards > 1 else None

    def run():
        total = 0
        for result in optimized:
            if sharded is None:
                runtime = make_runtime(fx.index, scheme, result.info, ctx)
                total += len(execute(result.plan, runtime))
            else:
                total += len(execute_sharded(
                    sharded, result.plan, scheme, result.info, ctx
                ).results)
        run.rows = total

    run.rows = None
    benchmark.pedantic(run, rounds=9, iterations=1, warmup_rounds=1)
    benchmark.extra_info["rows"] = run.rows
    MEASURED[shards] = median_seconds(benchmark)
    ROWS[shards] = run.rows


@pytest.mark.parametrize("shards", PROC_SHARD_COUNTS)
def test_process_measure(shards, benchmark, fx):
    scheme, optimized = _optimized(fx)
    try:
        pool = ProcessShardPool(
            pack_index(fx.index), shards,
            max_workers=default_worker_count(shards),
        )
    except ProcPoolUnavailableError as exc:
        pytest.skip(f"process pool unavailable: {exc}")
    sharded = ShardedIndex(fx.index, shards)

    def run():
        total = 0
        for result in optimized:
            total += len(execute_sharded_process(
                pool, sharded, result.plan, scheme, result.info
            ).results)
        run.rows = total

    run.rows = None
    try:
        benchmark.pedantic(run, rounds=9, iterations=1, warmup_rounds=1)
    finally:
        pool.close()
    benchmark.extra_info["rows"] = run.rows
    MEASURED_PROC[shards] = median_seconds(benchmark)
    ROWS_PROC[shards] = run.rows


def test_packed_decode(benchmark, fx):
    scheme, optimized = _optimized(fx)
    packed = PackedIndex(pack_index(fx.index))
    ctx = IndexScoringContext(packed)

    def run():
        total = 0
        for result in optimized:
            runtime = make_runtime(packed, scheme, result.info, ctx)
            total += len(execute(result.plan, runtime))
        run.rows = total

    run.rows = None
    benchmark.pedantic(run, rounds=9, iterations=1, warmup_rounds=1)
    benchmark.extra_info["rows"] = run.rows
    PACKED["seconds"] = median_seconds(benchmark)
    PACKED["rows"] = run.rows


def test_plan_cache_repeat(benchmark, fx):
    engine = SearchEngine(fx.collection, cache=CacheConfig())
    engine._index = fx.index  # reuse the session fixture's index

    def run():
        total = 0
        for text in PAPER_QUERIES.values():
            total += len(engine.search(text, scheme=SCHEME))
        run.rows = total

    run.rows = None
    run()  # cold pass: every query is a plan-cache miss
    cold = dict(engine.cache_stats()["plan"])
    benchmark.pedantic(run, rounds=9, iterations=1, warmup_rounds=1)
    benchmark.extra_info["rows"] = run.rows
    warm = dict(engine.cache_stats()["plan"])
    CACHE["warm_seconds"] = median_seconds(benchmark)
    CACHE["rows"] = run.rows
    CACHE["stats"] = warm
    # Every query text repeats, so the timed passes must be all hits:
    # misses stop after the cold pass, hits keep climbing.
    assert warm["misses"] == cold["misses"] == len(PAPER_QUERIES)
    assert warm["hits"] > cold["hits"] >= 0


def test_parallel_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if set(MEASURED) != set(SHARD_COUNTS) or "warm_seconds" not in CACHE:
        pytest.skip("measurements missing (run the whole module)")

    # The merge is exact: every shard count — and both executors, and
    # the packed substrate — must agree on total rows.
    agreed = set(ROWS.values()) | set(ROWS_PROC.values())
    if "rows" in PACKED:
        agreed.add(PACKED["rows"])
    assert len(agreed) == 1, (ROWS, ROWS_PROC, PACKED)

    serial = MEASURED[1]
    table_rows = [
        [
            f"{n} shard{'s' if n > 1 else ''} (thread)",
            f"{MEASURED[n] * 1000:.3f} ms",
            f"{len(PAPER_QUERIES) / MEASURED[n]:.1f} q/s",
            f"{serial / MEASURED[n]:.2f}x",
        ]
        for n in SHARD_COUNTS
    ]
    for n in sorted(MEASURED_PROC):
        table_rows.append([
            f"{n} shards (process)",
            f"{MEASURED_PROC[n] * 1000:.3f} ms",
            f"{len(PAPER_QUERIES) / MEASURED_PROC[n]:.1f} q/s",
            f"{serial / MEASURED_PROC[n]:.2f}x",
        ])
    if "seconds" in PACKED:
        table_rows.append([
            "serial (packed index)",
            f"{PACKED['seconds'] * 1000:.3f} ms",
            f"{len(PAPER_QUERIES) / PACKED['seconds']:.1f} q/s",
            f"{serial / PACKED['seconds']:.2f}x",
        ])
    table_rows.append([
        "plan-cache warm",
        f"{CACHE['warm_seconds'] * 1000:.3f} ms",
        f"{len(PAPER_QUERIES) / CACHE['warm_seconds']:.1f} q/s",
        f"{serial / CACHE['warm_seconds']:.2f}x",
    ])
    text = render_table(
        ["configuration", "median pass", "throughput", "vs serial"],
        table_rows,
        title=(
            f"Paper workload throughput, sharded execution + plan cache "
            f"({os.cpu_count()} cores)"
        ),
    )
    write_artifact("parallel_throughput.txt", text)
    write_bench_json(
        "parallel_throughput",
        {
            "median_ms": {f"s{n}": MEASURED[n] * 1000 for n in SHARD_COUNTS},
            "qps": {
                f"s{n}": len(PAPER_QUERIES) / MEASURED[n]
                for n in SHARD_COUNTS
            },
            "speedup_vs_serial": {
                f"s{n}": serial / MEASURED[n] for n in SHARD_COUNTS
            },
            "process": {
                f"s{n}": {
                    "median_ms": MEASURED_PROC[n] * 1000,
                    "qps": len(PAPER_QUERIES) / MEASURED_PROC[n],
                    "speedup_vs_serial": serial / MEASURED_PROC[n],
                }
                for n in sorted(MEASURED_PROC)
            },
            "packed_decode": (
                {
                    "median_ms": PACKED["seconds"] * 1000,
                    "speedup_vs_serial": serial / PACKED["seconds"],
                }
                if "seconds" in PACKED else None
            ),
            "plan_cache": {
                "warm_ms": CACHE["warm_seconds"] * 1000,
                "speedup_vs_serial": serial / CACHE["warm_seconds"],
                "stats": CACHE["stats"],
            },
            "cores": os.cpu_count(),
        },
        wall_ms=MEASURED[max(SHARD_COUNTS)] * 1000,
        rows=ROWS[1],
        params={"scheme": SCHEME, "shard_counts": list(SHARD_COUNTS)},
    )
