"""Micro-benchmark of the predicate hot path ``_CompiledPred.holds``.

``holds`` runs once per candidate row of every predicate join — for
proximity-heavy queries it dominates the join loop — so its constant
factors matter.  Three ways to bind row positions are timed over the
same row stream:

* ``tuple([listcomp])`` — the current implementation: CPython
  specializes list comprehensions, and ``tuple()`` of a list is a
  single sized copy;
* the replaced variant, which kept the intermediate list around and
  converted to a tuple only at the ``impl.holds`` call;
* ``tuple(genexpr)`` — the "obvious" no-intermediate-list spelling,
  which is actually the slowest: the generator protocol costs more
  than the list it avoids.

Functional equivalence is covered by the tier-1 predicate tests; this
module only tracks the constant factor and asserts the current
spelling has not regressed into clearly-slowest.
"""

import pytest

from repro.bench.reporting import render_table
from repro.errors import ExecutionError
from repro.exec.iterator import RowSchema
from repro.exec.join_ops import _CompiledPred, compile_predicates
from repro.ma.match_table import ANY_POSITION
from repro.mcalc.ast import Pred

from benchmarks.conftest import median_seconds, write_artifact, write_bench_json

#: Candidate rows per timed call — enough for per-call dispatch overhead
#: to wash out.
N_ROWS = 20_000

MEASURED: dict[str, float] = {}


def _fixture():
    schema = RowSchema(("doc", "p0", "p1"))
    pred = Pred(name="ORDER", vars=("p0", "p1"), constants=())
    (compiled,) = compile_predicates((pred,), schema)
    # Alternate holding / failing rows so branch prediction cannot
    # trivialize either variant.
    rows = [
        (doc, 3, 9) if doc % 2 == 0 else (doc, 9, 3)
        for doc in range(N_ROWS)
    ]
    return compiled, rows


def _holds_list_variant(compiled: _CompiledPred, row: tuple) -> bool:
    """The replaced implementation: intermediate list, late tuple()."""
    positions = [row[i] for i in compiled.indices]
    if ANY_POSITION in positions:
        raise ExecutionError("pre-counted column under a predicate")
    return compiled.impl.holds(tuple(positions), compiled.constants, ())


def _holds_genexpr_variant(compiled: _CompiledPred, row: tuple) -> bool:
    """The no-intermediate-list spelling: tuple() over a generator."""
    positions = tuple(row[i] for i in compiled.indices)
    if ANY_POSITION in positions:
        raise ExecutionError("pre-counted column under a predicate")
    return compiled.impl.holds(positions, compiled.constants, ())


CURRENT = "tuple([listcomp]) (current)"

VARIANTS = {
    CURRENT: lambda compiled, row: compiled.holds(row),
    "list, late tuple (old)": _holds_list_variant,
    "tuple(genexpr)": _holds_genexpr_variant,
}


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_pred_holds_measure(variant, benchmark):
    compiled, rows = _fixture()
    holds = VARIANTS[variant]

    def run():
        n = 0
        for row in rows:
            if holds(compiled, row):
                n += 1
        run.rows = n

    run.rows = None
    benchmark.pedantic(run, rounds=9, iterations=1, warmup_rounds=1)
    benchmark.extra_info["rows"] = run.rows
    assert run.rows == N_ROWS // 2  # both variants agree on the stream
    MEASURED[variant] = median_seconds(benchmark)


def test_pred_holds_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if set(MEASURED) != set(VARIANTS):
        pytest.skip("measurements missing (run the whole module)")

    speedup = MEASURED["list, late tuple (old)"] / MEASURED[CURRENT]
    table = render_table(
        ["variant", f"median over {N_ROWS} rows", "vs current"],
        [
            [
                name,
                f"{MEASURED[name] * 1000:.3f} ms",
                f"{MEASURED[name] / MEASURED[CURRENT]:.2f}x",
            ]
            for name in VARIANTS
        ],
        title="_CompiledPred.holds row-binding variants (ORDER predicate)",
    )
    write_artifact("pred_holds.txt", table)
    write_bench_json(
        "pred_holds",
        {
            "median_ms": {k: v * 1000 for k, v in MEASURED.items()},
            "speedup_vs_old": speedup,
            "rows_per_call": N_ROWS,
        },
        wall_ms=MEASURED[CURRENT] * 1000,
        rows=N_ROWS,
        params={"predicate": "ORDER", "rows": N_ROWS},
    )
    # Micro-timings jitter, and the current variant pays an extra bound-
    # method dispatch here that real join loops amortize; only guard
    # against the current spelling regressing into clearly-slowest.
    assert speedup > 0.7, MEASURED
