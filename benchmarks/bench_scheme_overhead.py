"""Extension bench: the cost of generic scoring, scheme by scheme.

Desideratum (3) of the paper: "despite overhead from generic scoring,
[GRAFT] performs competitively with systems using a fixed scoring
algorithm."  This bench quantifies the per-scheme overhead directly: one
representative query executed under every registered scheme, with the
rewrites each scheme's properties allow.  Cheap constant schemes
(pre-counted, delta-eliminated plans) should run fastest; positional
row-first schemes (raw position scans, per-row structured scores) should
cost the most.
"""

import pytest

from repro.bench.reporting import render_table
from repro.sa.registry import available_schemes, get_scheme

from benchmarks.conftest import (
    make_runner,
    median_seconds,
    record_rows,
    write_artifact,
)

QUERY = "Q9"  # proximity + free keyword: exercises both plan halves
MEASURED: dict[str, float] = {}


@pytest.mark.parametrize("scheme_name", sorted(available_schemes()))
def test_scheme_overhead_measure(scheme_name, fx, benchmark):
    run = make_runner(fx, fx.queries[QUERY], scheme_name)
    benchmark.pedantic(run, rounds=9, iterations=1, warmup_rounds=1)
    record_rows(benchmark, run)
    MEASURED[scheme_name] = median_seconds(benchmark)


def test_scheme_overhead_report(fx, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(MEASURED) < len(available_schemes()):
        pytest.skip("measurements missing (run the whole module)")

    from repro.graft.optimizer import Optimizer

    rows = []
    for name, seconds in sorted(MEASURED.items(), key=lambda kv: kv[1]):
        scheme = get_scheme(name)
        res = Optimizer(scheme, fx.index).optimize(fx.queries[QUERY])
        rows.append([
            name,
            f"{seconds * 1000:.3f} ms",
            scheme.properties.directional or "diagonal",
            ", ".join(res.applied),
        ])
    text = render_table(
        ["scheme", "median time", "direction", "rewrites applied"],
        rows,
        title=f"Generic-scoring overhead per scheme on {QUERY}",
    )
    write_artifact("scheme_overhead.txt", text)

    # Shape: the constant scheme with full novel rewrites must be among
    # the cheapest; the positional row-first scheme among the dearest.
    order = [r[0] for r in rows]
    assert order.index("anysum") < order.index("bestsum-mindist")
