"""Shared benchmark infrastructure.

Benchmarks regenerate every table and figure of the paper's evaluation
(Section 8).  Each module both:

* registers pytest-benchmark timings (9 rounds, mirroring the paper's
  repeat-9/average-of-5-medians methodology), and
* writes the regenerated artifact as text to ``benchmarks/results/`` so
  the harness output can be laid next to the published table or plot.

Every benchmark run shares one :data:`RUN_ID`.  At session end the
``pytest_sessionfinish`` hook exports each module's timings as
``BENCH_<module>.json`` in the stable history schema
(``repro.bench.history.bench_record``: name, params, wall_ms, rows) and
appends the same records to ``benchmarks/results/history.jsonl`` — so a
benchmark's trajectory is joinable across runs and commits by
(``run_id``, ``name``), and ``repro bench --check`` shares the format.
"""

from __future__ import annotations

import json
import os
import pathlib
import statistics

import pytest

from repro.bench.history import append_history, bench_record, new_run_id
from repro.bench.workload import bench_fixture
from repro.exec.engine import execute, make_runtime
from repro.graft.optimizer import Optimizer, OptimizerOptions
from repro.sa.registry import get_scheme

#: Benchmark corpus size (documents).  The paper used 5.2M Wikipedia
#: documents on a JVM; this laptop-scale stand-in preserves the postings
#: skew that drives the optimizations' relative payoffs.  Override with
#: ``REPRO_BENCH_DOCS`` for smoke runs (CI uses a small value).
BENCH_DOCS = int(os.environ.get("REPRO_BENCH_DOCS", "4000"))

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

HISTORY_PATH = RESULTS_DIR / "history.jsonl"

#: One id per benchmark session; every record this run writes carries it.
RUN_ID = new_run_id()


@pytest.fixture(scope="session")
def fx():
    return bench_fixture(num_docs=BENCH_DOCS)


def make_runner(fx, query, scheme_name, options: OptimizerOptions | None = None):
    """An argless callable executing the optimized plan for timing.

    Optimization happens once, outside the timed region, matching the
    paper's measurement of execution (plans are listed, then run).  After
    every call ``run.rows`` holds the result count — the
    machine-independent signal the history schema records."""
    scheme = get_scheme(scheme_name)
    result = Optimizer(scheme, fx.index, options).optimize(query)

    def run():
        runtime = make_runtime(fx.index, scheme, result.info)
        ranked = execute(result.plan, runtime)
        run.rows = len(ranked)
        return ranked

    run.rows = None
    return run


def record_rows(benchmark, runner) -> None:
    """Stash a runner's result count on the benchmark so the session
    exporter can join it into the stable record schema."""
    benchmark.extra_info["rows"] = getattr(runner, "rows", None)


def write_artifact(name: str, text: str) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
    return path


def median_seconds(benchmark) -> float:
    return benchmark.stats.stats.median


def write_bench_json(
    name: str,
    payload: dict,
    *,
    wall_ms: float | None = None,
    rows: int | None = None,
    params: dict | None = None,
) -> pathlib.Path:
    """Write a machine-readable benchmark artifact as ``BENCH_<name>.json``.

    The file is one stable-schema record
    (:func:`repro.bench.history.bench_record`: schema/run_id/name/params/
    wall_ms/rows) with the benchmark's free-form headline numbers — and
    typically a metrics-registry snapshot
    (:meth:`repro.obs.metrics.MetricsRegistry.snapshot`) — nested under
    ``data``.  The headline record (without ``data``) is also appended to
    ``history.jsonl``, joinable by (run_id, name).
    """
    record = bench_record(
        name, run_id=RUN_ID, wall_ms=wall_ms, rows=rows, params=params
    )
    append_history(record, HISTORY_PATH)
    record["data"] = payload
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"[bench json written to {path}]")
    return path


def _benchmark_median_seconds(meta) -> float | None:
    """Median seconds from a pytest-benchmark metadata object, tolerating
    both attribute layouts (fixture vs session metadata)."""
    stats = getattr(meta, "stats", None)
    if stats is None:
        return None
    # A benchmark that failed mid-round leaves empty stats; exporting
    # must not take the rest of the session's records down with it.
    try:
        median = getattr(stats, "median", None)
        if median is None:
            inner = getattr(stats, "stats", None)
            median = getattr(inner, "median", None)
    except statistics.StatisticsError:
        return None
    return median


def pytest_sessionfinish(session, exitstatus):
    """Export every timed benchmark in the stable history schema.

    One ``BENCH_<module>.json`` per benchmark module, containing one
    record per test (name, params, wall_ms, rows) under this session's
    :data:`RUN_ID`; the same records go to ``history.jsonl``.  This is
    what makes "every benchmark writes its numbers machine-readably"
    true without each module hand-rolling an export.
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not getattr(bench_session, "benchmarks", ()):
        return
    by_module: dict[str, list[dict]] = {}
    for meta in bench_session.benchmarks:
        median = _benchmark_median_seconds(meta)
        if median is None:
            continue
        fullname = getattr(meta, "fullname", "") or ""
        module = pathlib.Path(fullname.split("::", 1)[0]).stem or "unknown"
        extra = dict(getattr(meta, "extra_info", {}) or {})
        rows = extra.pop("rows", None)
        params = dict(getattr(meta, "params", None) or {})
        if extra:
            params["extra"] = extra
        params["docs"] = BENCH_DOCS
        by_module.setdefault(module, []).append(bench_record(
            getattr(meta, "name", fullname) or fullname,
            run_id=RUN_ID,
            wall_ms=median * 1000.0,
            rows=rows,
            params=params,
        ))
    if not by_module:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    for module, records in sorted(by_module.items()):
        append_history(records, HISTORY_PATH)
        path = RESULTS_DIR / f"BENCH_{module}.json"
        path.write_text(json.dumps(
            {"schema": 1, "run_id": RUN_ID, "records": records},
            indent=2, sort_keys=True,
        ) + "\n")
