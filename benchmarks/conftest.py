"""Shared benchmark infrastructure.

Benchmarks regenerate every table and figure of the paper's evaluation
(Section 8).  Each module both:

* registers pytest-benchmark timings (9 rounds, mirroring the paper's
  repeat-9/average-of-5-medians methodology), and
* writes the regenerated artifact as text to ``benchmarks/results/`` so
  the harness output can be laid next to the published table or plot.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.bench.workload import bench_fixture
from repro.exec.engine import execute, make_runtime
from repro.graft.optimizer import Optimizer, OptimizerOptions
from repro.sa.registry import get_scheme

#: Benchmark corpus size (documents).  The paper used 5.2M Wikipedia
#: documents on a JVM; this laptop-scale stand-in preserves the postings
#: skew that drives the optimizations' relative payoffs.
BENCH_DOCS = 4000

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def fx():
    return bench_fixture(num_docs=BENCH_DOCS)


def make_runner(fx, query, scheme_name, options: OptimizerOptions | None = None):
    """An argless callable executing the optimized plan for timing.

    Optimization happens once, outside the timed region, matching the
    paper's measurement of execution (plans are listed, then run)."""
    scheme = get_scheme(scheme_name)
    result = Optimizer(scheme, fx.index, options).optimize(query)

    def run():
        runtime = make_runtime(fx.index, scheme, result.info)
        return execute(result.plan, runtime)

    return run


def write_artifact(name: str, text: str) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
    return path


def median_seconds(benchmark) -> float:
    return benchmark.stats.stats.median


def write_bench_json(name: str, payload: dict) -> pathlib.Path:
    """Write a machine-readable benchmark artifact as ``BENCH_<name>.json``.

    The convention: ``payload`` carries the benchmark's headline numbers
    plus a metrics-registry snapshot
    (:meth:`repro.obs.metrics.MetricsRegistry.snapshot`), so perf
    trajectories can be diffed across commits with one ``jq`` call.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench json written to {path}]")
    return path
