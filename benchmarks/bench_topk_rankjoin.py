"""Extension bench: rank-join top-k vs full evaluation (Section 5.2.1).

The paper describes rank joins as an available classical technique but
does not validate them ("we do not validate their potential here"); this
bench does, as the DESIGN.md extension: top-10 retrieval via HRJN against
full evaluation + truncation, on a conjunctive keyword query under the
diagonal, idempotent AnySum scheme.
"""

import pytest

from repro.bench.reporting import render_table
from repro.exec.topk import rank_topk
from repro.mcalc.parser import parse_query
from repro.sa.registry import get_scheme

from benchmarks.conftest import (
    make_runner,
    median_seconds,
    record_rows,
    write_artifact,
)

QUERY_TEXT = "free software"
K = 10
MEASURED: dict[str, float] = {}


def test_rankjoin_measure(fx, benchmark):
    query = parse_query(QUERY_TEXT, fx.collection.analyzer)
    scheme = get_scheme("anysum")

    def run():
        ranked = rank_topk(query, scheme, fx.index, K)
        run.rows = len(ranked)
        return ranked

    benchmark.pedantic(run, rounds=9, iterations=1, warmup_rounds=1)
    record_rows(benchmark, run)
    MEASURED["rank-join"] = median_seconds(benchmark)


def test_full_evaluation_measure(fx, benchmark):
    query = parse_query(QUERY_TEXT, fx.collection.analyzer)
    run = make_runner(fx, query, "anysum")
    benchmark.pedantic(run, rounds=9, iterations=1, warmup_rounds=1)
    record_rows(benchmark, run)
    MEASURED["full"] = median_seconds(benchmark)


def test_rankjoin_report(fx, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if set(MEASURED) != {"rank-join", "full"}:
        pytest.skip("measurements missing (run the whole module)")

    query = parse_query(QUERY_TEXT, fx.collection.analyzer)
    scheme = get_scheme("anysum")
    fast = rank_topk(query, scheme, fx.index, K)
    run = make_runner(fx, query, "anysum")
    full = run()[:K]
    agree = [d for d, _ in fast] == [d for d, _ in full]

    rows = [
        ["rank-join top-10", f"{MEASURED['rank-join'] * 1000:.3f} ms"],
        ["full evaluation", f"{MEASURED['full'] * 1000:.3f} ms"],
        ["results identical", "yes" if agree else "NO"],
    ]
    text = render_table(
        ["path", "value"],
        rows,
        title=f"Rank-join top-{K} vs full evaluation on {QUERY_TEXT!r}",
    )
    write_artifact("topk_rankjoin.txt", text)
    assert agree
