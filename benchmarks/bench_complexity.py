"""Section 6 complexity study.

Three empirical curves:

1. **Match-table growth**: the match table of a Q-keyword conjunction of a
   frequent word grows as O(W^Q) — the exponential that makes eager
   materialization untenable and optimization necessary.
2. **BOOL-class scaling**: predicate-free queries under pre-counting run
   on the term-document index, scaling with the number of documents D
   (the paper's O(D x Q^2) plan, simulated "using the pre-counting
   optimization").
3. **PPRED-class scaling**: positional queries under forward-scan joins
   scale with collection words W (the paper's O(W x Q^2) plan, simulated
   "using forward-scan joins").
"""

import pytest

from repro.bench.reporting import render_table
from repro.bench.workload import bench_fixture
from repro.corpus.collection import DocumentCollection
from repro.graft.optimizer import OptimizerOptions
from repro.index.builder import build_index
from repro.mcalc.parser import parse_query

from benchmarks.conftest import (
    make_runner,
    median_seconds,
    record_rows,
    write_artifact,
)

SIZES = (500, 1000, 2000, 4000)
MEASURED: dict[tuple[str, int], float] = {}


# -- 1. match-table growth ---------------------------------------------------

def test_match_table_growth_is_exponential_in_query_size(benchmark):
    """|match table| = tf^Q per document for a repeated keyword."""
    collection = DocumentCollection()
    collection.add_tokens(["w"] * 12 + ["x"] * 12)
    index = build_index(collection)

    from repro.api import SearchEngine

    engine = SearchEngine(collection)
    sizes = {}

    def measure_all():
        for q_size in (1, 2, 3, 4):
            text = " ".join(["w"] * q_size)
            sizes[q_size] = len(engine.match_table(text))
        return sizes

    benchmark.pedantic(measure_all, rounds=3, iterations=1)
    assert sizes == {1: 12, 2: 144, 3: 12**3, 4: 12**4}

    rows = [[f"Q={q}", str(n)] for q, n in sorted(sizes.items())]
    text = render_table(
        ["query size", "match-table rows (one 12-occurrence doc)"],
        rows,
        title="Section 6: match tables grow as O(W^Q)",
    )
    write_artifact("complexity_match_table.txt", text)


# -- 2 & 3: data scaling of the restricted-language plans --------------------

BOOL_QUERY = "free list service"
PPRED_QUERY = '"free software" (windows emulator)WINDOW[50]'

BOOL_OPTIONS = OptimizerOptions(alternate_elimination=True, pre_counting=True)
PPRED_OPTIONS = OptimizerOptions(
    alternate_elimination=True, pre_counting=True, forward_scan=True
)


@pytest.mark.parametrize("num_docs", SIZES)
@pytest.mark.parametrize("klass", ["BOOL", "PPRED"])
def test_scaling_measure(klass, num_docs, benchmark):
    fx = bench_fixture(num_docs=num_docs)
    if klass == "BOOL":
        query = parse_query(BOOL_QUERY, fx.collection.analyzer)
        options = BOOL_OPTIONS
    else:
        query = parse_query(PPRED_QUERY, fx.collection.analyzer)
        options = PPRED_OPTIONS
    run = make_runner(fx, query, "anysum", options)
    benchmark.pedantic(run, rounds=9, iterations=1, warmup_rounds=1)
    record_rows(benchmark, run)
    MEASURED[(klass, num_docs)] = median_seconds(benchmark)


def test_scaling_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(MEASURED) < 2 * len(SIZES):
        pytest.skip("measurements missing (run the whole module)")

    rows = []
    for klass in ("BOOL", "PPRED"):
        base = MEASURED[(klass, SIZES[0])]
        for size in SIZES:
            t = MEASURED[(klass, size)]
            rows.append([
                klass,
                str(size),
                f"{t * 1000:.3f} ms",
                f"{t / base:.2f}x",
            ])
    text = render_table(
        ["class", "documents", "median time", "vs smallest"],
        rows,
        title=(
            "Section 6: restricted-language plan scaling "
            "(BOOL via pre-counting ~ O(D); PPRED via forward-scan ~ O(W))"
        ),
    )
    write_artifact("complexity_scaling.txt", text)

    # Shape: both classes scale roughly linearly in data size — an 8x
    # corpus must cost well under the exponential blowup (allow generous
    # constant-factor noise: between ~2x and ~32x for 8x data).
    for klass in ("BOOL", "PPRED"):
        ratio = MEASURED[(klass, SIZES[-1])] / MEASURED[(klass, SIZES[0])]
        assert ratio < 32.0, (klass, ratio)
