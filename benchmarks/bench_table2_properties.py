"""Regenerate Table 2: optimization-relevant properties of the seven
schemes implemented for the Section 7 study."""

from repro.bench.reporting import render_table
from repro.sa.registry import get_scheme

from benchmarks.conftest import write_artifact

SCHEMES = (
    "anysum",
    "sumbest",
    "lucene",
    "join-normalized",
    "event-model",
    "meansum",
    "bestsum-mindist",
)

ROWS = (
    ("directional", "directional"),
    ("positional", "positional"),
    ("alt associates", "alt_associates"),
    ("alt commutes", "alt_commutes"),
    ("alt monotonic inc", "alt_monotonic_increasing"),
    ("alt idempotent", "alt_idempotent"),
    ("alt multiplies", "alt_multiplies"),
    ("constant", "constant"),
    ("conj associates", "conj_associates"),
    ("conj commutes", "conj_commutes"),
    ("conj monotonic inc", "conj_monotonic_increasing"),
    ("disj associates", "disj_associates"),
    ("disj commutes", "disj_commutes"),
    ("disj monotonic inc", "disj_monotonic_increasing"),
)


def _build_table():
    cells = {name: get_scheme(name).properties.as_table_row() for name in SCHEMES}
    rows = []
    for label, field in ROWS:
        rows.append([label] + [cells[name][field] for name in SCHEMES])
    return rows


def test_table2_regeneration(benchmark):
    rows = benchmark.pedantic(_build_table, rounds=9, iterations=10)
    text = render_table(
        ["PROPERTY"] + list(SCHEMES),
        rows,
        title="Table 2: declared scheme properties "
              "(validated by tests/sa/test_scheme_properties.py)",
    )
    write_artifact("table2.txt", text)
    by_label = {r[0]: r[1:] for r in rows}
    # Spot-check the paper's headline cells.
    assert by_label["constant"][0] == "yes"          # AnySum
    assert by_label["directional"][1] == "col"        # SumBest
    assert by_label["directional"][4] == "row"        # Event Model
    assert by_label["positional"][6] == "yes"         # BestSum+MinDist
