"""Ablation: the contribution of each rewrite to the optimized pipeline.

DESIGN.md calls for ablation benches of the design choices: each
optimizer toggle is disabled in turn (full pipeline minus one rewrite) on
a representative query per scheme family, quantifying what every rewrite
buys — including the classical ones the paper does not re-validate.
"""

import pytest

from repro.bench.measure import reduction_percent
from repro.bench.reporting import render_table
from repro.graft.optimizer import OptimizerOptions

from benchmarks.conftest import (
    make_runner,
    median_seconds,
    record_rows,
    write_artifact,
)

#: (scheme, query) pairs covering the three optimizer paths: constant
#: (delta + pre-count), eager-aggregation, and row-first canonical.
CASES = {
    "anysum/Q8": ("anysum", "Q8"),
    "sumbest/Q5": ("sumbest", "Q5"),
    "event-model/Q9": ("event-model", "Q9"),
}

TOGGLES = (
    "full",
    "selection_pushing",
    "join_reordering",
    "eager_counting",
    "eager_aggregation",
    "sort_elimination",
)

MEASURED: dict[tuple[str, str], float] = {}


def _options(toggle: str) -> OptimizerOptions:
    if toggle == "full":
        return OptimizerOptions()
    return OptimizerOptions(**{toggle: False})


@pytest.mark.parametrize("toggle", TOGGLES)
@pytest.mark.parametrize("case", list(CASES))
def test_ablation_measure(case, toggle, fx, benchmark):
    scheme_name, query_name = CASES[case]
    run = make_runner(
        fx, fx.queries[query_name], scheme_name, _options(toggle)
    )
    benchmark.pedantic(run, rounds=9, iterations=1, warmup_rounds=1)
    record_rows(benchmark, run)
    MEASURED[(case, toggle)] = median_seconds(benchmark)


def test_ablation_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(MEASURED) < len(CASES) * len(TOGGLES):
        pytest.skip("measurements missing (run the whole module)")

    rows = []
    for case in CASES:
        full = MEASURED[(case, "full")]
        for toggle in TOGGLES[1:]:
            slowdown = reduction_percent(MEASURED[(case, toggle)], full)
            rows.append([
                case,
                toggle,
                f"{MEASURED[(case, toggle)] * 1000:.3f} ms",
                f"{slowdown:+.1f}%",
            ])
        rows.append([case, "full", f"{full * 1000:.3f} ms", "-"])
    text = render_table(
        ["case", "pipeline minus", "median time", "full pipeline saves"],
        rows,
        title="Ablation: full optimizer pipeline vs each rewrite disabled",
    )
    write_artifact("ablation_rules.txt", text)
