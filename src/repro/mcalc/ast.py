"""The MCalc formula AST and the Query container.

Formulas are immutable trees over the primitives of Section 3.1:

* ``Has(var, keyword)``      — HAS(d, p, k): keyword k occurs at position p.
* ``Empty(var)``             — EMPTY(p): p binds to the empty symbol.
* ``Pred(name, vars, consts)`` — a full-text predicate over positions.
* ``And`` / ``Or`` / ``Not`` — first-order connectives.

A :class:`Query` fixes the free-variable (column) order and records which
keyword each variable matches — the information scoring initializers need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import PlanError


class Formula:
    """Base class of MCalc formula nodes."""

    def walk(self) -> Iterator["Formula"]:
        """Pre-order traversal of the subtree rooted here."""
        yield self
        for child in self.children():
            yield from child.walk()

    def children(self) -> tuple["Formula", ...]:
        return ()


@dataclass(frozen=True)
class Has(Formula):
    """HAS(d, var, keyword): keyword occurs in d at the position ``var``."""

    var: str
    keyword: str

    def __str__(self) -> str:
        return f"HAS(d, {self.var}, {self.keyword!r})"


@dataclass(frozen=True)
class Empty(Formula):
    """EMPTY(var): the variable binds to the empty position symbol."""

    var: str

    def __str__(self) -> str:
        return f"EMPTY({self.var})"


@dataclass(frozen=True)
class Pred(Formula):
    """A full-text predicate PRED(vars..., constants...) (Section 3.1)."""

    name: str
    vars: tuple[str, ...]
    constants: tuple[int, ...] = ()

    def __str__(self) -> str:
        args = ", ".join(self.vars)
        consts = ", ".join(str(c) for c in self.constants)
        return f"{self.name}({args}{', ' if consts else ''}{consts})"


@dataclass(frozen=True)
class And(Formula):
    """Conjunction over two or more subformulas."""

    operands: tuple[Formula, ...]

    def __post_init__(self):
        if len(self.operands) < 2:
            raise PlanError("And requires at least two operands")

    def children(self) -> tuple[Formula, ...]:
        return self.operands

    def __str__(self) -> str:
        return "(" + " AND ".join(str(c) for c in self.operands) + ")"


@dataclass(frozen=True)
class Or(Formula):
    """Disjunction over two or more subformulas."""

    operands: tuple[Formula, ...]

    def __post_init__(self):
        if len(self.operands) < 2:
            raise PlanError("Or requires at least two operands")

    def children(self) -> tuple[Formula, ...]:
        return self.operands

    def __str__(self) -> str:
        return "(" + " OR ".join(str(c) for c in self.operands) + ")"


@dataclass(frozen=True)
class Not(Formula):
    """Negation.

    This library supports negation whose position variables are
    existentially quantified away (document-level exclusion), translated to
    an anti-join; negated variables never appear as match-table columns.
    """

    operand: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"(NOT {self.operand})"


def conjoin(operands: list[Formula]) -> Formula:
    """And over ``operands``, collapsing the single-element case."""
    if not operands:
        raise PlanError("cannot conjoin zero formulas")
    if len(operands) == 1:
        return operands[0]
    return And(tuple(operands))


def disjoin(operands: list[Formula]) -> Formula:
    """Or over ``operands``, collapsing the single-element case."""
    if not operands:
        raise PlanError("cannot disjoin zero formulas")
    if len(operands) == 1:
        return operands[0]
    return Or(tuple(operands))


def formula_vars(formula: Formula) -> set[str]:
    """All position variables mentioned anywhere in ``formula``."""
    out: set[str] = set()
    for node in formula.walk():
        if isinstance(node, (Has, Empty)):
            out.add(node.var)
        elif isinstance(node, Pred):
            out.update(node.vars)
    return out


def keyword_bindings(formula: Formula) -> dict[str, str]:
    """Map each variable to the keyword its HAS predicates bind it to.

    Raises:
        PlanError: if one variable is bound to two different keywords
            (scoring needs a unique keyword per column).
    """
    bindings: dict[str, str] = {}
    for node in formula.walk():
        if isinstance(node, Has):
            existing = bindings.get(node.var)
            if existing is not None and existing != node.keyword:
                raise PlanError(
                    f"variable {node.var} bound to both {existing!r} "
                    f"and {node.keyword!r}"
                )
            bindings[node.var] = node.keyword
    return bindings


@dataclass
class Query:
    """A complete MCalc query: a formula plus its output column order.

    Attributes:
        formula: The (safe, EMPTY-padded) matching formula ``Psi``.
        free_vars: Output position variables in column order; together with
            the implicit document column they define the match-table schema.
        var_keywords: var -> keyword mapping used by scoring initializers.
        source_formula: The formula as written by the user, *before*
            safe-range padding or any normalization.  The scoring plan
            ``Phi`` is derived from this tree (Section 4.2.1: the scoring
            plan follows the user's syntax tree, not the optimizer's).
        text: Original shorthand text, if parsed from text.
    """

    formula: Formula
    free_vars: tuple[str, ...]
    var_keywords: dict[str, str] = field(default_factory=dict)
    source_formula: Formula | None = None
    text: str = ""

    def __post_init__(self):
        if not self.var_keywords:
            self.var_keywords = keyword_bindings(self.formula)
        if self.source_formula is None:
            self.source_formula = self.formula
        missing = [v for v in self.free_vars if v not in self.var_keywords]
        if missing:
            raise PlanError(
                f"free variables {missing} have no HAS binding; "
                "unsafe query (no keyword to scan for them)"
            )

    @property
    def keywords(self) -> tuple[str, ...]:
        """Keywords in column order."""
        return tuple(self.var_keywords[v] for v in self.free_vars)

    def predicates(self) -> list[Pred]:
        """All full-text predicates in the matching formula."""
        return [n for n in self.formula.walk() if isinstance(n, Pred)]

    def predicate_vars(self) -> set[str]:
        """Variables constrained by at least one full-text predicate.

        The complement of this set (within free_vars) are the paper's
        "free keywords" — the pre-counting candidates of Section 5.2.3.
        """
        out: set[str] = set()
        for pred in self.predicates():
            out.update(pred.vars)
        return out

    def free_keyword_vars(self) -> list[str]:
        """Variables whose keyword is involved in no full-text predicate."""
        constrained = self.predicate_vars()
        return [v for v in self.free_vars if v not in constrained]
