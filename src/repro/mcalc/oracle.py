"""Brute-force MCalc reference evaluator.

This is the executable form of Definition 2 ("the tuple (d, p) is a match
of query Psi in document d iff it is a satisfying assignment ..."): it
enumerates every assignment of free position variables to keyword
positions (or the empty symbol, where the variable is EMPTY-able) and
keeps the satisfying ones.

Complexity is exponential in the number of variables — exactly the
``O(W^Q)`` worst case of Section 6 — so the oracle exists for testing and
pedagogy, as the ground truth the algebraic engine is validated against.
"""

from __future__ import annotations

from itertools import product

from repro.corpus.document import Document
from repro.corpus.collection import DocumentCollection
from repro.mcalc.ast import And, Empty, Formula, Has, Not, Or, Pred, Query
from repro.mcalc.predicates import get_predicate
from repro.ma.match_table import MatchTable, row_sort_key


def _emptyable_vars(formula: Formula) -> set[str]:
    """Variables that appear in some EMPTY predicate."""
    return {n.var for n in formula.walk() if isinstance(n, Empty)}


def _satisfies(
    formula: Formula,
    assignment: dict[str, int | None],
    doc: Document,
) -> bool:
    if isinstance(formula, Has):
        pos = assignment.get(formula.var)
        if pos is None:
            return False
        return 0 <= pos < doc.length and doc.tokens[pos] == formula.keyword
    if isinstance(formula, Empty):
        return assignment.get(formula.var, None) is None
    if isinstance(formula, Pred):
        impl = get_predicate(formula.name)
        positions = [assignment.get(v) for v in formula.vars]
        return impl.holds(positions, formula.constants, doc.sentence_starts)
    if isinstance(formula, And):
        return all(_satisfies(op, assignment, doc) for op in formula.operands)
    if isinstance(formula, Or):
        return any(_satisfies(op, assignment, doc) for op in formula.operands)
    if isinstance(formula, Not):
        # Negated variables are existentially quantified away: the negation
        # holds iff no assignment of its own variables satisfies the body.
        return not _exists(formula.operand, doc)
    raise TypeError(f"unknown formula node {type(formula).__name__}")


def _exists(formula: Formula, doc: Document) -> bool:
    """Existential satisfaction of a closed subformula over ``doc``."""
    sub_vars = sorted(
        {n.var for n in formula.walk() if isinstance(n, (Has, Empty))}
    )
    keywords: dict[str, str] = {}
    for n in formula.walk():
        if isinstance(n, Has):
            keywords[n.var] = n.keyword
    emptyable = _emptyable_vars(formula)
    domains = []
    for var in sub_vars:
        domain: list[int | None] = []
        if var in keywords:
            domain.extend(doc.positions_of(keywords[var]))
        if var in emptyable:
            domain.append(None)
        domains.append(domain)
    for values in product(*domains):
        assignment = dict(zip(sub_vars, values))
        if _satisfies(formula, assignment, doc):
            return True
    return False


def document_matches(query: Query, doc: Document) -> list[tuple]:
    """All matches of ``query`` in ``doc`` as sorted ``(doc, cells...)``
    rows."""
    emptyable = _emptyable_vars(query.formula)
    domains = []
    for var in query.free_vars:
        domain: list[int | None] = list(
            doc.positions_of(query.var_keywords[var])
        )
        if var in emptyable:
            domain.append(None)
        domains.append(domain)
    rows = []
    for values in product(*domains):
        assignment = dict(zip(query.free_vars, values))
        if _satisfies(query.formula, assignment, doc):
            rows.append((doc.doc_id,) + tuple(values))
    rows.sort(key=row_sort_key)
    return rows


def match_table(query: Query, collection: DocumentCollection) -> MatchTable:
    """The full match table of ``query`` over ``collection``, in canonical
    (lexicographic) order."""
    table = MatchTable(query.free_vars)
    for doc in collection:
        table.rows.extend(document_matches(query, doc))
    return table
