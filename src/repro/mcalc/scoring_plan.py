"""Derivation of the scoring plan Phi from a query (Section 4.2.1).

The scoring plan is "a syntactic transformation of a query Psi which
provides information needed to determine column-wise subtables: the
structure of conjunctions and disjunctions between free position
variables".  The transformation:

1. erase all non-HAS predicates;
2. erase HAS predicates with quantified position variables;
3. erase all negations;
4. erase dangling local connectives;
5. replace each remaining HAS predicate with its position variable;
6. replace the remaining AND / OR with the conjunctive / disjunctive
   combinators.

Crucially, Phi is derived from the *user's* syntax tree
(``Query.source_formula``), not from any optimizer-normalized tree: "the
scoring plan is obtained from a syntax tree derived using the properties of
the selected scoring scheme", while the matching plan is free to exploit
full FO-logic equivalences.  Our Phi nodes are n-ary but evaluate as a
left-fold of the binary combinators, preserving the written order, so
non-associative and non-commutative schemes stay well-defined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import PlanError
from repro.mcalc.ast import And, Empty, Formula, Has, Not, Or, Pred, Query


class PhiNode:
    """Base class of scoring-plan nodes."""

    def variables(self) -> Iterator[str]:
        raise NotImplementedError


@dataclass(frozen=True)
class PhiVar(PhiNode):
    """A leaf: the (already-initialized or already-aggregated) score of one
    match-table column."""

    var: str

    def variables(self) -> Iterator[str]:
        yield self.var

    def __str__(self) -> str:
        return self.var


@dataclass(frozen=True)
class PhiConj(PhiNode):
    """Conjunctive combination of child scores (the paper's circled-slash
    operator), evaluated as a left fold."""

    children: tuple[PhiNode, ...]

    def variables(self) -> Iterator[str]:
        for child in self.children:
            yield from child.variables()

    def __str__(self) -> str:
        return "(" + " (x) ".join(str(c) for c in self.children) + ")"


@dataclass(frozen=True)
class PhiDisj(PhiNode):
    """Disjunctive combination of child scores, evaluated as a left fold."""

    children: tuple[PhiNode, ...]

    def variables(self) -> Iterator[str]:
        for child in self.children:
            yield from child.variables()

    def __str__(self) -> str:
        return "(" + " (+) ".join(str(c) for c in self.children) + ")"


def derive_scoring_plan(query: Query) -> PhiNode:
    """Derive Phi for ``query`` following the Section 4.2.1 procedure."""
    free = set(query.free_vars)
    phi = _transform(query.source_formula, free)
    if phi is None:
        raise PlanError("query has no scorable (free, positive) keywords")
    return phi


def _transform(formula: Formula, free: set[str]) -> PhiNode | None:
    if isinstance(formula, Has):
        return PhiVar(formula.var) if formula.var in free else None
    if isinstance(formula, (Empty, Pred, Not)):
        # EMPTY carries no evidence of its own (the padded variable's score
        # flows through the sibling branch's column); predicates and
        # negations are erased by the procedure.
        return None
    if isinstance(formula, (And, Or)):
        children = [_transform(op, free) for op in formula.operands]
        kept = [c for c in children if c is not None]
        if not kept:
            return None
        if len(kept) == 1:
            # Dangling connective: collapse.
            return kept[0]
        if isinstance(formula, And):
            return PhiConj(tuple(kept))
        return PhiDisj(tuple(kept))
    raise PlanError(f"unknown formula node {type(formula).__name__}")


def fold_phi(
    phi: PhiNode,
    leaf: Callable[[str], object],
    conj: Callable[[object, object], object],
    disj: Callable[[object, object], object],
) -> object:
    """Evaluate ``phi`` with the given leaf lookup and binary combinators.

    Children of n-ary nodes are combined left-to-right, preserving the
    user's written order (required for non-commutative schemes).
    """
    if isinstance(phi, PhiVar):
        return leaf(phi.var)
    if isinstance(phi, PhiConj):
        acc = fold_phi(phi.children[0], leaf, conj, disj)
        for child in phi.children[1:]:
            acc = conj(acc, fold_phi(child, leaf, conj, disj))
        return acc
    if isinstance(phi, PhiDisj):
        acc = fold_phi(phi.children[0], leaf, conj, disj)
        for child in phi.children[1:]:
            acc = disj(acc, fold_phi(child, leaf, conj, disj))
        return acc
    raise PlanError(f"unknown Phi node {type(phi).__name__}")
