"""Render a Query back into the Section-8 shorthand syntax.

The inverse of :func:`repro.mcalc.parser.parse_query` (up to whitespace):
``parse_query(unparse(q))`` reproduces ``q``'s formula exactly.  Used by
tooling (CLI, logs) and as the round-trip property anchoring the parser
tests.
"""

from __future__ import annotations

from repro.errors import PlanError
from repro.mcalc.ast import And, Formula, Has, Not, Or, Pred, Query


def unparse(query: Query) -> str:
    """Shorthand text whose parse equals ``query``."""
    return _render(query.source_formula, top=True)


def _render(formula: Formula, top: bool = False) -> str:
    if isinstance(formula, Has):
        return formula.keyword
    if isinstance(formula, Not):
        inner = _render(formula.operand)
        if " " in inner and not inner.startswith("("):
            inner = f"({inner})"
        return f"-{inner}"
    if isinstance(formula, Or):
        body = " | ".join(_render(op) for op in formula.operands)
        return body if top else f"({body})"
    if isinstance(formula, And):
        return _render_and(formula, top)
    if isinstance(formula, Pred):
        raise PlanError(
            "a bare predicate cannot be rendered; predicates must be "
            "attached to the conjunction binding their variables"
        )
    raise PlanError(f"cannot unparse {type(formula).__name__}")


def _render_and(formula: And, top: bool) -> str:
    keywords = [op for op in formula.operands if isinstance(op, Has)]
    preds = [op for op in formula.operands if isinstance(op, Pred)]
    others = [
        op for op in formula.operands
        if not isinstance(op, (Has, Pred))
    ]

    if preds and not others and _is_phrase(keywords, preds):
        return '"' + " ".join(h.keyword for h in keywords) + '"'

    if preds:
        body = " ".join(_render(op) for op in formula.operands
                        if not isinstance(op, Pred))
        if len(preds) == 1:
            pred = preds[0]
            consts = (
                "[" + ",".join(str(c) for c in pred.constants) + "]"
                if pred.constants else ""
            )
            return f"({body}){pred.name}{consts}"
        raise PlanError(
            "cannot render multiple non-phrase predicates on one group"
        )

    parts = [_render(op) for op in formula.operands]
    body = " ".join(parts)
    return body if top else f"({body})"


def _is_phrase(keywords: list[Has], preds: list[Pred]) -> bool:
    """A DISTANCE-1 chain over consecutive keyword variables."""
    if len(preds) != len(keywords) - 1 or len(keywords) < 2:
        return False
    expected_pairs = [
        (a.var, b.var) for a, b in zip(keywords, keywords[1:])
    ]
    actual_pairs = [
        p.vars for p in preds
        if p.name == "DISTANCE" and p.constants == (1,)
    ]
    return actual_pairs == expected_pairs
