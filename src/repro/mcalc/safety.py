"""Safe-range analysis and EMPTY-padding of disjunctions.

MCalc "adds a safe-range requirement (similar to SQL) which restricts
matches to only those useful for scoring by binding under-specified
position variables to the empty symbol via the EMPTY predicate"
(Section 3.1).  Concretely:

* every free variable must be *bound* — by HAS or EMPTY — in every
  disjunct that can produce a match (otherwise the match table would have
  unbound columns);
* full-text predicates must only mention variables that are bound
  somewhere in the query;
* negated subformulas may not bind output variables (their variables are
  existentially quantified away; the translation uses an anti-join).

:func:`pad_disjunctions` performs the Q3-style transformation: each branch
of an ``Or`` is conjoined with ``EMPTY(v)`` for every variable bound by a
sibling branch but not by itself, exactly as the paper pads Psi^0/Psi^1.
"""

from __future__ import annotations

from repro.errors import UnsafeQueryError
from repro.mcalc.ast import (
    And,
    Empty,
    Formula,
    Has,
    Not,
    Or,
    Pred,
    conjoin,
)


def bound_vars(formula: Formula) -> set[str]:
    """Variables guaranteed a binding (HAS or EMPTY) by ``formula``.

    Standard safe-range rules: conjunction unions bindings, disjunction
    intersects them, negation and bare predicates bind nothing.
    """
    if isinstance(formula, (Has, Empty)):
        return {formula.var}
    if isinstance(formula, And):
        out: set[str] = set()
        for op in formula.operands:
            out |= bound_vars(op)
        return out
    if isinstance(formula, Or):
        sets = [bound_vars(op) for op in formula.operands]
        out = sets[0]
        for s in sets[1:]:
            out &= s
        return out
    return set()


def pad_disjunctions(formula: Formula) -> Formula:
    """Return ``formula`` with every disjunct EMPTY-padded to a common
    variable set (bottom-up)."""
    if isinstance(formula, And):
        return And(tuple(pad_disjunctions(op) for op in formula.operands))
    if isinstance(formula, Not):
        return Not(pad_disjunctions(formula.operand))
    if isinstance(formula, Or):
        branches = [pad_disjunctions(op) for op in formula.operands]
        all_bound: set[str] = set()
        for b in branches:
            all_bound |= bound_vars(b)
        padded = []
        for b in branches:
            missing = sorted(all_bound - bound_vars(b))
            if missing:
                b = conjoin([b] + [Empty(v) for v in missing])
            padded.append(b)
        return Or(tuple(padded))
    return formula


def negated_vars(formula: Formula) -> set[str]:
    """Variables appearing anywhere under a negation."""
    out: set[str] = set()
    for node in formula.walk():
        if isinstance(node, Not):
            for inner in node.operand.walk():
                if isinstance(inner, (Has, Empty)):
                    out.add(inner.var)
                elif isinstance(inner, Pred):
                    out.update(inner.vars)
    return out


def check_safe(formula: Formula, free_vars: tuple[str, ...]) -> None:
    """Raise :class:`UnsafeQueryError` unless ``formula`` is safe-range
    with respect to the declared output variables."""
    bound = bound_vars(formula)
    unbound = [v for v in free_vars if v not in bound]
    if unbound:
        raise UnsafeQueryError(
            f"free variables {unbound} are not bound (by HAS or EMPTY) on "
            "every disjunct; apply pad_disjunctions or rewrite the query"
        )
    neg = negated_vars(formula)
    leaked = neg.intersection(free_vars)
    if leaked:
        raise UnsafeQueryError(
            f"output variables {sorted(leaked)} occur under negation; "
            "negated variables must be quantified away"
        )
    all_bindable = {
        node.var
        for node in formula.walk()
        if isinstance(node, (Has, Empty))
    }
    for node in formula.walk():
        if isinstance(node, Pred):
            dangling = [v for v in node.vars if v not in all_bindable]
            if dangling:
                raise UnsafeQueryError(
                    f"predicate {node.name} constrains unbound "
                    f"variables {dangling}"
                )
