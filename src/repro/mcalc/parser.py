"""Parser for the paper's shorthand full-text query syntax (Section 8).

The grammar, as used by queries Q4..Q11::

    query   := disj
    disj    := conj ('|' conj)*
    conj    := item+                      # juxtaposition means AND
    item    := '-' primary | primary suffix?
    primary := WORD | '"' WORD+ '"' | '(' disj ')'
    suffix  := NAME '[' INT (',' INT)* ']' | NAME '[' ']' | NAME

* Keywords are conjuncted unless separated by a vertical bar.
* Quotes imply a PHRASE predicate (a chain of DISTANCE[1] constraints).
* Other predicates are "preceded by keyword arguments in parenthesis and
  followed by constant arguments in brackets":
  ``(windows emulator)WINDOW[50]``.  A predicate applies to every keyword
  variable introduced inside its group.
* ``-word`` (an extension) excludes documents containing the word,
  translated to an anti-join; the variable is quantified away.

Position variables are implicit: ``p0, p1, ...`` in order of keyword
appearance, matching the paper's examples.
"""

from __future__ import annotations

import re

from repro.corpus.analyzer import Analyzer
from repro.errors import QuerySyntaxError
from repro.mcalc.ast import (
    And,
    Formula,
    Has,
    Not,
    Pred,
    Query,
    conjoin,
    disjoin,
)
from repro.mcalc.predicates import get_predicate, registered_predicates


def _is_registered(name: str) -> bool:
    return name in registered_predicates()
from repro.mcalc.safety import check_safe, pad_disjunctions

_TOKEN = re.compile(
    r"""
    (?P<space>\s+)
  | (?P<quote>")
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<bar>\|)
  | (?P<minus>-)
  | (?P<lbrack>\[)
  | (?P<rbrack>\])
  | (?P<comma>,)
  | (?P<word>[A-Za-z0-9_']+)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[tuple[str, str, int]]:
    tokens: list[tuple[str, str, int]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if m is None:
            raise QuerySyntaxError(f"unexpected character {text[pos]!r}", pos)
        kind = m.lastgroup
        if kind != "space":
            tokens.append((kind, m.group(), pos))
        pos = m.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, text: str, analyzer: Analyzer | None):
        self.text = text
        self.tokens = _tokenize(text)
        self.i = 0
        self.analyzer = analyzer
        self.var_count = 0
        self.quantified: set[str] = set()

    # -- token helpers -----------------------------------------------------

    def _peek(self, offset: int = 0) -> tuple[str, str, int] | None:
        j = self.i + offset
        return self.tokens[j] if j < len(self.tokens) else None

    def _next(self) -> tuple[str, str, int]:
        tok = self._peek()
        if tok is None:
            raise QuerySyntaxError("unexpected end of query", len(self.text))
        self.i += 1
        return tok

    def _expect(self, kind: str) -> tuple[str, str, int]:
        tok = self._next()
        if tok[0] != kind:
            raise QuerySyntaxError(
                f"expected {kind}, found {tok[1]!r}", tok[2]
            )
        return tok

    def _fresh_var(self) -> str:
        var = f"p{self.var_count}"
        self.var_count += 1
        return var

    def _keyword(self, word: str, position: int) -> str:
        if self.analyzer is None:
            return word.lower()
        try:
            return self.analyzer.token(word)
        except ValueError as exc:
            raise QuerySyntaxError(str(exc), position) from exc

    # -- grammar -----------------------------------------------------------

    def parse(self) -> tuple[Formula, list[str]]:
        formula, vars_ = self._disj()
        if self.i != len(self.tokens):
            tok = self.tokens[self.i]
            raise QuerySyntaxError(f"trailing input {tok[1]!r}", tok[2])
        return formula, vars_

    def _disj(self) -> tuple[Formula, list[str]]:
        branches = [self._conj()]
        while self._peek() is not None and self._peek()[0] == "bar":
            self._next()
            branches.append(self._conj())
        formulas = [f for f, _ in branches]
        vars_: list[str] = []
        for _, vs in branches:
            vars_.extend(vs)
        return disjoin(formulas), vars_

    def _conj(self) -> tuple[Formula, list[str]]:
        items: list[tuple[Formula, list[str]]] = []
        while True:
            tok = self._peek()
            if tok is None or tok[0] in ("bar", "rparen"):
                break
            items.append(self._item())
        if not items:
            tok = self._peek()
            where = tok[2] if tok else len(self.text)
            raise QuerySyntaxError("expected a keyword, phrase or group", where)
        formulas = [f for f, _ in items]
        vars_: list[str] = []
        for _, vs in items:
            vars_.extend(vs)
        return conjoin(formulas), vars_

    def _item(self) -> tuple[Formula, list[str]]:
        tok = self._peek()
        if tok[0] == "minus":
            self._next()
            formula, vars_ = self._primary()
            self.quantified.update(vars_)
            return Not(formula), []
        formula, vars_ = self._primary()
        suffix = self._maybe_predicate_suffix()
        if suffix is not None:
            name, constants, where = suffix
            impl = get_predicate(name)
            impl.check_arity(len(vars_), len(constants))
            pred = Pred(name, tuple(vars_), constants)
            formula = And((formula, pred)) if not isinstance(formula, And) \
                else And(formula.operands + (pred,))
        return formula, vars_

    def _primary(self) -> tuple[Formula, list[str]]:
        tok = self._next()
        if tok[0] == "word":
            keyword = self._keyword(tok[1], tok[2])
            var = self._fresh_var()
            return Has(var, keyword), [var]
        if tok[0] == "quote":
            return self._phrase(tok[2])
        if tok[0] == "lparen":
            formula, vars_ = self._disj()
            self._expect("rparen")
            return formula, vars_
        raise QuerySyntaxError(f"unexpected token {tok[1]!r}", tok[2])

    def _phrase(self, start: int) -> tuple[Formula, list[str]]:
        """Quoted phrase: HAS for each word + DISTANCE(p_i, p_i+1, 1)."""
        words: list[tuple[str, int]] = []
        while True:
            tok = self._next()
            if tok[0] == "quote":
                break
            if tok[0] != "word":
                raise QuerySyntaxError(
                    f"only words may appear in a phrase, found {tok[1]!r}",
                    tok[2],
                )
            words.append((tok[1], tok[2]))
        if not words:
            raise QuerySyntaxError("empty phrase", start)
        parts: list[Formula] = []
        vars_: list[str] = []
        for word, where in words:
            var = self._fresh_var()
            parts.append(Has(var, self._keyword(word, where)))
            vars_.append(var)
        for a, b in zip(vars_, vars_[1:]):
            parts.append(Pred("DISTANCE", (a, b), (1,)))
        return conjoin(parts), vars_

    def _maybe_predicate_suffix(self) -> tuple[str, tuple[int, ...], int] | None:
        """A predicate application directly after a group or phrase.

        Predicate names are written in upper case, which is how they are
        distinguished from keywords.
        """
        tok = self._peek()
        if tok is None or tok[0] != "word":
            return None
        name = tok[1]
        if not name.isupper():
            return None
        nxt = self._peek(1)
        has_brackets = nxt is not None and nxt[0] == "lbrack"
        if not has_brackets and not _is_registered(name):
            # An upper-case word that is neither bracketed nor a known
            # predicate is just a (shouty) keyword.
            return None
        self._next()
        constants: list[int] = []
        nxt = self._peek()
        if nxt is not None and nxt[0] == "lbrack":
            self._next()
            while True:
                tok2 = self._peek()
                if tok2 is None:
                    raise QuerySyntaxError("unterminated constant list", len(self.text))
                if tok2[0] == "rbrack":
                    self._next()
                    break
                if tok2[0] == "comma":
                    self._next()
                    continue
                if tok2[0] == "word" and tok2[1].isdigit():
                    constants.append(int(tok2[1]))
                    self._next()
                    continue
                raise QuerySyntaxError(
                    f"expected integer constant, found {tok2[1]!r}", tok2[2]
                )
        return name, tuple(constants), tok[2]


def parse_query(text: str, analyzer: Analyzer | None = None) -> Query:
    """Parse shorthand ``text`` into a safe, EMPTY-padded :class:`Query`.

    Args:
        text: Query in the Section-8 shorthand syntax.
        analyzer: Analyzer used to normalize keywords; defaults to plain
            lower-casing so parsing needs no collection in scope.

    Returns:
        A :class:`Query` whose ``formula`` is safe-range (disjuncts padded
        with EMPTY) and whose ``source_formula`` preserves the user's
        syntax tree for scoring-plan derivation.
    """
    parser = _Parser(text, analyzer)
    raw, vars_ = parser.parse()
    padded = pad_disjunctions(raw)
    free_vars = tuple(v for v in vars_ if v not in parser.quantified)
    check_safe(padded, free_vars)
    return Query(
        formula=padded,
        free_vars=free_vars,
        source_formula=raw,
        text=text,
    )
