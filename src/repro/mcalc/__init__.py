"""MCalc: the Matching Calculus (Section 3.1).

MCalc specifies the *set of matches* of a full-text query, in the style of
the Domain Relational Calculus.  Its primitives are ``HAS(d, p, k)``,
``EMPTY(p)``, and generic full-text predicates over position variables.

This package contains the formula AST, the built-in and plug-in predicate
registry, safe-range analysis (including EMPTY-padding of disjunctions),
the Section-8 shorthand query parser, the scoring-plan (Phi) derivation of
Section 4.2.1, and a brute-force reference evaluator used as the semantics
oracle in tests.
"""

from repro.mcalc.ast import (
    And,
    Empty,
    Formula,
    Has,
    Not,
    Or,
    Pred,
    Query,
)
from repro.mcalc.builder import (
    all_of,
    any_of,
    constrained,
    exclude,
    ordered,
    phrase,
    proximity,
    term,
    window,
)
from repro.mcalc.parser import parse_query
from repro.mcalc.predicates import (
    PredicateImpl,
    get_predicate,
    register_predicate,
)
from repro.mcalc.safety import check_safe, pad_disjunctions
from repro.mcalc.scoring_plan import (
    PhiConj,
    PhiDisj,
    PhiNode,
    PhiVar,
    derive_scoring_plan,
)

__all__ = [
    "Formula",
    "Has",
    "Empty",
    "Pred",
    "And",
    "Or",
    "Not",
    "Query",
    "parse_query",
    "term",
    "phrase",
    "all_of",
    "any_of",
    "constrained",
    "window",
    "proximity",
    "ordered",
    "exclude",
    "PredicateImpl",
    "register_predicate",
    "get_predicate",
    "check_safe",
    "pad_disjunctions",
    "PhiNode",
    "PhiVar",
    "PhiConj",
    "PhiDisj",
    "derive_scoring_plan",
]
