"""Full-text predicates: built-ins and the plug-in registry.

MCalc "is general enough to support generic positional predicates"
(Section 3.1); GRAFT "can support as plug-ins virtually any predicate on
positions" (Section 8).  This module provides the built-in predicates used
by the paper's queries (DISTANCE, PROXIMITY, WINDOW, ORDER) plus the
SAMESENTENCE extension the paper suggests, and a registry through which
applications add their own.

Empty-position semantics
------------------------
A predicate vacuously holds whenever any of its arguments is the empty
position.  EMPTY marks a variable whose "presence, or lack thereof, is
inconsequential to a particular match" (Section 3.1), and the canonical
plan (Plan 7) applies selections *above* the outer union, where rows from
other disjuncts carry EMPTY in the predicate's columns; those rows must
pass.  N-ary predicates simply ignore empty arguments.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import PredicateArityError, UnknownPredicateError

#: The empty position inside evaluated rows is represented as ``None``.
Position = int | None


@dataclass(frozen=True)
class PredicateImpl:
    """A registered full-text predicate implementation.

    Attributes:
        name: Registry key (conventionally upper-case).
        evaluate: ``evaluate(positions, constants) -> bool`` over non-empty
            positions only (the registry wrapper handles EMPTY semantics).
        min_vars / max_vars: Accepted variable-argument counts
            (``max_vars=None`` means unbounded, i.e. an n-ary predicate).
        num_constants: Required count of constant parameters.
        forward_class: True when the predicate belongs to the paper's
            PPRED class (Section 5.2.2): it can be checked in a single
            forward pass over position-sorted inputs, making it usable as a
            forward-scan join predicate.
        structural_evaluate: For predicates that consult document
            structure recorded in the index (Section 8's SAMESENTENCE /
            SAMEPARAGRAPH): ``(positions, constants, sentence_starts) ->
            bool``.  When set, it replaces ``evaluate`` wherever the
            engine can supply the document's sentence offsets.
    """

    name: str
    evaluate: Callable[[Sequence[int], tuple[int, ...]], bool]
    min_vars: int
    max_vars: int | None
    num_constants: int
    forward_class: bool = True
    structural_evaluate: Callable[
        [Sequence[int], tuple[int, ...], tuple[int, ...]], bool
    ] | None = None

    @property
    def structural(self) -> bool:
        return self.structural_evaluate is not None

    def check_arity(self, num_vars: int, num_constants: int) -> None:
        if num_vars < self.min_vars or (
            self.max_vars is not None and num_vars > self.max_vars
        ):
            raise PredicateArityError(
                f"{self.name} takes "
                f"{self.min_vars}{'+' if self.max_vars is None else f'..{self.max_vars}'}"
                f" variables, got {num_vars}"
            )
        if num_constants != self.num_constants:
            raise PredicateArityError(
                f"{self.name} takes {self.num_constants} constants, "
                f"got {num_constants}"
            )

    def holds(
        self,
        positions: Sequence[Position],
        constants: tuple[int, ...],
        sentence_starts: tuple[int, ...] = (),
    ) -> bool:
        """Evaluate with empty-position semantics applied.

        Empty arguments are dropped; with fewer than two real positions
        left there is nothing to constrain and the predicate holds
        vacuously.  ``sentence_starts`` carries the document's structural
        offsets to structural predicates.
        """
        concrete = [p for p in positions if p is not None]
        if len(concrete) < 2:
            return True
        if self.structural_evaluate is not None:
            return self.structural_evaluate(concrete, constants, sentence_starts)
        return self.evaluate(concrete, constants)


_REGISTRY: dict[str, PredicateImpl] = {}


def register_predicate(impl: PredicateImpl) -> None:
    """Register (or replace) a predicate implementation."""
    _REGISTRY[impl.name] = impl


def get_predicate(name: str) -> PredicateImpl:
    impl = _REGISTRY.get(name)
    if impl is None:
        raise UnknownPredicateError(
            f"unknown full-text predicate {name!r}; "
            f"registered: {sorted(_REGISTRY)}"
        )
    return impl


def registered_predicates() -> dict[str, PredicateImpl]:
    """A snapshot of the registry (for introspection and docs)."""
    return dict(_REGISTRY)


# ---------------------------------------------------------------------------
# Built-in predicates.
# ---------------------------------------------------------------------------

def _distance(positions: Sequence[int], constants: tuple[int, ...]) -> bool:
    """DISTANCE(p1, p2, n): p2 occurs exactly n tokens after p1."""
    p1, p2 = positions
    return p2 - p1 == constants[0]


def _proximity(positions: Sequence[int], constants: tuple[int, ...]) -> bool:
    """PROXIMITY(p..., n): all positions within distance n of each other."""
    return max(positions) - min(positions) <= constants[0]


def _window(positions: Sequence[int], constants: tuple[int, ...]) -> bool:
    """WINDOW(p..., n): all positions inside a window of n tokens.

    A window of n tokens covers offsets i..i+n-1, so the span must be
    strictly less than n.
    """
    return max(positions) - min(positions) < constants[0]


def _order(positions: Sequence[int], constants: tuple[int, ...]) -> bool:
    """ORDER(p1, ..., pk): positions appear in strictly increasing order."""
    return all(a < b for a, b in zip(positions, positions[1:]))


#: Fallback "sentence" length for SAMESENTENCE on documents whose
#: analyzer recorded no sentence boundaries.
SAMESENTENCE_SPAN = 20


def _same_sentence_fallback(
    positions: Sequence[int], constants: tuple[int, ...]
) -> bool:
    """Fixed-span approximation used when no boundaries are indexed."""
    buckets = {p // SAMESENTENCE_SPAN for p in positions}
    return len(buckets) == 1


def _same_sentence(
    positions: Sequence[int],
    constants: tuple[int, ...],
    sentence_starts: tuple[int, ...],
) -> bool:
    """SAMESENTENCE(p...): all positions inside one indexed sentence.

    Uses the document's sentence offsets when the index has them
    (Section 8: supported "assuming the index supports sentence ...
    offsets"); otherwise falls back to fixed-span buckets.
    """
    if not sentence_starts:
        return _same_sentence_fallback(positions, constants)
    buckets = {bisect_right(sentence_starts, p) for p in positions}
    return len(buckets) == 1


register_predicate(PredicateImpl("DISTANCE", _distance, 2, 2, 1))
register_predicate(PredicateImpl("PROXIMITY", _proximity, 2, None, 1))
register_predicate(PredicateImpl("WINDOW", _window, 2, None, 1))
register_predicate(PredicateImpl("ORDER", _order, 2, None, 0))
register_predicate(PredicateImpl(
    "SAMESENTENCE",
    _same_sentence_fallback,
    2,
    None,
    0,
    structural_evaluate=_same_sentence,
))
