"""Programmatic MCalc query construction.

The paper motivates full-text search for "sophisticated expert users and
for search systems with GUI-generated queries" (Section 1).  GUI code
should not have to print and re-parse shorthand text; this module builds
:class:`repro.mcalc.ast.Query` values directly, with the same safe-range
guarantees the parser provides.

Example::

    from repro.mcalc.builder import all_of, any_of, phrase, term, window

    query = all_of(
        window(term("windows"), term("emulator"), size=50),
        any_of(term("foss"), phrase("free", "software")),
    ).build()

is exactly the paper's Q3 / Q8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlanError
from repro.mcalc.ast import And, Formula, Has, Not, Pred, Query, conjoin, disjoin
from repro.mcalc.predicates import get_predicate
from repro.mcalc.safety import check_safe, pad_disjunctions


@dataclass
class Node:
    """An unbuilt query fragment: a formula template over keywords.

    Variables are assigned left-to-right at :meth:`build` time, matching
    the parser's numbering, so built queries and parsed queries of the
    same shape are interchangeable.
    """

    kind: str
    keywords: tuple[str, ...] = ()
    children: tuple["Node", ...] = ()
    predicate: str | None = None
    constants: tuple[int, ...] = ()
    extra: dict = field(default_factory=dict)

    # -- composition ---------------------------------------------------------

    def __and__(self, other: "Node") -> "Node":
        return all_of(self, other)

    def __or__(self, other: "Node") -> "Node":
        return any_of(self, other)

    def build(self) -> Query:
        """Assemble the safe, EMPTY-padded :class:`Query`."""
        counter = _Counter()
        formula, vars_, quantified = _assemble(self, counter)
        padded = pad_disjunctions(formula)
        free_vars = tuple(v for v in vars_ if v not in quantified)
        if not free_vars:
            from repro.errors import UnsafeQueryError

            raise UnsafeQueryError(
                "a query must contain at least one positive keyword; "
                "all-negative queries would scan the whole library"
            )
        check_safe(padded, free_vars)
        return Query(
            formula=padded,
            free_vars=free_vars,
            source_formula=formula,
        )


class _Counter:
    def __init__(self):
        self.n = 0

    def fresh(self) -> str:
        var = f"p{self.n}"
        self.n += 1
        return var


def _assemble(node: Node, counter: _Counter) -> tuple[Formula, list[str], set[str]]:
    if node.kind == "term":
        var = counter.fresh()
        return Has(var, node.keywords[0]), [var], set()

    if node.kind == "phrase":
        parts: list[Formula] = []
        vars_: list[str] = []
        for keyword in node.keywords:
            var = counter.fresh()
            parts.append(Has(var, keyword))
            vars_.append(var)
        for a, b in zip(vars_, vars_[1:]):
            parts.append(Pred("DISTANCE", (a, b), (1,)))
        return conjoin(parts), vars_, set()

    if node.kind in ("and", "or"):
        formulas: list[Formula] = []
        vars_: list[str] = []
        quantified: set[str] = set()
        for child in node.children:
            f, vs, qs = _assemble(child, counter)
            formulas.append(f)
            vars_.extend(vs)
            quantified |= qs
        combined = conjoin(formulas) if node.kind == "and" else disjoin(formulas)
        return combined, vars_, quantified

    if node.kind == "pred":
        inner, vars_, quantified = _assemble(node.children[0], counter)
        impl = get_predicate(node.predicate)
        scoped = [v for v in vars_ if v not in quantified]
        impl.check_arity(len(scoped), len(node.constants))
        pred = Pred(node.predicate, tuple(scoped), node.constants)
        if isinstance(inner, And):
            combined: Formula = And(inner.operands + (pred,))
        else:
            combined = And((inner, pred))
        return combined, vars_, quantified

    if node.kind == "not":
        inner, vars_, quantified = _assemble(node.children[0], counter)
        return Not(inner), vars_, quantified | set(vars_)

    raise PlanError(f"unknown builder node kind {node.kind!r}")


# -- public constructors --------------------------------------------------------

def term(keyword: str) -> Node:
    """A single keyword."""
    return Node("term", keywords=(keyword.lower(),))


def phrase(*keywords: str) -> Node:
    """An exact phrase (adjacent keywords, DISTANCE-1 chain)."""
    if not keywords:
        raise PlanError("a phrase needs at least one keyword")
    return Node("phrase", keywords=tuple(k.lower() for k in keywords))


def all_of(*nodes: Node) -> Node:
    """Conjunction."""
    if not nodes:
        raise PlanError("all_of needs at least one operand")
    if len(nodes) == 1:
        return nodes[0]
    return Node("and", children=nodes)


def any_of(*nodes: Node) -> Node:
    """Disjunction (safe-range padded at build time)."""
    if not nodes:
        raise PlanError("any_of needs at least one operand")
    if len(nodes) == 1:
        return nodes[0]
    return Node("or", children=nodes)


def constrained(node: Node, predicate: str, *constants: int) -> Node:
    """Apply a registered full-text predicate to the fragment's keywords."""
    return Node(
        "pred",
        children=(node,),
        predicate=predicate,
        constants=tuple(constants),
    )


def window(*nodes_and_size: Node | int, size: int | None = None) -> Node:
    """All keywords of the fragments within a token window.

    Accepts ``window(a, b, size=50)``.
    """
    nodes = [n for n in nodes_and_size if isinstance(n, Node)]
    if size is None:
        raise PlanError("window requires size=")
    return constrained(all_of(*nodes), "WINDOW", size)


def proximity(*nodes: Node, distance: int) -> Node:
    """All keywords within ``distance`` of each other."""
    return constrained(all_of(*nodes), "PROXIMITY", distance)


def ordered(*nodes: Node) -> Node:
    """Keywords in strictly increasing position order."""
    return constrained(all_of(*nodes), "ORDER")


def exclude(node: Node) -> Node:
    """Documents must not match the fragment (variables quantified away)."""
    return Node("not", children=(node,))
