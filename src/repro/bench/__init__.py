"""Benchmark support: the paper's workload, methodology, reporting, and
the cross-run trajectory (history + regression gate)."""

from repro.bench.history import (
    Regression,
    append_history,
    bench_record,
    compare_to_baseline,
    latest_run,
    load_baseline,
    load_history,
    new_run_id,
    write_baseline,
)
from repro.bench.measure import paper_measure
from repro.bench.workload import (
    PAPER_QUERIES,
    BenchFixture,
    bench_fixture,
    default_corpus_config,
)

__all__ = [
    "PAPER_QUERIES",
    "BenchFixture",
    "bench_fixture",
    "default_corpus_config",
    "paper_measure",
    "Regression",
    "append_history",
    "bench_record",
    "compare_to_baseline",
    "latest_run",
    "load_baseline",
    "load_history",
    "new_run_id",
    "write_baseline",
]
