"""Benchmark support: the paper's workload, methodology and reporting."""

from repro.bench.measure import paper_measure
from repro.bench.workload import (
    PAPER_QUERIES,
    BenchFixture,
    bench_fixture,
    default_corpus_config,
)

__all__ = [
    "PAPER_QUERIES",
    "BenchFixture",
    "bench_fixture",
    "default_corpus_config",
    "paper_measure",
]
