"""The paper's measurement methodology (Section 8).

"Each measurement was repeated nine times in succession, and we report the
average of the five median times.  This methodology was chosen to minimize
the chance that a garbage collection or JIT event would occur during one
measurement and not during another."  (For us: a CPython GC pause or a
cache-cold first run.)
"""

from __future__ import annotations

import statistics
import time
from typing import Callable

#: The paper's parameters.
REPEATS = 9
KEPT_MEDIANS = 5


def paper_measure(
    fn: Callable[[], object],
    repeats: int = REPEATS,
    kept: int = KEPT_MEDIANS,
    observe: Callable[[float], object] | None = None,
) -> float:
    """Run ``fn`` ``repeats`` times; return the mean of the ``kept``
    median wall-clock times, in seconds.

    ``observe`` receives every repetition's duration (seconds) — pass a
    metrics-registry histogram's ``observe`` so benchmark timings land
    in the same families the engine serves (``BENCH_*.json`` exports).
    """
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        times.append(elapsed)
        if observe is not None:
            observe(elapsed)
    times.sort()
    lo = (repeats - kept) // 2
    middle = times[lo:lo + kept]
    return statistics.fmean(middle)


def reduction_percent(baseline: float, optimized: float) -> float:
    """Figure 3's metric: "the difference between unoptimized and
    optimized execution time as percentage of the unoptimized time"."""
    if baseline <= 0:
        return 0.0
    return 100.0 * (baseline - optimized) / baseline
