"""The ``repro bench`` workload: the paper's eight queries as a gate.

The regression gate needs a fixed, fast, deterministic workload whose
numbers are comparable across runs: the Section 8 evaluation queries
over the seeded synthetic corpus, each optimized once and executed under
the paper's repeat-and-keep-medians methodology.  Every query yields one
history record (``workload_Q4`` ... ``workload_Q11``) whose ``rows`` is
the exact result count — machine-independent, so a correctness-visible
regression fails the gate even across hardware — and whose ``wall_ms``
is the median execution time, compared against the baseline with a
coarse ratio tolerance.
"""

from __future__ import annotations

from repro.bench.history import bench_record, new_run_id
from repro.bench.measure import paper_measure
from repro.bench.workload import PAPER_QUERIES, bench_fixture
from repro.exec.engine import execute, make_runtime
from repro.graft.optimizer import Optimizer
from repro.sa.registry import get_scheme

#: Gate defaults: small corpus, few repeats — a smoke measurement, not a
#: publication-grade one (the pytest-benchmark modules remain that).
DEFAULT_DOCS = 600
DEFAULT_REPEATS = 5
DEFAULT_KEPT = 3
DEFAULT_SCHEME = "sumbest"


def run_workload(
    num_docs: int = DEFAULT_DOCS,
    scheme_name: str = DEFAULT_SCHEME,
    repeats: int = DEFAULT_REPEATS,
    kept: int = DEFAULT_KEPT,
    run_id: str | None = None,
) -> tuple[str, dict[str, dict]]:
    """Measure the paper workload; returns (run_id, records by name)."""
    run_id = run_id or new_run_id()
    fx = bench_fixture(num_docs=num_docs)
    scheme = get_scheme(scheme_name)
    records: dict[str, dict] = {}
    for qname, query in fx.queries.items():
        result = Optimizer(scheme, fx.index).optimize(query)

        rows_holder: list[int] = []

        def run():
            runtime = make_runtime(fx.index, scheme, result.info)
            rows_holder.append(len(execute(result.plan, runtime)))

        seconds = paper_measure(run, repeats=repeats, kept=kept)
        name = f"workload_{qname}"
        records[name] = bench_record(
            name,
            run_id=run_id,
            wall_ms=seconds * 1000.0,
            rows=rows_holder[-1],
            params={
                "docs": num_docs,
                "scheme": scheme_name,
                "query": PAPER_QUERIES[qname],
                "repeats": repeats,
                "kept": kept,
            },
        )
    return run_id, records
