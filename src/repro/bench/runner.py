"""The ``repro bench`` workload: the paper's eight queries as a gate.

The regression gate needs a fixed, fast, deterministic workload whose
numbers are comparable across runs: the Section 8 evaluation queries
over the seeded synthetic corpus, each optimized once and executed under
the paper's repeat-and-keep-medians methodology.  Every query yields one
history record (``workload_Q4`` ... ``workload_Q11``) whose ``rows`` is
the exact result count — machine-independent, so a correctness-visible
regression fails the gate even across hardware — and whose ``wall_ms``
is the median execution time, compared against the baseline with a
coarse ratio tolerance.
"""

from __future__ import annotations

from repro.bench.history import bench_record, new_run_id
from repro.bench.measure import paper_measure
from repro.bench.workload import PAPER_QUERIES, bench_fixture
from repro.exec.engine import execute, make_runtime
from repro.graft.optimizer import Optimizer
from repro.sa.registry import get_scheme

#: Gate defaults: small corpus, few repeats — a smoke measurement, not a
#: publication-grade one (the pytest-benchmark modules remain that).
DEFAULT_DOCS = 600
DEFAULT_REPEATS = 5
DEFAULT_KEPT = 3
DEFAULT_SCHEME = "sumbest"


def run_workload(
    num_docs: int = DEFAULT_DOCS,
    scheme_name: str = DEFAULT_SCHEME,
    repeats: int = DEFAULT_REPEATS,
    kept: int = DEFAULT_KEPT,
    run_id: str | None = None,
) -> tuple[str, dict[str, dict]]:
    """Measure the paper workload; returns (run_id, records by name)."""
    run_id = run_id or new_run_id()
    fx = bench_fixture(num_docs=num_docs)
    scheme = get_scheme(scheme_name)
    records: dict[str, dict] = {}
    for qname, query in fx.queries.items():
        result = Optimizer(scheme, fx.index).optimize(query)

        rows_holder: list[int] = []

        def run():
            runtime = make_runtime(fx.index, scheme, result.info)
            rows_holder.append(len(execute(result.plan, runtime)))

        seconds = paper_measure(run, repeats=repeats, kept=kept)
        name = f"workload_{qname}"
        records[name] = bench_record(
            name,
            run_id=run_id,
            wall_ms=seconds * 1000.0,
            rows=rows_holder[-1],
            params={
                "docs": num_docs,
                "scheme": scheme_name,
                "query": PAPER_QUERIES[qname],
                "repeats": repeats,
                "kept": kept,
            },
        )
    return run_id, records


#: Shard counts of the parallel-throughput sweep (1 = the serial anchor).
PARALLEL_SHARD_COUNTS = (1, 2, 4)


def run_parallel_throughput(
    num_docs: int = DEFAULT_DOCS,
    scheme_name: str = DEFAULT_SCHEME,
    shard_counts: tuple[int, ...] = PARALLEL_SHARD_COUNTS,
    repeats: int = DEFAULT_REPEATS,
    kept: int = DEFAULT_KEPT,
    run_id: str | None = None,
    use_cache: bool = True,
) -> tuple[str, dict[str, dict]]:
    """Queries/sec over the whole paper workload at several shard counts.

    One record per shard count (``parallel_qps_s1`` ...): ``wall_ms`` is
    the median time for one pass over all eight queries, ``rows`` the
    total result count — which sharding must not change, so the gate's
    exact-``rows`` comparison doubles as a cheap merge-correctness check.
    ``params`` records the achieved queries/sec and the machine's core
    count: thread-parallel speedup is bounded by cores (and by the GIL
    for pure-Python operators), so wall-clock claims only make sense
    next to that bound (docs/PERFORMANCE.md).

    Three further record families ride along:

    * ``parallel_qps_s{2,4}_proc`` — the same pass driven through the
      process executor (:mod:`repro.exec.procpool`): packed index
      published once in shared memory, worker processes per shard.
      This is the driver that escapes the GIL, so it is the one the
      cores-aware scaling gate (:func:`repro.bench.history.scaling_gate`)
      judges.  Skipped quietly when the platform cannot start worker
      processes.
    * ``packed_decode`` — the serial workload over the
      :class:`repro.index.packed.PackedIndex` decoding view of the same
      corpus, pinning the batch-decode scan path's cost next to the
      object-index serial anchor.
    * ``plan_cache_repeat`` — the same pass through a
      :class:`repro.api.SearchEngine` with the plan cache warm (or
      cold, with ``use_cache=False``), quantifying what skipping
      parse→canonicalize→optimize is worth on repeated query text.
    """
    import os

    from repro.api import SearchEngine
    from repro.exec.cache import CacheConfig
    from repro.exec.parallel import execute_sharded
    from repro.index.shard import ShardedIndex
    from repro.sa.context import IndexScoringContext

    run_id = run_id or new_run_id()
    fx = bench_fixture(num_docs=num_docs)
    scheme = get_scheme(scheme_name)
    ctx = IndexScoringContext(fx.index)
    optimized = [
        (qname, Optimizer(scheme, fx.index).optimize(query))
        for qname, query in fx.queries.items()
    ]
    records: dict[str, dict] = {}
    base_params = {
        "docs": num_docs,
        "scheme": scheme_name,
        "queries": len(optimized),
        "repeats": repeats,
        "kept": kept,
        "cores": os.cpu_count(),
    }

    for count in shard_counts:
        sharded = ShardedIndex(fx.index, count) if count > 1 else None
        rows_holder: list[int] = []

        def run():
            total = 0
            for _, result in optimized:
                if sharded is None:
                    runtime = make_runtime(fx.index, scheme, result.info, ctx)
                    total += len(execute(result.plan, runtime))
                else:
                    total += len(
                        execute_sharded(
                            sharded, result.plan, scheme, result.info, ctx
                        ).results
                    )
            rows_holder.append(total)

        seconds = paper_measure(run, repeats=repeats, kept=kept)
        name = f"parallel_qps_s{count}"
        records[name] = bench_record(
            name,
            run_id=run_id,
            wall_ms=seconds * 1000.0,
            rows=rows_holder[-1],
            params={
                **base_params,
                "shards": count,
                "qps": round(len(optimized) / seconds, 2),
            },
        )

    # -- process legs: the same pass on shared-memory worker processes --
    from repro.exec.procpool import (
        ProcessShardPool,
        ProcPoolUnavailableError,
        default_worker_count,
        execute_sharded_process,
    )
    from repro.index.packed import PackedIndex, pack_index

    blob = pack_index(fx.index)
    for count in (c for c in shard_counts if c > 1):
        workers = default_worker_count(count)
        try:
            pool = ProcessShardPool(blob, count, max_workers=workers)
        except ProcPoolUnavailableError:
            # No shared memory / cannot fork here: the thread records
            # above still stand; the scaling gate reports the absence.
            break
        sharded = ShardedIndex(fx.index, count)
        proc_rows: list[int] = []

        def run_proc():
            total = 0
            for _, result in optimized:
                total += len(
                    execute_sharded_process(
                        pool, sharded, result.plan, scheme, result.info
                    ).results
                )
            proc_rows.append(total)

        try:
            run_proc()  # warm pass: workers attach + build shard views
            seconds = paper_measure(run_proc, repeats=repeats, kept=kept)
        finally:
            pool.close()
        name = f"parallel_qps_s{count}_proc"
        records[name] = bench_record(
            name,
            run_id=run_id,
            wall_ms=seconds * 1000.0,
            rows=proc_rows[-1],
            params={
                **base_params,
                "shards": count,
                "executor": "process",
                "workers": workers,
                "qps": round(len(optimized) / seconds, 2),
            },
        )

    # -- packed substrate: serial scan over the decoding view ----------
    packed = PackedIndex(blob)
    packed_ctx = IndexScoringContext(packed)
    packed_rows: list[int] = []

    def run_packed():
        total = 0
        for _, result in optimized:
            runtime = make_runtime(packed, scheme, result.info, packed_ctx)
            total += len(execute(result.plan, runtime))
        packed_rows.append(total)

    seconds = paper_measure(run_packed, repeats=repeats, kept=kept)
    records["packed_decode"] = bench_record(
        "packed_decode",
        run_id=run_id,
        wall_ms=seconds * 1000.0,
        rows=packed_rows[-1],
        params={
            **base_params,
            "substrate": "packed",
            "blob_bytes": len(blob),
            "qps": round(len(optimized) / seconds, 2),
        },
    )

    engine = SearchEngine(
        fx.collection,
        cache=CacheConfig() if use_cache else CacheConfig.off(),
    )
    engine._index = fx.index  # reuse the prebuilt fixture index
    cache_rows: list[int] = []

    def run_engine():
        total = 0
        for _, text in PAPER_QUERIES.items():
            total += len(engine.search(text, scheme=scheme_name))
        cache_rows.append(total)

    run_engine()  # warm pass: populates (or bypasses) the plan cache
    seconds = paper_measure(run_engine, repeats=repeats, kept=kept)
    records["plan_cache_repeat"] = bench_record(
        "plan_cache_repeat",
        run_id=run_id,
        wall_ms=seconds * 1000.0,
        rows=cache_rows[-1],
        params={
            **base_params,
            "cache": use_cache,
            "plan_cache": engine.cache_stats()["plan"],
        },
    )
    return run_id, records


def run_telemetry_overhead(
    num_docs: int = DEFAULT_DOCS,
    scheme_name: str = DEFAULT_SCHEME,
    repeats: int = DEFAULT_REPEATS,
    kept: int = DEFAULT_KEPT,
    run_id: str | None = None,
) -> tuple[str, dict[str, dict]]:
    """Prove the telemetry-off engine path costs nothing.

    Runs one pass over the paper workload through a cache-disabled
    :class:`repro.api.SearchEngine` twice: once with no request context
    bound (the library default — every instrumentation site must reduce
    to a ``ContextVar.get`` + ``is None`` branch) and once with a
    :class:`repro.obs.telemetry.RequestTelemetry` activated per query.
    The gated ``wall_ms`` is the **off**-path median, so a regression
    here means the no-op path itself got slower — exactly the
    "zero overhead when disabled" contract.  ``params`` carry both
    medians and the measured overhead percentage for the record.
    """
    from repro.api import SearchEngine
    from repro.exec.cache import CacheConfig
    from repro.obs import telemetry

    run_id = run_id or new_run_id()
    fx = bench_fixture(num_docs=num_docs)
    # Caches off: every search runs the full parse -> canonicalize ->
    # optimize -> execute pipeline, i.e. every instrumented span site.
    engine = SearchEngine(fx.collection, cache=CacheConfig.off())
    engine._index = fx.index
    queries = list(PAPER_QUERIES.values())

    rows_off: list[int] = []

    def run_off():
        total = 0
        for text in queries:
            total += len(engine.search(text, scheme=scheme_name))
        rows_off.append(total)

    rows_on: list[int] = []

    def run_on():
        total = 0
        for text in queries:
            rt = telemetry.RequestTelemetry(route="/search", query=text,
                                            scheme=scheme_name)
            token = telemetry.activate(rt)
            try:
                total += len(engine.search(text, scheme=scheme_name))
            finally:
                telemetry.deactivate(token)
                rt.finish(200)
        rows_on.append(total)

    off_seconds = paper_measure(run_off, repeats=repeats, kept=kept)
    on_seconds = paper_measure(run_on, repeats=repeats, kept=kept)
    overhead_pct = (
        (on_seconds - off_seconds) / off_seconds * 100.0
        if off_seconds > 0 else 0.0
    )
    records = {
        "telemetry_overhead": bench_record(
            "telemetry_overhead",
            run_id=run_id,
            wall_ms=off_seconds * 1000.0,
            rows=rows_off[-1],
            params={
                "docs": num_docs,
                "scheme": scheme_name,
                "queries": len(queries),
                "repeats": repeats,
                "kept": kept,
                "off_ms": round(off_seconds * 1000.0, 3),
                "on_ms": round(on_seconds * 1000.0, 3),
                "overhead_pct": round(overhead_pct, 2),
                "rows_on": rows_on[-1],
            },
        )
    }
    if rows_on[-1] != rows_off[-1]:
        raise RuntimeError(
            f"telemetry changed results: off={rows_off[-1]} on={rows_on[-1]}"
        )
    return run_id, records


def run_span_overhead(
    num_docs: int = DEFAULT_DOCS,
    scheme_name: str = DEFAULT_SCHEME,
    repeats: int = DEFAULT_REPEATS,
    kept: int = DEFAULT_KEPT,
    run_id: str | None = None,
) -> tuple[str, dict[str, dict]]:
    """Pin the cost of the span-export OFF path (and measure ON).

    Mirrors :func:`run_telemetry_overhead` one layer up: both passes run
    with request telemetry *active* (contexts, phase spans), differing
    only in whether a :class:`repro.obs.spans.SpanExporter` synthesizes
    and retains the unified trace at finish.  The gated ``wall_ms`` is
    the **off**-path median — telemetry-on but export-off is the normal
    production configuration, so that hot path is the one the baseline
    defends; the on/off medians and overhead percentage ride along in
    ``params``.
    """
    from repro.api import SearchEngine
    from repro.exec.cache import CacheConfig
    from repro.obs import telemetry
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.spans import SpanExporter
    from repro.obs.telemetry import TelemetryHub

    run_id = run_id or new_run_id()
    fx = bench_fixture(num_docs=num_docs)
    engine = SearchEngine(fx.collection, cache=CacheConfig.off())
    engine._index = fx.index
    queries = list(PAPER_QUERIES.values())

    def run_with(hub: TelemetryHub, rows: list[int]) -> None:
        total = 0
        for text in queries:
            rt = hub.begin(route="/search", query=text, scheme=scheme_name)
            token = telemetry.activate(rt)
            try:
                total += len(engine.search(text, scheme=scheme_name))
            finally:
                telemetry.deactivate(token)
                hub.finish(rt, 200)
        rows.append(total)

    hub_off = TelemetryHub()
    rows_off: list[int] = []
    exporter = SpanExporter(ring_capacity=64, registry=MetricsRegistry())
    hub_on = TelemetryHub(exporter=exporter)
    rows_on: list[int] = []

    off_seconds = paper_measure(
        lambda: run_with(hub_off, rows_off), repeats=repeats, kept=kept
    )
    on_seconds = paper_measure(
        lambda: run_with(hub_on, rows_on), repeats=repeats, kept=kept
    )
    overhead_pct = (
        (on_seconds - off_seconds) / off_seconds * 100.0
        if off_seconds > 0 else 0.0
    )
    records = {
        "span_export_overhead": bench_record(
            "span_export_overhead",
            run_id=run_id,
            wall_ms=off_seconds * 1000.0,
            rows=rows_off[-1],
            params={
                "docs": num_docs,
                "scheme": scheme_name,
                "queries": len(queries),
                "repeats": repeats,
                "kept": kept,
                "off_ms": round(off_seconds * 1000.0, 3),
                "on_ms": round(on_seconds * 1000.0, 3),
                "overhead_pct": round(overhead_pct, 2),
                "rows_on": rows_on[-1],
                "traces_exported": len(exporter.ring),
            },
        )
    }
    if rows_on[-1] != rows_off[-1]:
        raise RuntimeError(
            f"span export changed results: off={rows_off[-1]} "
            f"on={rows_on[-1]}"
        )
    return run_id, records


#: Service-load defaults: enough requests that every paper query runs
#: several times per worker, small enough to stay a smoke measurement.
SERVICE_REQUESTS = 64
SERVICE_CONCURRENCY = 8


def run_service_load(
    num_docs: int = DEFAULT_DOCS,
    scheme_name: str = DEFAULT_SCHEME,
    requests: int = SERVICE_REQUESTS,
    concurrency: int = SERVICE_CONCURRENCY,
    run_id: str | None = None,
) -> tuple[str, dict[str, dict]]:
    """End-to-end service throughput: sockets, admission, the works.

    Boots the full :mod:`repro.serve` stack (HTTP framing, admission
    control, reader generation) on an ephemeral port over a store built
    from the bench fixture, then drives it with the stdlib load
    generator — ``requests`` searches round-robin over the eight paper
    queries at the given concurrency.  One record, ``service_load``:
    ``rows`` is the exact total result count (deterministic — the gate's
    exact-rows comparison catches a service-layer correctness break),
    ``wall_ms`` the loadgen wall time, and ``params`` carry qps and the
    p50/p99 of accepted requests.  Limits are sized generously so the
    steady-state run sheds nothing; overload behavior is tested, not
    benchmarked.
    """
    import asyncio
    import shutil
    import tempfile

    from repro.api import SearchEngine
    from repro.serve import HttpServer, QueryService, ServiceConfig
    from repro.serve.loadgen import run_loadgen

    run_id = run_id or new_run_id()
    fx = bench_fixture(num_docs=num_docs)
    tmp = tempfile.mkdtemp(prefix="graft-bench-serve-")
    try:
        store = f"{tmp}/store"
        engine = SearchEngine(fx.collection)
        engine._index = fx.index
        engine.save(store)

        async def drive():
            config = ServiceConfig(
                max_inflight=concurrency,
                max_queue=requests,  # never shed: measure, don't refuse
                deadline_ms=60_000.0,
            )
            service = QueryService(store, config)
            server = HttpServer(service, registry=service.registry)
            host, port = await server.start()
            try:
                return await run_loadgen(
                    host, port,
                    requests=requests,
                    concurrency=concurrency,
                    scheme=scheme_name,
                )
            finally:
                await server.stop()

        report = asyncio.run(drive())
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    if report.errors or report.shed or report.timeouts:
        raise RuntimeError(
            f"service load run was not clean: {report.summary()}"
        )
    records = {
        "service_load": bench_record(
            "service_load",
            run_id=run_id,
            wall_ms=report.wall_s * 1000.0,
            rows=report.rows,
            params={
                "docs": num_docs,
                "scheme": scheme_name,
                "requests": requests,
                "concurrency": concurrency,
                "qps": round(report.qps, 2),
                "p50_ms": round(report.p50_ms, 3),
                "p99_ms": round(report.p99_ms, 3),
            },
        )
    }
    return run_id, records
