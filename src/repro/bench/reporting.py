"""Plain-text rendering of the paper's tables and figures.

Benchmarks regenerate the evaluation artifacts as text: tables as aligned
columns, figures (which are bar charts in the paper) as labelled rows of
numbers plus ASCII bars, so the harness output can be compared side by
side with the published plots.
"""

from __future__ import annotations


def render_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Align ``rows`` under ``headers`` with column padding."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_bars(
    series: dict[str, dict[str, float]],
    unit: str,
    title: str = "",
    width: int = 40,
) -> str:
    """Render grouped bars: ``series[group][label] = value``.

    Bars are scaled to the global maximum, mirroring a clustered bar
    chart like the paper's Figures 3 and 4.
    """
    values = [v for group in series.values() for v in group.values()]
    peak = max(values) if values else 1.0
    peak = peak if peak > 0 else 1.0
    lines = []
    if title:
        lines.append(title)
    label_width = max(
        (len(label) for group in series.values() for label in group),
        default=0,
    )
    for group_name, group in series.items():
        lines.append(f"{group_name}:")
        for label, value in group.items():
            bar = "#" * max(0, round(width * value / peak))
            lines.append(
                f"  {label.ljust(label_width)}  {value:>10.3f} {unit}  {bar}"
            )
    return "\n".join(lines)
