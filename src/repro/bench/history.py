"""Benchmark trajectory: run ids, ``history.jsonl``, and the regression
gate.

Benchmarks that only print numbers cannot tell you when they got worse.
This module gives every benchmark run a shared *run id*, appends each
benchmark's headline record to an append-only ``history.jsonl`` (so
trajectories are joinable across runs and commits), and compares a run
against a checked-in baseline with an explicit noise model:

* ``wall_ms`` regresses when it exceeds the baseline by more than
  ``max_slowdown`` (a ratio — wall time is machine- and load-dependent,
  so the tolerance is deliberately coarse and configurable);
* ``rows`` (the machine-independent work/result count) must match the
  baseline exactly — an algorithmic regression shows up here even on a
  10x faster machine.

``repro bench`` runs the paper workload through this module;
``repro bench --check`` exits non-zero on any regression.
"""

from __future__ import annotations

import json
import os
import pathlib
import secrets
import time
from dataclasses import dataclass

from repro.errors import GraftError

#: Record schema version for BENCH_*.json and history.jsonl entries.
BENCH_SCHEMA_VERSION = 1

#: Default wall-time regression tolerance (ratio to baseline).
DEFAULT_MAX_SLOWDOWN = 1.5


def new_run_id() -> str:
    """A sortable, collision-resistant id shared by one run's records."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    return f"{stamp}-{os.getpid()}-{secrets.token_hex(3)}"


def bench_record(
    name: str,
    *,
    run_id: str,
    wall_ms: float | None = None,
    rows: int | None = None,
    params: dict | None = None,
) -> dict:
    """One benchmark's headline record in the stable history schema.

    ``name`` identifies the benchmark, ``params`` its configuration
    (corpus size, query, scheme, ...), ``wall_ms`` the headline median
    wall time and ``rows`` a machine-independent result/work count.
    Records sharing a ``run_id`` came from the same benchmark run.
    """
    if not name:
        raise GraftError("benchmark record needs a non-empty name")
    if not run_id:
        raise GraftError("benchmark record needs a run id")
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "run_id": run_id,
        "name": name,
        "params": dict(params or {}),
        "wall_ms": wall_ms,
        "rows": rows,
        "ts": time.time(),
    }


def append_history(records, path) -> pathlib.Path:
    """Append record(s) to the JSONL history file (created if missing)."""
    if isinstance(records, dict):
        records = [records]
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def load_history(path) -> list[dict]:
    """All history records, oldest first; malformed lines are named."""
    path = pathlib.Path(path)
    if not path.exists():
        return []
    out: list[dict] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise GraftError(
                    f"{path}:{lineno}: malformed history record: {exc}"
                ) from None
            out.append(record)
    return out


def latest_run(history: list[dict]) -> tuple[str | None, dict[str, dict]]:
    """The most recent run id and its records, keyed by benchmark name.

    "Most recent" is by file order (history is append-only), so clock
    skew between machines cannot reorder runs.
    """
    if not history:
        return None, {}
    run_id = history[-1].get("run_id")
    return run_id, {
        rec["name"]: rec
        for rec in history
        if rec.get("run_id") == run_id and "name" in rec
    }


# -- baseline comparison ----------------------------------------------------


@dataclass(frozen=True)
class Regression:
    """One detected benchmark regression."""

    name: str
    field: str          # "wall_ms" | "rows" | "missing"
    baseline: float | None
    current: float | None
    message: str

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "field": self.field,
            "baseline": self.baseline,
            "current": self.current,
            "message": self.message,
        }


def write_baseline(path, records: dict[str, dict], *, params: dict | None = None) -> pathlib.Path:
    """Pin a run as the checked-in baseline."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": BENCH_SCHEMA_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "params": dict(params or {}),
        "benchmarks": {
            name: {
                "wall_ms": rec.get("wall_ms"),
                "rows": rec.get("rows"),
                "params": rec.get("params", {}),
            }
            for name, rec in sorted(records.items())
        },
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path) -> dict:
    path = pathlib.Path(path)
    if not path.exists():
        raise GraftError(f"no benchmark baseline at {path}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise GraftError(f"{path}: malformed baseline: {exc}") from None
    if "benchmarks" not in payload or not isinstance(payload["benchmarks"], dict):
        raise GraftError(f"{path}: baseline has no 'benchmarks' table")
    return payload


#: Required process-pool speedup at 4 shards on a multi-core machine.
REQUIRED_PROC_SPEEDUP = 2.0


def scaling_gate(
    records: dict[str, dict],
    *,
    min_speedup: float = REQUIRED_PROC_SPEEDUP,
) -> tuple[list[Regression], list[str]]:
    """Judge process-parallel scaling against the serial anchor.

    ``parallel_qps_s4_proc`` must beat ``parallel_qps_s1`` by
    ``min_speedup`` — but only where the machine can physically deliver
    it.  Parallel speedup is bounded by cores, so the requirement is
    scaled to the measuring machine rather than gamed or silently
    ignored (the repo's standing rule: record the honest number):

    * >= 4 cores: the full ``min_speedup`` is enforced;
    * 2-3 cores: the process pass must at least beat serial (1.2x) —
      the claim that worker processes escape the GIL survives even
      where the 2x target is out of reach;
    * 1 core: enforcement is impossible by arithmetic, so the measured
      ratio is *recorded* in the returned notes and the gate passes.

    Returns ``(regressions, notes)``; notes always state what was
    checked or why it was skipped, so a passing gate is auditable.
    """
    serial = records.get("parallel_qps_s1")
    proc = records.get("parallel_qps_s4_proc")
    if serial is None or not serial.get("wall_ms"):
        return [], ["scaling gate skipped: no serial anchor record"]
    if proc is None or not proc.get("wall_ms"):
        return [], [
            "scaling gate skipped: no parallel_qps_s4_proc record "
            "(process pool unavailable on this platform)"
        ]
    cores = proc.get("params", {}).get("cores") or 1
    speedup = serial["wall_ms"] / proc["wall_ms"]
    if cores >= 4:
        required = min_speedup
    elif cores >= 2:
        required = 1.2
    else:
        return [], [
            f"scaling gate recorded (not enforced) on a single-core "
            f"machine: process speedup at 4 shards = {speedup:.2f}x "
            f"vs serial"
        ]
    if speedup < required:
        return (
            [Regression(
                "parallel_qps_s4_proc", "wall_ms",
                serial["wall_ms"], proc["wall_ms"],
                f"parallel_qps_s4_proc: process speedup {speedup:.2f}x "
                f"vs serial is below the required {required:.2f}x on a "
                f"{cores}-core machine",
            )],
            [f"scaling gate FAILED: {speedup:.2f}x < {required:.2f}x "
             f"({cores} cores)"],
        )
    return [], [
        f"scaling gate OK: process speedup at 4 shards = {speedup:.2f}x "
        f">= {required:.2f}x ({cores} cores)"
    ]


def compare_to_baseline(
    current: dict[str, dict],
    baseline: dict,
    *,
    max_slowdown: float = DEFAULT_MAX_SLOWDOWN,
) -> list[Regression]:
    """Diff a run against a baseline; an empty list means the gate passes.

    Every baseline benchmark must be present in ``current``; extra
    current benchmarks (newly added) pass silently — they join the gate
    when the baseline is re-pinned.
    """
    if max_slowdown < 1.0:
        raise GraftError(
            f"max_slowdown is a ratio >= 1.0, got {max_slowdown!r}"
        )
    regressions: list[Regression] = []
    for name, base in sorted(baseline["benchmarks"].items()):
        got = current.get(name)
        if got is None:
            regressions.append(Regression(
                name, "missing", None, None,
                f"{name}: present in baseline but absent from this run",
            ))
            continue
        base_wall, got_wall = base.get("wall_ms"), got.get("wall_ms")
        if base_wall and got_wall and got_wall > base_wall * max_slowdown:
            regressions.append(Regression(
                name, "wall_ms", base_wall, got_wall,
                f"{name}: wall time {got_wall:.3f} ms exceeds baseline "
                f"{base_wall:.3f} ms by more than {max_slowdown:.2f}x "
                f"({got_wall / base_wall:.2f}x)",
            ))
        base_rows, got_rows = base.get("rows"), got.get("rows")
        if base_rows is not None and got_rows is not None \
                and got_rows != base_rows:
            regressions.append(Regression(
                name, "rows", base_rows, got_rows,
                f"{name}: result/work count changed from {base_rows} to "
                f"{got_rows} (machine-independent; check correctness "
                f"before re-pinning the baseline)",
            ))
    return regressions
