"""The paper's evaluation workload (Section 8).

Eight queries over Wikipedia, reproduced verbatim in the shorthand syntax;
the corpus substitute is the synthetic generator of
:mod:`repro.corpus.synthetic`, whose planted topics give these queries
non-trivial matches and Figure-1-like selectivity skew.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.corpus.collection import DocumentCollection
from repro.corpus.synthetic import SyntheticCorpusConfig, generate_corpus
from repro.index.builder import build_index
from repro.index.index import Index
from repro.mcalc.ast import Query
from repro.mcalc.parser import parse_query

#: The eight evaluation queries, exactly as printed in Section 8.
PAPER_QUERIES: dict[str, str] = {
    "Q4": "san francisco fault line",
    "Q5": "dinosaur species list (image | picture | drawing | illustration)",
    "Q6": '"orange county convention center" orlando',
    "Q7": '"san francisco" "fault line"',
    "Q8": '(windows emulator)WINDOW[50] (foss | "free software")',
    "Q9": "(free wireless internet)PROXIMITY[10] service",
    "Q10": "arizona ((fishing | hunting) (rules | regulations))WINDOW[20]",
    "Q11": '"rick warren" (obama inauguration)PROXIMITY[4] '
           "(controversy invocation)PROXIMITY[15]",
}

#: Queries the rigid baselines can run ("Lucene and Terrier do not support
#: Q8 or Q10 because they do not support the WINDOW predicate").
RIGID_SUPPORTED = ("Q4", "Q5", "Q6", "Q7", "Q9", "Q11")


def default_corpus_config(num_docs: int = 4000, seed: int = 20110612) -> SyntheticCorpusConfig:
    """The benchmark corpus configuration (laptop-scale Wikipedia stand-in)."""
    return SyntheticCorpusConfig(num_docs=num_docs, seed=seed)


@dataclass
class BenchFixture:
    """A built benchmark environment: corpus, index, parsed queries."""

    collection: DocumentCollection
    index: Index
    queries: dict[str, Query]

    @property
    def num_docs(self) -> int:
        return len(self.collection)


@lru_cache(maxsize=4)
def bench_fixture(num_docs: int = 4000, seed: int = 20110612) -> BenchFixture:
    """Build (and cache) the benchmark fixture for a corpus size."""
    collection = generate_corpus(default_corpus_config(num_docs, seed))
    index = build_index(collection)
    queries = {
        name: parse_query(text, collection.analyzer)
        for name, text in PAPER_QUERIES.items()
    }
    return BenchFixture(collection, index, queries)
