"""MA: the Matching Algebra (Section 3.2).

MA is a relational algebra over *match tables*: ordered lists of match
tuples ``(d, p0, ..., pn)`` where each cell is a term position or the empty
symbol.  This package defines the match-table value type, the logical plan
nodes of the matching subplan, and the MCalc-to-MA canonical translation.
"""

from repro.ma.match_table import (
    ANY_POSITION,
    EMPTY,
    MatchTable,
    cell_repr,
    cell_sort_key,
    row_sort_key,
)
from repro.ma.nodes import (
    AntiJoin,
    Atom,
    GroupCount,
    Join,
    PlanNode,
    PositionProject,
    PreCountAtom,
    Select,
    Sort,
    Union,
)
from repro.ma.translate import matching_subplan

__all__ = [
    "EMPTY",
    "ANY_POSITION",
    "MatchTable",
    "cell_sort_key",
    "row_sort_key",
    "cell_repr",
    "PlanNode",
    "Atom",
    "PreCountAtom",
    "Join",
    "Union",
    "Select",
    "Sort",
    "AntiJoin",
    "GroupCount",
    "PositionProject",
    "matching_subplan",
]
