"""Logical plan nodes of the Matching Algebra.

These nodes describe *what* to compute; physical operators live in
:mod:`repro.exec`.  The matching subplan of a score-isolated plan is built
from these nodes only (no scoring); the scoring-side nodes that host SA
operators are defined in :mod:`repro.graft.plan`.

Every node reports its ``position_vars`` (the match-table columns it
produces, in schema order) and whether its rows may carry a multiplicity
(``counted``) introduced by eager counting / pre-counting.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import PlanError
from repro.mcalc.ast import Pred


class PlanNode:
    """Base class of logical plan nodes."""

    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def with_children(self, *children: "PlanNode") -> "PlanNode":
        """Rebuild this node with new children (for rewrites)."""
        raise NotImplementedError

    @property
    def position_vars(self) -> tuple[str, ...]:
        raise NotImplementedError

    @property
    def counted(self) -> bool:
        """True when rows from this node may have multiplicity > 1."""
        return any(c.counted for c in self.children())

    def walk(self):
        """Pre-order traversal."""
        yield self
        for child in self.children():
            yield from child.walk()

    def label(self) -> str:
        """Short operator label for plan printing."""
        return type(self).__name__


def merge_vars(left: tuple[str, ...], right: tuple[str, ...]) -> tuple[str, ...]:
    """Schema merge: left order, then right's columns not already present."""
    return left + tuple(v for v in right if v not in left)


@dataclass(frozen=True)
class Atom(PlanNode):
    """The Atomic Match Factory ``A(d, p, k)``: a term-position index scan
    producing one row per occurrence of ``keyword``."""

    var: str
    keyword: str

    @property
    def position_vars(self) -> tuple[str, ...]:
        return (self.var,)

    def with_children(self, *children: PlanNode) -> PlanNode:
        if children:
            raise PlanError("Atom is a leaf")
        return self

    def label(self) -> str:
        return f"A({self.var}:{self.keyword!r})"


@dataclass(frozen=True)
class PreCountAtom(PlanNode):
    """The Pre-Counting Atomic Match Factory ``CA(d, p, k)``
    (Section 5.2.3): a term-document index scan producing, per document
    containing ``keyword``, one row with multiplicity = #INDOC and the
    position forgotten (:data:`repro.ma.match_table.ANY_POSITION`)."""

    var: str
    keyword: str

    @property
    def position_vars(self) -> tuple[str, ...]:
        return (self.var,)

    @property
    def counted(self) -> bool:
        return True

    def with_children(self, *children: PlanNode) -> PlanNode:
        if children:
            raise PlanError("PreCountAtom is a leaf")
        return self

    def label(self) -> str:
        return f"CA({self.var}:{self.keyword!r})"


@dataclass(frozen=True)
class PositionProject(PlanNode):
    """Generalized projection ``pi_d``: forget the positions of ``vars``
    (cells become ANY_POSITION), keeping row multiplicity intact.

    This is the first half of the pre-counting rewrite chain
    ``A -> pi_d(A) -> gamma(pi_d(A)) -> CA``.
    """

    child: PlanNode
    vars: tuple[str, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, *children: PlanNode) -> PlanNode:
        (child,) = children
        return replace(self, child=child)

    @property
    def position_vars(self) -> tuple[str, ...]:
        return self.child.position_vars

    def label(self) -> str:
        return f"pi[forget {', '.join(self.vars)}]"


@dataclass(frozen=True)
class GroupCount(PlanNode):
    """Eager counting ``gamma_{d,cells | COUNT}`` (Section 5.2.1): group
    identical rows into one row with a multiplicity."""

    child: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, *children: PlanNode) -> PlanNode:
        (child,) = children
        return replace(self, child=child)

    @property
    def position_vars(self) -> tuple[str, ...]:
        return self.child.position_vars

    @property
    def counted(self) -> bool:
        return True

    def label(self) -> str:
        return "gamma[count]"


@dataclass(frozen=True)
class Join(PlanNode):
    """Natural join on the document column, with optional full-text
    predicates evaluated in-join (placed there by selection pushing) and a
    physical algorithm hint.

    Algorithms: ``"merge"`` is the zig-zag sort-merge join of Section 5.2.1
    (both inputs are doc-ordered and seekable); ``"forward"`` is the
    forward-scan join of Section 5.2.2 (single forward pass over positions,
    emits at most one match per document — valid only under constant
    scoring schemes).
    """

    left: PlanNode
    right: PlanNode
    predicates: tuple[Pred, ...] = ()
    algorithm: str = "merge"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def with_children(self, *children: PlanNode) -> PlanNode:
        left, right = children
        return replace(self, left=left, right=right)

    @property
    def position_vars(self) -> tuple[str, ...]:
        return merge_vars(self.left.position_vars, self.right.position_vars)

    def label(self) -> str:
        preds = " & ".join(str(p) for p in self.predicates)
        tag = "zigzag-join" if self.algorithm == "merge" else f"{self.algorithm}-join"
        return f"{tag}[{preds}]" if preds else tag


@dataclass(frozen=True)
class Union(PlanNode):
    """Outer bag-union (Codd): schema is the merge of both inputs; rows are
    padded with the empty symbol in columns the source branch lacks."""

    left: PlanNode
    right: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def with_children(self, *children: PlanNode) -> PlanNode:
        left, right = children
        return replace(self, left=left, right=right)

    @property
    def position_vars(self) -> tuple[str, ...]:
        return merge_vars(self.left.position_vars, self.right.position_vars)

    def label(self) -> str:
        return "outer-union"


@dataclass(frozen=True)
class Select(PlanNode):
    """Selection by a conjunction of full-text predicates."""

    child: PlanNode
    predicates: tuple[Pred, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, *children: PlanNode) -> PlanNode:
        (child,) = children
        return replace(self, child=child)

    @property
    def position_vars(self) -> tuple[str, ...]:
        return self.child.position_vars

    def label(self) -> str:
        return "sigma[" + " & ".join(str(p) for p in self.predicates) + "]"


@dataclass(frozen=True)
class Sort(PlanNode):
    """Lexicographic sort ``tau`` by (doc, sort_vars...) ascending.

    ``sort_vars`` is fixed to the query's free-variable order at plan
    construction, so later join reordering cannot silently change the
    match-table order a non-commutative alternate combinator depends on.
    """

    child: PlanNode
    sort_vars: tuple[str, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, *children: PlanNode) -> PlanNode:
        (child,) = children
        return replace(self, child=child)

    @property
    def position_vars(self) -> tuple[str, ...]:
        return self.child.position_vars

    def label(self) -> str:
        return f"tau[{', '.join(self.sort_vars)}]"


@dataclass(frozen=True)
class AntiJoin(PlanNode):
    """Document-level anti-join: keep left rows whose document has no row
    on the right.  Implements safe negation."""

    left: PlanNode
    right: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def with_children(self, *children: PlanNode) -> PlanNode:
        left, right = children
        return replace(self, left=left, right=right)

    @property
    def position_vars(self) -> tuple[str, ...]:
        return self.left.position_vars

    def label(self) -> str:
        return "anti-join"
