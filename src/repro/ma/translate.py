"""Canonical MCalc-to-MA translation (Sections 3.2, 4.3).

The canonical matching subplan (cf. Plan 7 for Q3):

* a right-deep join tree whose join order follows the order of keywords in
  the query;
* disjunctions become outer bag-unions of their branch plans (EMPTY
  predicates materialize as union padding);
* negations become document-level anti-joins;
* *all* selections follow *all* joins (predicates are evaluated in one
  selection at the top, which is correct because predicates hold vacuously
  on the empty symbol);
* a lexicographic sort tops the matching subplan.
"""

from __future__ import annotations

from repro.errors import PlanError
from repro.mcalc.ast import And, Empty, Formula, Has, Not, Or, Pred, Query
from repro.ma.nodes import AntiJoin, Atom, Join, PlanNode, Select, Sort, Union


def matching_subplan(query: Query) -> PlanNode:
    """Build the canonical matching subplan for ``query``."""
    plan = _translate(query.formula)
    if plan is None:
        raise PlanError("query has no positive keyword to scan")
    predicates = tuple(query.predicates())
    if predicates:
        plan = Select(plan, predicates)
    return Sort(plan, query.free_vars)


def _translate(formula: Formula) -> PlanNode | None:
    """Translate a formula into a plan; predicates and EMPTY markers are
    skipped (the caller applies predicates at the top; EMPTY materializes
    as union padding)."""
    if isinstance(formula, Has):
        return Atom(formula.var, formula.keyword)
    if isinstance(formula, (Empty, Pred)):
        return None
    if isinstance(formula, Not):
        # A bare negation has no generating plan of its own; handled by the
        # enclosing conjunction.  A query that is *only* a negation is
        # unsafe and is rejected before translation.
        raise PlanError("negation must occur inside a conjunction")
    if isinstance(formula, And):
        positive: list[PlanNode] = []
        negative: list[PlanNode] = []
        for op in formula.operands:
            if isinstance(op, Not):
                sub = _translate(_strip_not(op))
                if sub is None:
                    raise PlanError("negated subformula has no keywords")
                negative.append(sub)
            else:
                sub = _translate(op)
                if sub is not None:
                    positive.append(sub)
        if not positive:
            raise PlanError("conjunction has no positive keywords")
        plan = _right_deep_join(positive)
        for neg in negative:
            plan = AntiJoin(plan, neg)
        return plan
    if isinstance(formula, Or):
        branches = [_translate(op) for op in formula.operands]
        kept = [b for b in branches if b is not None]
        if not kept:
            return None
        plan = kept[0]
        for branch in kept[1:]:
            plan = Union(plan, branch)
        return plan
    raise PlanError(f"unknown formula node {type(formula).__name__}")


def _strip_not(node: Not) -> Formula:
    inner = node.operand
    while isinstance(inner, Not):
        raise PlanError("double negation is not supported")
    return inner


def _right_deep_join(plans: list[PlanNode]) -> PlanNode:
    """Right-deep join tree in the given (keyword) order."""
    plan = plans[-1]
    for sub in reversed(plans[:-1]):
        plan = Join(sub, plan)
    return plan
