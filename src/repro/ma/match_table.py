"""Match tables: the value domain of the Matching Algebra.

A match table is a *list* (not a set) of matches; "table rows and columns
are both sequenced, and tables may contain duplicate rows" (Section 3.2).
Each cell holds a term position or the empty symbol.

Cell encoding
-------------
* a term position is a non-negative ``int`` offset;
* the empty symbol (the paper's circled-slash) is ``None``;
* :data:`ANY_POSITION` (``-1``) marks a cell whose position has been
  *forgotten* by the pre-counting rewrite (Section 5.2.3).  The keyword
  does occur in the document — the row's multiplicity says how many times —
  but no particular offset is retained, which is why pre-counting is only
  valid for non-positional scoring schemes.

Ordering
--------
Canonical plans sort matches lexicographically; the empty symbol orders
after every real position (a match that uses a keyword is "smaller" than
one that ignores it), and ANY_POSITION orders before real positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: The empty position symbol.
EMPTY = None

#: A forgotten (pre-counted) position; see module docstring.
ANY_POSITION = -1

#: Sort rank placing EMPTY after every real offset.
_EMPTY_RANK = (1, 0)


def cell_sort_key(cell: int | None) -> tuple[int, int]:
    """Total order over cells: ANY < positions ascending < EMPTY."""
    if cell is None:
        return _EMPTY_RANK
    return (0, cell)


def row_sort_key(row: tuple) -> tuple:
    """Lexicographic key over ``(doc, cells...)`` rows."""
    return (row[0],) + tuple(cell_sort_key(c) for c in row[1:])


def cell_repr(cell: int | None) -> str:
    if cell is None:
        return "-"
    if cell == ANY_POSITION:
        return "*"
    return str(cell)


@dataclass
class MatchTable:
    """A materialized match table, used by tests, examples and the oracle.

    The execution engine streams matches and materializes a MatchTable only
    when explicitly asked (e.g. :meth:`repro.api.SearchEngine.match_table`),
    because match tables "can be quite large" (Section 6).

    Attributes:
        columns: Position-variable names, in schema order.
        rows: ``(doc_id, cell0, ..., cellN)`` tuples, in table order.
        truncated: ``None`` for a complete table; otherwise the name of
            the resource limit that cut materialization short (see
            :meth:`repro.api.SearchEngine.match_table`).
    """

    columns: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    truncated: str | None = None

    def sorted(self) -> "MatchTable":
        """A lexicographically sorted copy (the canonical table order)."""
        return MatchTable(self.columns, sorted(self.rows, key=row_sort_key))

    def for_document(self, doc_id: int) -> "MatchTable":
        """The sub-table of matches in one document."""
        return MatchTable(
            self.columns, [r for r in self.rows if r[0] == doc_id]
        )

    def documents(self) -> list[int]:
        """Distinct documents with at least one match, ascending."""
        return sorted({r[0] for r in self.rows})

    def column_values(self, var: str) -> list[int | None]:
        """All cells of one column, in row order."""
        i = self.columns.index(var) + 1
        return [r[i] for r in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __str__(self) -> str:
        header = "doc | " + " ".join(f"{c:>6}" for c in self.columns)
        lines = [header, "-" * len(header)]
        for row in self.rows:
            cells = " ".join(f"{cell_repr(c):>6}" for c in row[1:])
            lines.append(f"{row[0]:>3} | {cells}")
        return "\n".join(lines)
