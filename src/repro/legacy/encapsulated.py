"""Score-encapsulated full-text algebra, after Botev et al. [7].

"The state-of-the-art full-text algebra extends each match tuple with a
score, and extends each algebra operator with a function to manipulate the
scores.  As plan evaluation constructs and combines match tuples, it
simultaneously computes and aggregates match scores" (Section 2).

This module reproduces that architecture faithfully enough to demonstrate
its failure mode: the score-join function ``SJ`` reads the *cardinality of
the operator's inputs*, so a selection pushed below a join changes those
cardinalities and with them the document scores — even though the set of
matches is unchanged.  The paper's worked example (one quarter of the
'emulator' score surviving in Plan 1 versus all of it in Plan 2) is
reproduced in ``tests/graft/test_motivation.py`` and
``examples/score_consistency.py``.

Tuples here are ``(doc, {var: offset}, score)``; operators are plain
functions over lists so the two plans of Section 2 can be composed by
hand.
"""

from __future__ import annotations

from typing import Callable

from repro.index.index import Index
from repro.mcalc.ast import Pred
from repro.mcalc.predicates import get_predicate
from repro.sa.context import ScoringContext

#: A scored match tuple: (doc id, bindings, score).
ScoredTuple = tuple[int, dict[str, int], float]

#: SJ(m_L, m_R, |M_L|, |M_R|) -> combined score.  The cardinality
#: arguments are the intra-document input sizes — the quantity that
#: optimization perturbs.
ScoreJoin = Callable[[float, float, int, int], float]


def join_normalized_sj(score_l: float, score_r: float, n_l: int, n_r: int) -> float:
    """The example SJ of [7]: each side's score value is distributed
    equally among the output tuples it contributes to, so the join
    neither creates nor destroys score mass:
    ``m_L.s / |M_R| + m_R.s / |M_L|``."""
    left = score_l / n_r if n_r else 0.0
    right = score_r / n_l if n_l else 0.0
    return left + right


class EncapsulatedEngine:
    """Minimal evaluator for score-encapsulated plans over one index.

    Operators work per document (matches of different documents never
    interact) and are composed explicitly by the caller, mirroring the
    hand-drawn Plans 1 and 2 of the paper.
    """

    def __init__(self, index: Index, ctx: ScoringContext, sj: ScoreJoin,
                 initial: Callable[[ScoringContext, int, str, str], float]):
        self.index = index
        self.ctx = ctx
        self.sj = sj
        self.initial = initial

    # -- operators -------------------------------------------------------------

    def atom(self, var: str, keyword: str) -> list[ScoredTuple]:
        """A(var, keyword) with per-tuple initial scores."""
        out: list[ScoredTuple] = []
        postings = self.index.postings(keyword)
        for i in range(len(postings.doc_ids)):
            doc = int(postings.doc_ids[i])
            s = self.initial(self.ctx, doc, var, keyword)
            for off in postings.offsets[i]:
                out.append((doc, {var: off}, s))
        return out

    def join(self, left: list[ScoredTuple], right: list[ScoredTuple]) -> list[ScoredTuple]:
        """Natural join on doc; scores combined by SJ with the *current*
        per-document input cardinalities — the encapsulation that breaks
        under selection pushing."""
        by_doc_l = _group(left)
        by_doc_r = _group(right)
        out: list[ScoredTuple] = []
        for doc in sorted(set(by_doc_l) & set(by_doc_r)):
            l_tuples = by_doc_l[doc]
            r_tuples = by_doc_r[doc]
            n_l, n_r = len(l_tuples), len(r_tuples)
            for _, lb, ls in l_tuples:
                for _, rb, rs in r_tuples:
                    bindings = dict(lb)
                    bindings.update(rb)
                    out.append((doc, bindings, self.sj(ls, rs, n_l, n_r)))
        return out

    def select(self, tuples: list[ScoredTuple], pred: Pred) -> list[ScoredTuple]:
        """Selection: drops tuples (and, silently, their score mass)."""
        impl = get_predicate(pred.name)
        out = []
        for doc, bindings, s in tuples:
            positions = [bindings.get(v) for v in pred.vars]
            if impl.holds(positions, pred.constants):
                out.append((doc, bindings, s))
        return out

    def document_scores(self, tuples: list[ScoredTuple]) -> dict[int, float]:
        """Final aggregation: a document's score is the sum of its match
        scores (the score mass that survived the plan)."""
        out: dict[int, float] = {}
        for doc, _, s in tuples:
            out[doc] = out.get(doc, 0.0) + s
        return out


def _group(tuples: list[ScoredTuple]) -> dict[int, list[ScoredTuple]]:
    by_doc: dict[int, list[ScoredTuple]] = {}
    for t in tuples:
        by_doc.setdefault(t[0], []).append(t)
    return by_doc
