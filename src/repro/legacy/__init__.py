"""The state-of-the-art score-encapsulated framework the paper improves on.

Implemented so the Section-2 motivation is reproducible: encapsulating
score computation inside relational operators makes textbook rewrites
(selection pushing) change document scores.
"""

from repro.legacy.encapsulated import (
    EncapsulatedEngine,
    join_normalized_sj,
)

__all__ = ["EncapsulatedEngine", "join_normalized_sj"]
