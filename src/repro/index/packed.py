"""Packed postings: the compact binary substrate behind parallel search.

The object substrate (:mod:`repro.index.postings`) stores one Python
object per term with per-document offset tuples — convenient, but every
worker that wants the index must either share the CPython heap (and the
GIL) or pickle the whole structure.  This module lays the entire index
out as **one flat byte blob**:

* a checksum-framed header (magic, version, JSON term directory);
* three statistics sections (document lengths, sentence-start counts
  and values) readable zero-copy via ``np.frombuffer``;
* one struct-framed **term frame** per term, holding delta-encoded
  sorted doc ids, per-document position counts, and the concatenated
  absolute positions — each frame carrying its own CRC32, mirroring
  the WAL's torn-vs-corrupt framing (:mod:`repro.index.store.wal`).

Because the blob is position-independent bytes, a sealed generation can
be published once into ``multiprocessing.shared_memory`` and attached
read-only by every worker process (:mod:`repro.exec.procpool`) — no
pickling, no per-worker heap copy.

Decoding is batched, not per-entry: a term's doc ids materialize with a
single ``np.cumsum`` over the delta array, and the per-document offset
runs are carved from one shared positions buffer by cached run bounds.
Doc ids exist **once** per attached process (the cumsum output); scan
cursors bisect a ``memoryview`` of that array directly instead of
building Python lists or dicts per term.

:class:`PackedIndex` quacks like :class:`repro.index.index.Index` for
plan execution and scoring (``postings``, ``doc_terms``, ``stats``,
``sentence_starts_of``, the statistics lookups), so the optimizer, the
physical operators and :class:`repro.index.shard.ShardView` run on it
unchanged — scores are bit-identical to the object substrate by
construction, which the hypothesis suite asserts.
"""

from __future__ import annotations

import json
import struct
import zlib
from bisect import bisect_left
from typing import Iterator, Mapping

import numpy as np

from repro.errors import IndexCorruptionError, IndexError_
from repro.index.index import Index, TermDocumentPostings
from repro.index.postings import PositionPostings
from repro.index.stats import CollectionStats

#: Leading magic of a packed index blob.
MAGIC = b"GRAFTPK1"
#: Packed format version (bumped on any layout change).
VERSION = 1

#: Per-term frame head: magic, #docs (u32), #positions (u64).
_FRAME_HEAD = struct.Struct("<IIQ")
_FRAME_MAGIC = 0x31464B50  # b"PKF1" little-endian
_U32 = struct.Struct("<I")
_U32_MAX = 2**32 - 1

_EMPTY_POSTINGS = PositionPostings.empty()


def _crc(data, value: int = 0) -> int:
    return zlib.crc32(data, value) & 0xFFFFFFFF


def _align8(n: int) -> int:
    return (n + 7) & ~7


# -- encoding -----------------------------------------------------------------


def _pack_frame(term: str, postings: PositionPostings) -> bytes:
    """One term's checksum-framed binary frame."""
    doc_ids = np.ascontiguousarray(postings.doc_ids, dtype=np.int64)
    n = len(doc_ids)
    if n and (int(doc_ids[0]) < 0 or int(doc_ids[-1]) > _U32_MAX):
        raise IndexError_(
            f"term {term!r}: doc ids outside the packable range [0, 2^32)"
        )
    deltas = np.diff(doc_ids, prepend=np.int64(0))
    # The first gap is the first doc id (>= 0, range-checked above);
    # every later gap must be positive — strictly increasing doc ids.
    if n > 1 and int(deltas[1:].min()) <= 0:
        raise IndexError_(
            f"term {term!r}: doc ids must be strictly increasing"
        )
    try:
        counts = np.fromiter(
            (len(o) for o in postings.offsets), dtype=np.uint32, count=n
        )
        n_pos = int(counts.sum(dtype=np.int64)) if n else 0
        positions = np.fromiter(
            (p for offs in postings.offsets for p in offs),
            dtype=np.uint32,
            count=n_pos,
        )
    except (OverflowError, ValueError) as exc:
        raise IndexError_(
            f"term {term!r}: positions outside the packable range: {exc}"
        ) from None
    body = b"".join(
        (
            _FRAME_HEAD.pack(_FRAME_MAGIC, n, n_pos),
            deltas.astype(np.uint32).tobytes(),
            counts.tobytes(),
            positions.tobytes(),
        )
    )
    return body + _U32.pack(_crc(body))


def pack_index(index: Index) -> bytes:
    """Serialize ``index`` into one flat packed blob.

    The blob is self-describing and position-independent: header
    (magic + version + JSON directory + CRC), then 8-aligned payload
    sections.  Raises :class:`repro.errors.IndexError_` when a value
    does not fit the fixed-width layout (doc ids / positions >= 2^32).
    """
    stats = index.stats
    num_docs = stats.num_docs
    doc_lengths = np.ascontiguousarray(stats.doc_lengths, dtype=np.int64)
    sent = index.sentence_starts
    if len(sent) != num_docs:
        raise IndexError_(
            f"sentence_starts covers {len(sent)} docs, stats say {num_docs}"
        )
    sent_counts = np.fromiter(
        (len(s) for s in sent), dtype=np.uint32, count=num_docs
    )
    total_sent = int(sent_counts.sum(dtype=np.int64)) if num_docs else 0
    try:
        sent_values = np.fromiter(
            (v for starts in sent for v in starts),
            dtype=np.uint32,
            count=total_sent,
        )
    except (OverflowError, ValueError) as exc:
        raise IndexError_(
            f"sentence offsets outside the packable range: {exc}"
        ) from None

    sections: dict[str, list[int]] = {}
    payload = bytearray()

    def _append(name: str, data: bytes) -> None:
        pad = _align8(len(payload)) - len(payload)
        payload.extend(b"\x00" * pad)
        sections[name] = [len(payload), len(data)]
        payload.extend(data)

    _append("doc_lengths", doc_lengths.tobytes())
    _append("sentence_counts", sent_counts.tobytes())
    _append("sentence_values", sent_values.tobytes())
    sections_crc = 0
    for name in ("doc_lengths", "sentence_counts", "sentence_values"):
        off, size = sections[name]
        sections_crc = _crc(bytes(payload[off : off + size]), sections_crc)

    terms: dict[str, list[int]] = {}
    for term in sorted(index.terms):
        frame = _pack_frame(term, index.terms[term])
        pad = _align8(len(payload)) - len(payload)
        payload.extend(b"\x00" * pad)
        terms[term] = [len(payload), len(frame)]
        payload.extend(frame)

    header = json.dumps(
        {
            "num_docs": num_docs,
            "payload_size": len(payload),
            "sections": sections,
            "sections_crc": sections_crc,
            "terms": terms,
        },
        separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")
    head = bytearray()
    head += MAGIC
    head += struct.pack("<II", VERSION, len(header))
    head += header
    head += _U32.pack(_crc(header))
    head.extend(b"\x00" * (_align8(len(head)) - len(head)))
    return bytes(head) + bytes(payload)


# -- decoded views ------------------------------------------------------------


class _LazyPositionList:
    """The positions buffer as a Python list, materialized once and
    shared by a term's postings and every doc-range slice of it (offset
    tuples are built by slicing this list — batch ``tolist`` beats
    per-int conversion by a wide margin)."""

    __slots__ = ("_arr", "_list")

    def __init__(self, arr: np.ndarray):
        self._arr = arr
        self._list: list[int] | None = None

    def list(self) -> list[int]:
        if self._list is None:
            self._list = self._arr.tolist()
        return self._list


class _PackedOffsets:
    """``offsets[i]`` view over the shared positions buffer: run ``i``
    of the owning (possibly sliced) postings as a tuple."""

    __slots__ = ("_shared", "_starts", "_lo", "_n")

    def __init__(
        self, shared: _LazyPositionList, starts: np.ndarray, lo: int, n: int
    ):
        self._shared = shared
        self._starts = starts
        self._lo = lo
        self._n = n

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, i: int) -> tuple[int, ...]:
        if i < 0:
            i += self._n
        if not 0 <= i < self._n:
            raise IndexError(i)
        j = self._lo + i
        plist = self._shared.list()
        return tuple(plist[self._starts[j] : self._starts[j + 1]])

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        for i in range(self._n):
            yield self[i]


class PackedPositionPostings:
    """Decoded postings of one term frame, or a doc-range slice of one.

    Quacks like :class:`repro.index.postings.PositionPostings`.  All
    instances carved from the same frame share the decoded doc-id array,
    the run-bound array and the (lazy) position list — a slice is two
    integers and a view, never a copy.
    """

    __slots__ = (
        "_all_doc_ids",
        "_starts",
        "_counts",
        "_shared",
        "_lo",
        "_hi",
        "doc_ids",
        "_seq",
        "_off",
    )

    def __init__(
        self,
        all_doc_ids: np.ndarray,
        starts: np.ndarray,
        counts: np.ndarray,
        shared: _LazyPositionList,
        lo: int,
        hi: int,
    ):
        self._all_doc_ids = all_doc_ids
        self._starts = starts
        self._counts = counts
        self._shared = shared
        self._lo = lo
        self._hi = hi
        self.doc_ids = all_doc_ids[lo:hi]
        self._seq: memoryview | None = None
        self._off: _PackedOffsets | None = None

    @property
    def doc_id_seq(self) -> memoryview:
        """Doc ids as a zero-copy buffer scan cursors bisect directly —
        indexing yields Python ints, no per-term list is built."""
        if self._seq is None:
            self._seq = memoryview(self.doc_ids)
        return self._seq

    @property
    def offsets(self) -> _PackedOffsets:
        if self._off is None:
            self._off = _PackedOffsets(
                self._shared, self._starts, self._lo, self._hi - self._lo
            )
        return self._off

    @property
    def document_frequency(self) -> int:
        return self._hi - self._lo

    @property
    def total_positions(self) -> int:
        return int(self._starts[self._hi] - self._starts[self._lo])

    def entry_index_at_or_after(self, doc_id: int, lo: int = 0) -> int:
        if lo:
            return (
                int(np.searchsorted(self.doc_ids[lo:], doc_id, side="left"))
                + lo
            )
        return int(np.searchsorted(self.doc_ids, doc_id, side="left"))

    def positions_in(self, doc_id: int) -> tuple[int, ...]:
        seq = self.doc_id_seq
        i = bisect_left(seq, doc_id)
        if i < len(seq) and seq[i] == doc_id:
            return self.offsets[i]
        return ()

    def term_frequency(self, doc_id: int) -> int:
        seq = self.doc_id_seq
        i = bisect_left(seq, doc_id)
        if i < len(seq) and seq[i] == doc_id:
            j = self._lo + i
            return int(self._starts[j + 1] - self._starts[j])
        return 0

    def sliced(self, a: int, b: int) -> "PackedPositionPostings":
        """The ``[a, b)`` entry range as a zero-copy slice (used by
        :class:`repro.index.shard.ShardView`)."""
        return PackedPositionPostings(
            self._all_doc_ids,
            self._starts,
            self._counts,
            self._shared,
            self._lo + a,
            self._lo + b,
        )

    def __len__(self) -> int:
        return self._hi - self._lo


class _PackedDocTerms:
    """Mapping-shaped term-document view over the packed frames: ``get``
    returns a :class:`TermDocumentPostings` built zero-copy from the
    frame's doc-id and count arrays."""

    __slots__ = ("_index",)

    def __init__(self, index: "PackedIndex"):
        self._index = index

    def get(self, term: str) -> TermDocumentPostings | None:
        idx = self._index
        cached = idx._doc_cache.get(term, _MISSING)
        if cached is not _MISSING:
            return cached
        if term not in idx._directory:
            idx._doc_cache[term] = None
            return None
        pp = idx.postings(term)
        td = TermDocumentPostings(pp.doc_ids, pp._counts)
        idx._doc_cache[term] = td
        return td


_MISSING = object()


class _PackedTermsMap(Mapping):
    """Read-only ``term -> postings`` mapping over the term directory
    (decodes lazily; supports the few Mapping uses the engine has)."""

    __slots__ = ("_index",)

    def __init__(self, index: "PackedIndex"):
        self._index = index

    def __getitem__(self, term: str) -> PackedPositionPostings:
        if term not in self._index._directory:
            raise KeyError(term)
        return self._index.postings(term)

    def __iter__(self) -> Iterator[str]:
        return iter(self._index._directory)

    def __len__(self) -> int:
        return len(self._index._directory)


class PackedIndex:
    """A read-only index over one packed blob (bytes, mmap, or a
    ``multiprocessing.shared_memory`` buffer).

    Construction performs the cheap structural checks every open must
    pass (magic, version, header CRC, directory bounds, truncation);
    ``verify=True`` additionally sweeps every section and term frame
    checksum — the full-integrity pass a load from untrusted storage
    wants.  All failures raise
    :class:`repro.errors.IndexCorruptionError`.
    """

    def __init__(self, buf, *, verify: bool = False, source: str | None = None):
        mv = memoryview(buf)
        if mv.format != "B" or mv.ndim != 1:
            mv = mv.cast("B")
        self._mv = mv
        src = source if source is not None else "<packed index>"
        self._source = src
        if len(mv) < 16:
            raise IndexCorruptionError(
                "truncated packed index (shorter than the fixed header)",
                path=src,
            )
        if bytes(mv[:8]) != MAGIC:
            raise IndexCorruptionError(
                "not a packed index (bad magic)", path=src
            )
        version, hlen = struct.unpack_from("<II", mv, 8)
        if version != VERSION:
            raise IndexCorruptionError(
                f"unsupported packed format version {version}", path=src
            )
        if 16 + hlen + 4 > len(mv):
            raise IndexCorruptionError(
                "truncated packed index (header extends past the buffer)",
                path=src,
            )
        hbytes = bytes(mv[16 : 16 + hlen])
        (hcrc,) = _U32.unpack_from(mv, 16 + hlen)
        if _crc(hbytes) != hcrc:
            raise IndexCorruptionError(
                "packed header checksum mismatch", path=src
            )
        try:
            header = json.loads(hbytes.decode("utf-8"))
            self._payload_size = int(header["payload_size"])
            self._directory: dict[str, list[int]] = header["terms"]
            self._sections: dict[str, list[int]] = header["sections"]
            self._sections_crc = int(header["sections_crc"])
            num_docs = int(header["num_docs"])
        except (KeyError, TypeError, ValueError) as exc:
            raise IndexCorruptionError(
                f"malformed packed header: {exc}", path=src
            ) from None
        self._base = _align8(16 + hlen + 4)
        if self._base + self._payload_size > len(mv):
            raise IndexCorruptionError(
                "truncated packed index (payload extends past the buffer)",
                path=src,
            )
        doc_lengths = self._section("doc_lengths", np.int64)
        if len(doc_lengths) != num_docs:
            raise IndexCorruptionError(
                f"doc_lengths section holds {len(doc_lengths)} entries, "
                f"header records {num_docs} documents",
                path=src,
            )
        self.stats = CollectionStats(doc_lengths)
        self._sent_counts = self._section("sentence_counts", np.uint32)
        self._sent_values = self._section("sentence_values", np.uint32)
        if len(self._sent_counts) != num_docs:
            raise IndexCorruptionError(
                "sentence_counts section does not cover every document",
                path=src,
            )
        self._sentence_starts: list[tuple[int, ...]] | None = None
        self._post_cache: dict[str, PackedPositionPostings] = {}
        self._doc_cache: dict[str, TermDocumentPostings | None] = {}
        self.doc_terms = _PackedDocTerms(self)
        self.terms = _PackedTermsMap(self)
        if verify:
            self.verify()

    # -- zero-copy section / frame access ---------------------------------

    def _section(self, name: str, dtype) -> np.ndarray:
        try:
            rel, size = self._sections[name]
            rel, size = int(rel), int(size)
        except (KeyError, TypeError, ValueError):
            raise IndexCorruptionError(
                f"packed header missing section {name!r}", path=self._source
            ) from None
        itemsize = np.dtype(dtype).itemsize
        if rel < 0 or size < 0 or rel + size > self._payload_size or size % itemsize:
            raise IndexCorruptionError(
                f"section {name!r} has inconsistent bounds", path=self._source
            )
        return np.frombuffer(
            self._mv, dtype=dtype, count=size // itemsize,
            offset=self._base + rel,
        )

    def _frame_bounds(self, term: str) -> tuple[int, int, int, int]:
        """(absolute offset, size, n_docs, n_positions) of a term frame,
        structurally validated."""
        rel, size = self._directory[term]
        off = self._base + int(rel)
        size = int(size)
        if rel < 0 or size < _FRAME_HEAD.size + 4 or int(rel) + size > self._payload_size:
            raise IndexCorruptionError(
                f"term {term!r}: frame bounds outside the payload",
                path=self._source,
            )
        magic, n_docs, n_pos = _FRAME_HEAD.unpack_from(self._mv, off)
        if magic != _FRAME_MAGIC:
            raise IndexCorruptionError(
                f"term {term!r}: bad frame magic", path=self._source
            )
        if _FRAME_HEAD.size + 8 * n_docs + 4 * n_pos + 4 != size:
            raise IndexCorruptionError(
                f"term {term!r}: frame size does not match its entry counts",
                path=self._source,
            )
        return off, size, n_docs, n_pos

    def _decode(self, term: str) -> PackedPositionPostings:
        off, _size, n, n_pos = self._frame_bounds(term)
        mv = self._mv
        head = _FRAME_HEAD.size
        deltas = np.frombuffer(mv, np.uint32, n, off + head)
        counts = np.frombuffer(mv, np.uint32, n, off + head + 4 * n)
        positions = np.frombuffer(mv, np.uint32, n_pos, off + head + 8 * n)
        # Batch decode: one cumsum rebuilds the sorted doc ids, another
        # the per-document run bounds into the positions buffer.
        doc_ids = np.cumsum(deltas, dtype=np.int64)
        starts = np.zeros(n + 1, dtype=np.int64)
        if n:
            np.cumsum(counts, dtype=np.int64, out=starts[1:])
        if int(starts[-1]) != n_pos:
            raise IndexCorruptionError(
                f"term {term!r}: position counts do not sum to the frame's "
                "position total",
                path=self._source,
            )
        return PackedPositionPostings(
            doc_ids, starts, counts, _LazyPositionList(positions), 0, n
        )

    # -- integrity ---------------------------------------------------------

    def verify(self) -> None:
        """Full checksum sweep: every section and term frame.

        Raises :class:`repro.errors.IndexCorruptionError` on the first
        mismatch — a flipped byte anywhere in the blob is caught either
        here or (for the header) at construction.
        """
        crc = 0
        for name in ("doc_lengths", "sentence_counts", "sentence_values"):
            rel, size = self._sections[name]
            off = self._base + int(rel)
            crc = _crc(self._mv[off : off + int(size)], crc)
        if crc != self._sections_crc:
            raise IndexCorruptionError(
                "statistics sections checksum mismatch", path=self._source
            )
        for term in self._directory:
            off, size, _n, _p = self._frame_bounds(term)
            (stored,) = _U32.unpack_from(self._mv, off + size - 4)
            if _crc(self._mv[off : off + size - 4]) != stored:
                raise IndexCorruptionError(
                    f"term {term!r}: frame checksum mismatch",
                    path=self._source,
                )

    # -- Index-shaped lookup surface ---------------------------------------

    def postings(self, term: str) -> PackedPositionPostings | PositionPostings:
        cached = self._post_cache.get(term)
        if cached is not None:
            return cached
        if term not in self._directory:
            return _EMPTY_POSTINGS
        decoded = self._decode(term)
        self._post_cache[term] = decoded
        return decoded

    def sentence_starts_of(self, doc_id: int) -> tuple[int, ...]:
        if self._sentence_starts is None:
            bounds = np.zeros(len(self._sent_counts) + 1, dtype=np.int64)
            if len(self._sent_counts):
                np.cumsum(self._sent_counts, dtype=np.int64, out=bounds[1:])
            values = self._sent_values.tolist()
            blist = bounds.tolist()
            self._sentence_starts = [
                tuple(values[blist[i] : blist[i + 1]])
                for i in range(len(self._sent_counts))
            ]
        if 0 <= doc_id < len(self._sentence_starts):
            return self._sentence_starts[doc_id]
        return ()

    def document_frequency(self, term: str) -> int:
        cached = self._post_cache.get(term)
        if cached is not None:
            return cached.document_frequency
        if term not in self._directory:
            return 0
        # Header peek: the cost model asks for df per candidate term;
        # answering from the frame head avoids decoding frames no plan
        # will ever scan.
        return self._frame_bounds(term)[2]

    def term_frequency(self, doc_id: int, term: str) -> int:
        return self.postings(term).term_frequency(doc_id)

    def total_positions(self, term: str) -> int:
        cached = self._post_cache.get(term)
        if cached is not None:
            return cached.total_positions
        if term not in self._directory:
            return 0
        return self._frame_bounds(term)[3]

    @property
    def num_docs(self) -> int:
        return self.stats.num_docs

    def vocabulary_size(self) -> int:
        return len(self._directory)
