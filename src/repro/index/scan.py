"""Ordered, seekable index scans.

These are the physical leaves of every evaluation plan ("every plan leaf is
an ordered index scan", Section 5.2.1).  Both scan types iterate documents
in ascending id order and support :meth:`seek`, the skip-pointer jump that
zig-zag joins and alternate elimination exploit.

Cost realism: a :class:`PositionScan` pays for every *position* it hands
downstream, while a :class:`DocumentScan` (used by the pre-counting factory
``CA``) pays once per *document*.  The scans also keep touch counters so
tests and benchmarks can assert how much index data a plan actually read —
this is how we validate claims like "the free keywords represent only 3% of
the positions scanned for the unoptimized Q8" (Section 8).
"""

from __future__ import annotations

from repro.index.index import Index


class PositionScan:
    """Scan of a term's position postings: yields (doc_id, offsets)."""

    __slots__ = ("postings", "_i", "positions_touched", "docs_touched")

    def __init__(self, index: Index, term: str):
        self.postings = index.postings(term)
        self._i = 0
        self.positions_touched = 0
        self.docs_touched = 0

    def seek(self, doc_id: int) -> None:
        """Skip forward so the next entry has doc >= ``doc_id``."""
        if self._i < len(self.postings.doc_ids):
            # Only binary-search the remaining tail; seeks never go back.
            j = self.postings.entry_index_at_or_after(doc_id, lo=self._i)
            if j > self._i:
                self._i = j

    def current_doc(self) -> int | None:
        """Doc id of the next entry, or None when exhausted."""
        if self._i >= len(self.postings.doc_ids):
            return None
        return int(self.postings.doc_ids[self._i])

    def next_entry(self) -> tuple[int, tuple[int, ...]] | None:
        """Consume and return the next (doc_id, offsets) entry."""
        if self._i >= len(self.postings.doc_ids):
            return None
        doc = int(self.postings.doc_ids[self._i])
        offsets = self.postings.offsets[self._i]
        self._i += 1
        self.docs_touched += 1
        self.positions_touched += len(offsets)
        return doc, offsets


class DocumentScan:
    """Scan of a term's term-document postings: yields (doc_id, count).

    This is the physical operator behind the Pre-Counting Atomic Match
    Factory ``CA``; it never touches individual positions.
    """

    __slots__ = ("postings", "_i", "docs_touched")

    def __init__(self, index: Index, term: str):
        self.postings = index.doc_terms.get(term)
        if self.postings is None:
            # Unseen term: behave as an empty scan.
            from repro.index.index import TermDocumentPostings
            import numpy as np

            self.postings = TermDocumentPostings(
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
            )
        self._i = 0
        self.docs_touched = 0

    def seek(self, doc_id: int) -> None:
        if self._i < len(self.postings.doc_ids):
            j = self.postings.entry_index_at_or_after(doc_id, lo=self._i)
            if j > self._i:
                self._i = j

    def current_doc(self) -> int | None:
        if self._i >= len(self.postings.doc_ids):
            return None
        return int(self.postings.doc_ids[self._i])

    def next_entry(self) -> tuple[int, int] | None:
        """Consume and return the next (doc_id, term count) entry."""
        if self._i >= len(self.postings.doc_ids):
            return None
        doc = int(self.postings.doc_ids[self._i])
        count = int(self.postings.counts[self._i])
        self._i += 1
        self.docs_touched += 1
        return doc, count
