"""Ordered, seekable index scans.

These are the physical leaves of every evaluation plan ("every plan leaf is
an ordered index scan", Section 5.2.1).  Both scan types iterate documents
in ascending id order and support :meth:`seek`, the skip-pointer jump that
zig-zag joins and alternate elimination exploit.

Cost realism: a :class:`PositionScan` pays for every *position* it hands
downstream, while a :class:`DocumentScan` (used by the pre-counting factory
``CA``) pays once per *document*.  The scans also keep touch counters so
tests and benchmarks can assert how much index data a plan actually read —
this is how we validate claims like "the free keywords represent only 3% of
the positions scanned for the unoptimized Q8" (Section 8).

Cursors iterate and seek over the substrate's ``doc_id_seq`` — the
batch-decoded bisectable sequence both the object postings
(:mod:`repro.index.postings`) and the packed postings
(:mod:`repro.index.packed`) expose.  Indexing it yields Python ints, so
the per-entry loop never round-trips through NumPy scalars, and a seek
is one ``bisect_left`` over the remaining tail.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.index.index import Index


class PositionScan:
    """Scan of a term's position postings: yields (doc_id, offsets)."""

    __slots__ = (
        "postings",
        "_doc_ids",
        "_offsets",
        "_i",
        "positions_touched",
        "docs_touched",
    )

    def __init__(self, index: Index, term: str):
        self.postings = index.postings(term)
        self._doc_ids = self.postings.doc_id_seq
        self._offsets = self.postings.offsets
        self._i = 0
        self.positions_touched = 0
        self.docs_touched = 0

    def seek(self, doc_id: int) -> None:
        """Skip forward so the next entry has doc >= ``doc_id``.

        Only bisects the remaining tail; seeks never go back.
        """
        self._i = bisect_left(self._doc_ids, doc_id, self._i)

    def current_doc(self) -> int | None:
        """Doc id of the next entry, or None when exhausted."""
        if self._i >= len(self._doc_ids):
            return None
        return self._doc_ids[self._i]

    def next_entry(self) -> tuple[int, tuple[int, ...]] | None:
        """Consume and return the next (doc_id, offsets) entry."""
        i = self._i
        if i >= len(self._doc_ids):
            return None
        doc = self._doc_ids[i]
        offsets = self._offsets[i]
        self._i = i + 1
        self.docs_touched += 1
        self.positions_touched += len(offsets)
        return doc, offsets


class DocumentScan:
    """Scan of a term's term-document postings: yields (doc_id, count).

    This is the physical operator behind the Pre-Counting Atomic Match
    Factory ``CA``; it never touches individual positions.
    """

    __slots__ = ("postings", "_doc_ids", "_counts", "_i", "docs_touched")

    def __init__(self, index: Index, term: str):
        self.postings = index.doc_terms.get(term)
        if self.postings is None:
            # Unseen term: behave as an empty scan.
            from repro.index.index import TermDocumentPostings
            import numpy as np

            self.postings = TermDocumentPostings(
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
            )
        self._doc_ids = self.postings.doc_id_seq
        self._counts = self.postings.count_seq
        self._i = 0
        self.docs_touched = 0

    def seek(self, doc_id: int) -> None:
        self._i = bisect_left(self._doc_ids, doc_id, self._i)

    def current_doc(self) -> int | None:
        if self._i >= len(self._doc_ids):
            return None
        return self._doc_ids[self._i]

    def next_entry(self) -> tuple[int, int] | None:
        """Consume and return the next (doc_id, term count) entry."""
        i = self._i
        if i >= len(self._doc_ids):
            return None
        doc = self._doc_ids[i]
        count = self._counts[i]
        self._i = i + 1
        self.docs_touched += 1
        return doc, count
