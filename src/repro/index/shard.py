"""Document-partitioned index shards with *global* scoring statistics.

A :class:`ShardedIndex` splits an :class:`repro.index.index.Index` into
contiguous doc-id ranges.  Each :class:`ShardView` exposes the same
lookup surface physical operators use (``postings``, ``doc_terms``,
``sentence_starts_of``) but restricted to its ``[lo, hi)`` range, so a
plan compiled against a shard scans only that shard's slice of every
postings list.

Score consistency is the design constraint (the whole point of the
paper is that rewrites — and now physical distribution — never change
scores): every *statistic* a scoring scheme may consult
(``stats``, ``document_frequency``, ``total_positions``, ``num_docs``)
delegates to the **base** index, never to the slice.  An idf-style
scheme therefore computes the exact same per-document score inside a
shard as it would on the whole index, which is what makes the top-k
merge in :mod:`repro.exec.parallel` bit-identical to serial execution
(the classic document-partitioned IR requirement; see
docs/PERFORMANCE.md).

Slices are cut with one binary search pair per (term, shard) and cached,
so repeated queries over the same shard pay dictionary lookups only.
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np

from repro.errors import GraftError
from repro.index.index import Index, TermDocumentPostings
from repro.index.postings import PositionPostings
from repro.index.stats import CollectionStats

_EMPTY_POSITIONS = PositionPostings.empty()


class _ShardDocTerms:
    """Mapping-shaped view of the base term-document index, sliced to the
    owning shard's doc range.  Only ``get`` is needed — it is the sole
    accessor the physical scans use."""

    __slots__ = ("_shard",)

    def __init__(self, shard: "ShardView"):
        self._shard = shard

    def get(self, term: str) -> TermDocumentPostings | None:
        return self._shard._doc_postings(term)


class ShardView:
    """One contiguous doc-id slice ``[lo, hi)`` of a base index.

    Quacks like an :class:`Index` for plan execution (postings lookups
    are range-restricted) while every scoring statistic stays global.
    """

    __slots__ = (
        "base",
        "shard_id",
        "lo",
        "hi",
        "doc_terms",
        "_pos_cache",
        "_doc_cache",
    )

    def __init__(self, base: Index, shard_id: int, lo: int, hi: int):
        self.base = base
        self.shard_id = shard_id
        self.lo = lo
        self.hi = hi
        self.doc_terms = _ShardDocTerms(self)
        self._pos_cache: dict[str, PositionPostings] = {}
        self._doc_cache: dict[str, TermDocumentPostings | None] = {}

    # -- range-restricted postings (what execution scans) -----------------

    def _bounds(self, doc_ids: np.ndarray) -> tuple[int, int]:
        a = int(np.searchsorted(doc_ids, self.lo, side="left"))
        b = int(np.searchsorted(doc_ids, self.hi, side="left"))
        return a, b

    def postings(self, term: str) -> PositionPostings:
        cached = self._pos_cache.get(term)
        if cached is not None:
            return cached
        base = self.base.postings(term)
        a, b = self._bounds(base.doc_ids)
        if a == b:
            sliced = _EMPTY_POSITIONS
        elif hasattr(base, "sliced"):
            # Packed postings: a slice is two integers over the shared
            # decoded buffers — no offsets list is ever materialized.
            sliced = base.sliced(a, b)
        else:
            sliced = PositionPostings(base.doc_ids[a:b], base.offsets[a:b])
        self._pos_cache[term] = sliced
        return sliced

    def _doc_postings(self, term: str) -> TermDocumentPostings | None:
        if term in self._doc_cache:
            return self._doc_cache[term]
        base = self.base.doc_terms.get(term)
        if base is None:
            sliced = None
        else:
            a, b = self._bounds(base.doc_ids)
            sliced = TermDocumentPostings(base.doc_ids[a:b], base.counts[a:b])
        self._doc_cache[term] = sliced
        return sliced

    def contains_term(self, term: str) -> bool:
        """True when ``term`` occurs in at least one document of this
        shard's range — the partition-pruning probe (O(log n), no slice
        materialized)."""
        doc_ids = self.base.postings(term).doc_ids
        a = int(np.searchsorted(doc_ids, self.lo, side="left"))
        return a < len(doc_ids) and int(doc_ids[a]) < self.hi

    # -- global statistics (what scoring consults) -------------------------
    #
    # Everything below answers from the *base* index: a shard that sliced
    # these would change idf-style weights and break the exact-merge
    # guarantee.

    @property
    def stats(self) -> CollectionStats:
        return self.base.stats

    @property
    def terms(self) -> dict[str, PositionPostings]:
        return self.base.terms

    def sentence_starts_of(self, doc_id: int) -> tuple[int, ...]:
        return self.base.sentence_starts_of(doc_id)

    def document_frequency(self, term: str) -> int:
        return self.base.document_frequency(term)

    def term_frequency(self, doc_id: int, term: str) -> int:
        return self.base.term_frequency(doc_id, term)

    def total_positions(self, term: str) -> int:
        return self.base.total_positions(term)

    @property
    def num_docs(self) -> int:
        return self.base.num_docs

    def vocabulary_size(self) -> int:
        return self.base.vocabulary_size()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardView({self.shard_id}: [{self.lo}, {self.hi}))"


class ShardedIndex:
    """A base index partitioned into ``num_shards`` contiguous doc ranges.

    Ranges tile ``[0, num_docs)`` evenly (sizes differ by at most one
    document), so shard doc sets are disjoint and their union is the
    whole collection — the precondition for the rank-preserving merge.
    """

    def __init__(self, base: Index, num_shards: int):
        if not isinstance(num_shards, int) or isinstance(num_shards, bool) or num_shards < 1:
            raise GraftError(
                f"num_shards must be a positive integer, got {num_shards!r}"
            )
        self.base = base
        self.num_shards = num_shards
        n = base.num_docs
        self.shards: list[ShardView] = [
            ShardView(base, i, (i * n) // num_shards, ((i + 1) * n) // num_shards)
            for i in range(num_shards)
        ]

    def shard_of(self, doc_id: int) -> ShardView:
        """The shard whose range contains ``doc_id``."""
        i = bisect_left([s.hi for s in self.shards], doc_id + 1)
        if i >= len(self.shards):
            raise GraftError(
                f"doc_id {doc_id} outside the sharded range "
                f"[0, {self.base.num_docs})"
            )
        return self.shards[i]

    def live_shards(self, required_terms) -> list[ShardView]:
        """Shards that can possibly produce a match: partition pruning.

        A shard is skipped when any *required* keyword (one every match
        of the plan needs; see
        :func:`repro.exec.parallel.required_keywords`) has zero postings
        inside the shard's doc range — such a shard's plan output is
        provably empty, so not running it changes nothing.
        """
        required = list(required_terms)
        if not required:
            return list(self.shards)
        return [
            s
            for s in self.shards
            if all(s.contains_term(t) for t in required)
        ]
