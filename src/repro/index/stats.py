"""Collection and document statistics needed by scoring schemes.

Scoring initializers (Section 4.1, Step 1) consume per-term statistics
(#INDOC, #DOCS), per-document statistics (length), and collection
statistics (collectionSize, average document length for BM25).  This module
centralizes them so both the live index and the fixed-statistics fixtures
(Figure 1) can provide them through one interface.
"""

from __future__ import annotations

import numpy as np


class CollectionStats:
    """Aggregate statistics of an indexed collection."""

    __slots__ = ("doc_lengths", "num_docs", "total_tokens", "avg_doc_length")

    def __init__(self, doc_lengths: np.ndarray):
        self.doc_lengths = doc_lengths
        self.num_docs = int(len(doc_lengths))
        self.total_tokens = int(doc_lengths.sum()) if self.num_docs else 0
        self.avg_doc_length = (
            self.total_tokens / self.num_docs if self.num_docs else 0.0
        )

    def doc_length(self, doc_id: int) -> int:
        """Length of document ``doc_id`` in tokens (``d.length``)."""
        return int(self.doc_lengths[doc_id])
