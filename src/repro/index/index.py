"""The in-memory index: term-position plus term-document views.

All measurements in the paper are taken with index entries cached in RAM
("no measured times include disk access", Section 8), so an in-memory index
reproduces the paper's physical setting faithfully.

The *term-document* view exists as a distinct object, not a convenience
accessor: the pre-counting optimization's benefit (Section 5.2.3) is that
``CA`` scans one entry per document instead of one entry per position, and
the two scan types in :mod:`repro.index.scan` bill their work accordingly.
"""

from __future__ import annotations

import numpy as np

from repro.index.postings import PositionPostings
from repro.index.stats import CollectionStats


class TermDocumentPostings:
    """Per-term entries of the term-document index: (doc, count) pairs.

    Cursors bisect zero-copy ``memoryview``\\ s of the arrays
    (:attr:`doc_id_seq`, :attr:`count_seq`) — indexing a memoryview
    yields Python ints at list-like cost without materializing a list
    copy per term, and the same accessors work unchanged over the
    packed substrate's shared-memory buffers.
    """

    __slots__ = ("doc_ids", "counts", "_doc_id_seq", "_count_seq")

    def __init__(self, doc_ids: np.ndarray, counts: np.ndarray):
        self.doc_ids = doc_ids
        self.counts = counts
        self._doc_id_seq: memoryview | None = None
        self._count_seq: memoryview | None = None

    @property
    def doc_id_seq(self) -> memoryview:
        if self._doc_id_seq is None:
            self._doc_id_seq = memoryview(self.doc_ids)
        return self._doc_id_seq

    @property
    def count_seq(self) -> memoryview:
        if self._count_seq is None:
            self._count_seq = memoryview(self.counts)
        return self._count_seq

    @classmethod
    def from_positions(cls, postings: PositionPostings) -> "TermDocumentPostings":
        counts = np.asarray([len(o) for o in postings.offsets], dtype=np.int64)
        return cls(postings.doc_ids, counts)

    def entry_index_at_or_after(self, doc_id: int, lo: int = 0) -> int:
        if lo:
            return int(
                np.searchsorted(self.doc_ids[lo:], doc_id, side="left")
            ) + lo
        return int(np.searchsorted(self.doc_ids, doc_id, side="left"))

    def __len__(self) -> int:
        return len(self.doc_ids)


class Index:
    """A built index over a document collection.

    Attributes:
        terms: term -> :class:`PositionPostings` (the term-position index).
        doc_terms: term -> :class:`TermDocumentPostings` (the term-document
            index, a logical subset of the former).
        stats: collection statistics for scoring.
        sentence_starts: per-document sentence-start offsets (empty tuples
            when the analyzer recorded none); consulted by structural
            predicates like SAMESENTENCE.
    """

    def __init__(
        self,
        terms: dict[str, PositionPostings],
        stats: CollectionStats,
        sentence_starts: list[tuple[int, ...]] | None = None,
    ):
        self.terms = terms
        self.stats = stats
        self.sentence_starts = (
            sentence_starts
            if sentence_starts is not None
            else [()] * stats.num_docs
        )
        self.doc_terms: dict[str, TermDocumentPostings] = {
            term: TermDocumentPostings.from_positions(p)
            for term, p in terms.items()
        }

    def sentence_starts_of(self, doc_id: int) -> tuple[int, ...]:
        """Sentence-start offsets of ``doc_id`` (empty when unknown)."""
        if 0 <= doc_id < len(self.sentence_starts):
            return self.sentence_starts[doc_id]
        return ()

    # -- lookups used by scoring contexts ---------------------------------

    def postings(self, term: str) -> PositionPostings:
        """Position postings for ``term`` (empty postings if unseen)."""
        return self.terms.get(term, _EMPTY_POSTINGS)

    def document_frequency(self, term: str) -> int:
        """#DOCS for ``term``."""
        return self.postings(term).document_frequency

    def term_frequency(self, doc_id: int, term: str) -> int:
        """#INDOC for ``term`` in ``doc_id``."""
        return self.postings(term).term_frequency(doc_id)

    def total_positions(self, term: str) -> int:
        return self.postings(term).total_positions

    @property
    def num_docs(self) -> int:
        return self.stats.num_docs

    def vocabulary_size(self) -> int:
        return len(self.terms)


_EMPTY_POSTINGS = PositionPostings(np.empty(0, dtype=np.int64), [])
