"""Inverted index substrate: term-position and term-document indexes.

The paper's Atomic Match Factory ``A`` abstracts a scan of the
*term-position* index (Figure 1); the Pre-Counting factory ``CA`` scans the
much smaller *term-document* index ("a logical subset of the term-position
index", Section 5.2.3).  Both scans are ordered by document id and support
seeking forward (the skip pointers that make zig-zag joins effective).
"""

from repro.index.builder import IndexBuilder, build_index
from repro.index.io import load_index, save_index
from repro.index.index import Index
from repro.index.postings import PositionPostings
from repro.index.scan import DocumentScan, PositionScan
from repro.index.stats import CollectionStats

__all__ = [
    "Index",
    "IndexBuilder",
    "build_index",
    "save_index",
    "load_index",
    "PositionPostings",
    "PositionScan",
    "DocumentScan",
    "CollectionStats",
]
