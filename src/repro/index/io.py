"""Index persistence: save a built index to disk and load it back.

The layout is a single directory:

* ``meta.json`` — format version, vocabulary (term -> postings slice),
  per-term entry counts;
* ``postings.npz`` — NumPy arrays: per-document lengths, the
  concatenated doc-id array, the concatenated offsets array, and the
  slice boundaries that carve both per term.

Loading reconstructs the same in-memory :class:`repro.index.Index` the
builder produces (the term-document view is re-derived, as at build
time).  Term order, doc order and offsets round-trip exactly, so every
plan produces identical results on a reloaded index.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.errors import IndexError_
from repro.index.index import Index
from repro.index.postings import PositionPostings
from repro.index.stats import CollectionStats

FORMAT_VERSION = 1

_META = "meta.json"
_ARRAYS = "postings.npz"


def save_index(index: Index, directory: str | pathlib.Path) -> pathlib.Path:
    """Write ``index`` under ``directory`` (created if missing)."""
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    terms = sorted(index.terms)
    doc_id_chunks: list[np.ndarray] = []
    offset_chunks: list[int] = []
    doc_bounds = [0]
    offset_bounds = [0]
    entry_offset_counts: list[int] = []
    for term in terms:
        postings = index.terms[term]
        doc_id_chunks.append(postings.doc_ids)
        doc_bounds.append(doc_bounds[-1] + len(postings.doc_ids))
        for offs in postings.offsets:
            offset_chunks.extend(offs)
            entry_offset_counts.append(len(offs))
        offset_bounds.append(len(offset_chunks))

    sentence_flat: list[int] = []
    sentence_bounds = [0]
    for starts in index.sentence_starts:
        sentence_flat.extend(starts)
        sentence_bounds.append(len(sentence_flat))

    np.savez_compressed(
        path / _ARRAYS,
        sentence_flat=np.asarray(sentence_flat, dtype=np.int64),
        sentence_bounds=np.asarray(sentence_bounds, dtype=np.int64),
        doc_lengths=index.stats.doc_lengths,
        doc_ids=(
            np.concatenate(doc_id_chunks)
            if doc_id_chunks
            else np.empty(0, dtype=np.int64)
        ),
        offsets=np.asarray(offset_chunks, dtype=np.int64),
        entry_offset_counts=np.asarray(entry_offset_counts, dtype=np.int64),
        doc_bounds=np.asarray(doc_bounds, dtype=np.int64),
        offset_bounds=np.asarray(offset_bounds, dtype=np.int64),
    )
    meta = {"version": FORMAT_VERSION, "terms": terms}
    (path / _META).write_text(json.dumps(meta))
    return path


def load_index(directory: str | pathlib.Path) -> Index:
    """Load an index previously written by :func:`save_index`."""
    path = pathlib.Path(directory)
    meta_path = path / _META
    arrays_path = path / _ARRAYS
    if not meta_path.exists() or not arrays_path.exists():
        raise IndexError_(f"no saved index under {path}")
    meta = json.loads(meta_path.read_text())
    version = meta.get("version")
    if version != FORMAT_VERSION:
        raise IndexError_(
            f"unsupported index format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    with np.load(arrays_path) as arrays:
        doc_lengths = arrays["doc_lengths"]
        doc_ids = arrays["doc_ids"]
        offsets = arrays["offsets"]
        entry_offset_counts = arrays["entry_offset_counts"]
        doc_bounds = arrays["doc_bounds"]
        sentence_flat = arrays["sentence_flat"].tolist()
        sentence_bounds = arrays["sentence_bounds"].tolist()

    terms: dict[str, PositionPostings] = {}
    entry_cursor = 0
    offset_cursor = 0
    offsets_list = offsets.tolist()
    counts_list = entry_offset_counts.tolist()
    for i, term in enumerate(meta["terms"]):
        lo, hi = int(doc_bounds[i]), int(doc_bounds[i + 1])
        term_doc_ids = doc_ids[lo:hi]
        term_offsets: list[tuple[int, ...]] = []
        for _ in range(hi - lo):
            n = counts_list[entry_cursor]
            entry_cursor += 1
            term_offsets.append(
                tuple(offsets_list[offset_cursor:offset_cursor + n])
            )
            offset_cursor += n
        terms[term] = PositionPostings(term_doc_ids, term_offsets)
    sentence_starts = [
        tuple(sentence_flat[sentence_bounds[i]:sentence_bounds[i + 1]])
        for i in range(len(sentence_bounds) - 1)
    ]
    return Index(
        terms, CollectionStats(doc_lengths), sentence_starts=sentence_starts
    )
