"""Index persistence: save a built index to disk and load it back.

The legacy (v1) layout is a single directory:

* ``meta.json`` — format version, vocabulary (term -> postings slice),
  per-term entry counts;
* ``postings.npz`` — NumPy arrays: per-document lengths, the
  concatenated doc-id array, the concatenated offsets array, and the
  slice boundaries that carve both per term.

Loading reconstructs the same in-memory :class:`repro.index.Index` the
builder produces (the term-document view is re-derived, as at build
time).  Term order, doc order and offsets round-trip exactly, so every
plan produces identical results on a reloaded index.

This module is also the codec for the crash-safe generational store
(:mod:`repro.index.store`): :func:`flatten_index` /
:func:`assemble_index` convert between an :class:`Index` and the
serialized ``meta`` dict + array mapping, and :func:`check_invariants`
is the shared shape-consistency validator.  Every malformed artifact —
unparseable JSON, a truncated or non-zip ``postings.npz``, a missing
array, or mutually inconsistent bounds arrays — surfaces as
:class:`repro.errors.IndexCorruptionError` naming the offending file,
never as a raw ``JSONDecodeError``/``BadZipFile``/``KeyError``.
"""

from __future__ import annotations

import io as _io
import json
import pathlib

import numpy as np

from repro.errors import IndexCorruptionError, IndexError_
from repro.index.index import Index
from repro.index.postings import PositionPostings
from repro.index.stats import CollectionStats

FORMAT_VERSION = 1

_META = "meta.json"
_ARRAYS = "postings.npz"

#: Arrays every postings.npz must contain.
ARRAY_KEYS = (
    "sentence_flat",
    "sentence_bounds",
    "doc_lengths",
    "doc_ids",
    "offsets",
    "entry_offset_counts",
    "doc_bounds",
    "offset_bounds",
)


# -- flatten / assemble -------------------------------------------------------


def flatten_index(index: Index) -> tuple[dict, dict[str, np.ndarray]]:
    """Serialize ``index`` to a ``meta`` dict and a named-array mapping."""
    terms = sorted(index.terms)
    doc_id_chunks: list[np.ndarray] = []
    offset_chunks: list[int] = []
    doc_bounds = [0]
    offset_bounds = [0]
    entry_offset_counts: list[int] = []
    for term in terms:
        postings = index.terms[term]
        doc_id_chunks.append(postings.doc_ids)
        doc_bounds.append(doc_bounds[-1] + len(postings.doc_ids))
        for offs in postings.offsets:
            offset_chunks.extend(offs)
            entry_offset_counts.append(len(offs))
        offset_bounds.append(len(offset_chunks))

    sentence_flat: list[int] = []
    sentence_bounds = [0]
    for starts in index.sentence_starts:
        sentence_flat.extend(starts)
        sentence_bounds.append(len(sentence_flat))

    arrays = {
        "sentence_flat": np.asarray(sentence_flat, dtype=np.int64),
        "sentence_bounds": np.asarray(sentence_bounds, dtype=np.int64),
        "doc_lengths": index.stats.doc_lengths,
        "doc_ids": (
            np.concatenate(doc_id_chunks)
            if doc_id_chunks
            else np.empty(0, dtype=np.int64)
        ),
        "offsets": np.asarray(offset_chunks, dtype=np.int64),
        "entry_offset_counts": np.asarray(entry_offset_counts, dtype=np.int64),
        "doc_bounds": np.asarray(doc_bounds, dtype=np.int64),
        "offset_bounds": np.asarray(offset_bounds, dtype=np.int64),
    }
    meta = {"version": FORMAT_VERSION, "terms": terms}
    return meta, arrays


def check_invariants(
    meta: dict, arrays: dict, source: str = _ARRAYS
) -> None:
    """Cross-check the mutual consistency of the postings arrays.

    Raises :class:`IndexCorruptionError` naming ``source`` when any
    structural invariant of the flattened layout is violated — the
    checks a checksum cannot make (a file can be byte-intact yet
    describe an impossible index, e.g. after a buggy external writer).
    """

    def bad(detail: str) -> IndexCorruptionError:
        return IndexCorruptionError(f"inconsistent index arrays: {detail}",
                                    path=source)

    terms = meta.get("terms")
    if not isinstance(terms, list):
        raise IndexCorruptionError("meta 'terms' is not a list", path=source)
    n_terms = len(terms)
    doc_bounds = arrays["doc_bounds"]
    offset_bounds = arrays["offset_bounds"]
    entry_offset_counts = arrays["entry_offset_counts"]
    doc_ids = arrays["doc_ids"]
    offsets = arrays["offsets"]
    sentence_flat = arrays["sentence_flat"]
    sentence_bounds = arrays["sentence_bounds"]

    for name, bounds, flat, expect_len in (
        ("doc_bounds", doc_bounds, doc_ids, n_terms + 1),
        ("offset_bounds", offset_bounds, offsets, n_terms + 1),
        ("sentence_bounds", sentence_bounds, sentence_flat, None),
    ):
        if expect_len is not None and len(bounds) != expect_len:
            raise bad(
                f"{name} has {len(bounds)} entries for {n_terms} terms"
            )
        if len(bounds) == 0 or int(bounds[0]) != 0:
            raise bad(f"{name} does not start at 0")
        if len(bounds) > 1 and bool(np.any(np.diff(bounds) < 0)):
            raise bad(f"{name} is not monotonically non-decreasing")
        if int(bounds[-1]) != len(flat):
            raise bad(
                f"{name} ends at {int(bounds[-1])} but its flat array "
                f"has {len(flat)} entries"
            )
    if len(entry_offset_counts) != int(doc_bounds[-1]):
        raise bad(
            f"entry_offset_counts has {len(entry_offset_counts)} entries "
            f"for {int(doc_bounds[-1])} postings"
        )
    if len(entry_offset_counts) and bool(np.any(entry_offset_counts < 0)):
        raise bad("entry_offset_counts contains negative counts")
    if int(entry_offset_counts.sum()) != len(offsets):
        raise bad(
            f"entry_offset_counts sums to {int(entry_offset_counts.sum())} "
            f"but offsets has {len(offsets)} entries"
        )
    if len(sentence_bounds) - 1 not in (0, len(arrays["doc_lengths"])):
        raise bad(
            f"sentence_bounds describes {len(sentence_bounds) - 1} documents "
            f"but doc_lengths has {len(arrays['doc_lengths'])}"
        )


def assemble_index(
    meta: dict, arrays: dict, source: str = _ARRAYS
) -> Index:
    """Rebuild an :class:`Index` from :func:`flatten_index` output.

    Validates shape invariants first; ``source`` labels corruption
    errors with the artifact being decoded.
    """
    check_invariants(meta, arrays, source)
    doc_lengths = arrays["doc_lengths"]
    doc_ids = arrays["doc_ids"]
    offsets = arrays["offsets"]
    entry_offset_counts = arrays["entry_offset_counts"]
    doc_bounds = arrays["doc_bounds"]
    sentence_flat = arrays["sentence_flat"].tolist()
    sentence_bounds = arrays["sentence_bounds"].tolist()

    terms: dict[str, PositionPostings] = {}
    entry_cursor = 0
    offset_cursor = 0
    offsets_list = offsets.tolist()
    counts_list = entry_offset_counts.tolist()
    for i, term in enumerate(meta["terms"]):
        lo, hi = int(doc_bounds[i]), int(doc_bounds[i + 1])
        term_doc_ids = doc_ids[lo:hi]
        term_offsets: list[tuple[int, ...]] = []
        for _ in range(hi - lo):
            n = counts_list[entry_cursor]
            entry_cursor += 1
            term_offsets.append(
                tuple(offsets_list[offset_cursor:offset_cursor + n])
            )
            offset_cursor += n
        terms[term] = PositionPostings(term_doc_ids, term_offsets)
    sentence_starts = [
        tuple(sentence_flat[sentence_bounds[i]:sentence_bounds[i + 1]])
        for i in range(len(sentence_bounds) - 1)
    ]
    return Index(
        terms, CollectionStats(doc_lengths), sentence_starts=sentence_starts
    )


# -- bytes codec (used by the generational store) ----------------------------


def meta_to_bytes(meta: dict) -> bytes:
    return json.dumps(meta).encode("utf-8")


def arrays_to_bytes(arrays: dict) -> bytes:
    buf = _io.BytesIO()
    np.savez_compressed(buf, **arrays)
    return buf.getvalue()


def meta_from_bytes(data: bytes, source: str = _META) -> dict:
    try:
        meta = json.loads(data.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise IndexCorruptionError(
            f"malformed index metadata: {exc}", path=source
        ) from exc
    if not isinstance(meta, dict):
        raise IndexCorruptionError(
            "index metadata is not a JSON object", path=source
        )
    return meta


def arrays_from_bytes(data: bytes, source: str = _ARRAYS) -> dict:
    try:
        with np.load(_io.BytesIO(data)) as npz:
            missing = [k for k in ARRAY_KEYS if k not in npz.files]
            if missing:
                raise IndexCorruptionError(
                    f"postings archive is missing arrays: {missing}",
                    path=source,
                )
            return {k: npz[k] for k in ARRAY_KEYS}
    except IndexCorruptionError:
        raise
    except Exception as exc:  # BadZipFile, EOFError, OSError, ValueError, ...
        raise IndexCorruptionError(
            f"unreadable postings archive: {exc}", path=source
        ) from exc


# -- legacy v1 directory layout ----------------------------------------------


def save_index(index: Index, directory: str | pathlib.Path) -> pathlib.Path:
    """Write ``index`` under ``directory`` (created if missing).

    This is the legacy v1 single-directory layout, overwritten in place.
    For crash-safe, checksummed persistence use
    :class:`repro.index.store.IndexStore` (what
    :meth:`repro.SearchEngine.save` does).
    """
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    meta, arrays = flatten_index(index)
    np.savez_compressed(path / _ARRAYS, **arrays)
    (path / _META).write_text(json.dumps(meta))
    return path


def load_index(directory: str | pathlib.Path) -> Index:
    """Load an index previously written by :func:`save_index`."""
    path = pathlib.Path(directory)
    meta_path = path / _META
    arrays_path = path / _ARRAYS
    if not meta_path.exists() or not arrays_path.exists():
        raise IndexError_(f"no saved index under {path}")
    meta = meta_from_bytes(meta_path.read_bytes(), source=str(meta_path))
    version = meta.get("version")
    if version != FORMAT_VERSION:
        raise IndexError_(
            f"unsupported index format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    arrays = arrays_from_bytes(
        arrays_path.read_bytes(), source=str(arrays_path)
    )
    return assemble_index(meta, arrays, source=str(arrays_path))
