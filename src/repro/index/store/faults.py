"""Deterministic crash-point fault injection for the durable store.

The execution engine proves its error paths with
:mod:`repro.exec.faults`; this module does the same for *storage*.  A
:class:`StoreFaultInjector` is attached to an
:class:`repro.index.store.IndexStore` and observes every durability-
relevant filesystem step — each file write, fsync, rename, append,
truncate and removal — as a named *crash point* such as
``"after:rename:gen-000002"`` or ``"mid:append:wal.jsonl"``.

Running once with no target records the full ordered crash-point
schedule in :attr:`StoreFaultInjector.points`; a sweep then re-runs the
same scenario once per point with ``crash_at=<point>``, which makes the
injector raise :class:`SimulatedCrash` at exactly that step — *before*
any in-process cleanup can run, exactly like a power loss.  ``mid:``
points additionally write only a prefix of the payload first, modeling a
torn write.

The store performs no ``try/finally`` cleanup around its mutation steps
on purpose: a real crash would not run cleanup either, so recovery must
come entirely from the on-disk protocol (manifest pointer swap, WAL
framing, open-time garbage collection) — which is what the sweep in
``tests/index/test_store_faults.py`` asserts for every single point.

When no injector is attached the hooks are never consulted, so the
production write path pays nothing.
"""

from __future__ import annotations


class SimulatedCrash(RuntimeError):
    """The process 'died' at an injected crash point.

    Deliberately *not* a :class:`repro.errors.GraftError`: it models the
    process disappearing mid-operation, not a library failure, and must
    never be caught by store code (only by the test harness driving the
    sweep).
    """


class StoreFaultInjector:
    """Records crash points and optionally crashes at one of them.

    Args:
        crash_at: The crash-point name to die at (``None`` records
            without crashing — the discovery pass of a sweep).
        crash_on_hit: Die on the Nth time ``crash_at`` is reached
            (1-based); points that recur, like WAL appends, need this to
            address a specific occurrence.

    Attributes:
        points: Every crash point reached, in order (discovery output).
        fired: The points at which a crash was actually raised.
    """

    def __init__(self, crash_at: str | None = None, crash_on_hit: int = 1):
        self.crash_at = crash_at
        self.crash_on_hit = crash_on_hit
        self.points: list[str] = []
        self.fired: list[str] = []
        self._hits = 0

    def hit(self, point: str) -> None:
        """Pass through crash point ``point``; raise if it is the target."""
        self.points.append(point)
        if self.crash_at is not None and point == self.crash_at:
            self._hits += 1
            if self._hits == self.crash_on_hit:
                self.fired.append(point)
                raise SimulatedCrash(f"simulated crash at {point}")

    def torn_prefix(self, point: str, data: bytes) -> bytes | None:
        """Consult a ``mid:`` (torn-write) point.

        Returns the byte prefix to write before 'dying' when ``point``
        is the crash target, else ``None``.  The caller writes the
        prefix, flushes it, then calls :meth:`crash`.
        """
        self.points.append(point)
        if self.crash_at is not None and point == self.crash_at:
            self._hits += 1
            if self._hits == self.crash_on_hit:
                return data[: max(1, len(data) // 2)]
        return None

    def crash(self, point: str) -> None:
        """Raise the crash for a ``mid:`` point whose prefix was written."""
        self.fired.append(point)
        raise SimulatedCrash(f"simulated torn write at {point}")
