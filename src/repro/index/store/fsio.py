"""Durable filesystem primitives with crash-point instrumentation.

Every mutation the store performs goes through one of these helpers so
that (a) durability is uniform — data reaches the disk via ``fsync`` on
the file *and* on the containing directory before anything depends on
it — and (b) a :class:`repro.index.store.faults.StoreFaultInjector` can
observe and interrupt each step.  ``rel`` labels the crash points with a
path relative to the store root, keeping point names stable across
temporary directories.

None of these helpers catches :class:`SimulatedCrash` or cleans up after
an interrupted step: recovery is the job of the on-disk protocol, not of
in-process exception handlers a real crash would never run.
"""

from __future__ import annotations

import os
import pathlib
import shutil

from repro.index.store.faults import StoreFaultInjector
from repro.obs.metrics import store_fsyncs


def _hit(inj: StoreFaultInjector | None, point: str) -> None:
    if inj is not None:
        inj.hit(point)


def _fsync_file(fd: int) -> None:
    os.fsync(fd)
    store_fsyncs().labels(kind="file").inc()


def write_file(
    path: pathlib.Path,
    data: bytes,
    inj: StoreFaultInjector | None = None,
    rel: str = "",
) -> None:
    """Write ``data`` to ``path`` and fsync it."""
    rel = rel or path.name
    _hit(inj, f"before:write:{rel}")
    with open(path, "wb") as out:
        out.write(data)
        out.flush()
        _hit(inj, f"before:fsync:{rel}")
        _fsync_file(out.fileno())
    _hit(inj, f"after:write:{rel}")


def append_frame(
    path: pathlib.Path,
    data: bytes,
    inj: StoreFaultInjector | None = None,
    rel: str = "",
) -> None:
    """Append ``data`` to ``path`` and fsync.

    Exposes a ``mid:append`` torn-write point that persists only a
    prefix of ``data`` before dying — the failure mode WAL recovery must
    truncate away.
    """
    rel = rel or path.name
    _hit(inj, f"before:append:{rel}")
    with open(path, "ab") as out:
        if inj is not None:
            prefix = inj.torn_prefix(f"mid:append:{rel}", data)
            if prefix is not None:
                out.write(prefix)
                out.flush()
                _fsync_file(out.fileno())
                inj.crash(f"mid:append:{rel}")
        out.write(data)
        out.flush()
        _hit(inj, f"before:fsync:{rel}")
        _fsync_file(out.fileno())
    _hit(inj, f"after:append:{rel}")


def truncate_file(
    path: pathlib.Path,
    length: int,
    inj: StoreFaultInjector | None = None,
    rel: str = "",
) -> None:
    """Truncate ``path`` to ``length`` bytes and fsync."""
    rel = rel or path.name
    _hit(inj, f"before:truncate:{rel}")
    with open(path, "r+b") as out:
        out.truncate(length)
        out.flush()
        _fsync_file(out.fileno())
    _hit(inj, f"after:truncate:{rel}")


def atomic_rename(
    src: pathlib.Path,
    dst: pathlib.Path,
    inj: StoreFaultInjector | None = None,
    rel: str = "",
) -> None:
    """Atomically replace ``dst`` with ``src`` (``os.replace``)."""
    rel = rel or dst.name
    _hit(inj, f"before:rename:{rel}")
    os.replace(src, dst)
    _hit(inj, f"after:rename:{rel}")


def fsync_dir(
    path: pathlib.Path,
    inj: StoreFaultInjector | None = None,
    rel: str = "",
) -> None:
    """fsync a directory so its entry renames/creations are durable."""
    rel = rel or path.name
    _hit(inj, f"before:fsyncdir:{rel}")
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
    store_fsyncs().labels(kind="dir").inc()
    _hit(inj, f"after:fsyncdir:{rel}")


def remove_entry(
    path: pathlib.Path,
    inj: StoreFaultInjector | None = None,
    rel: str = "",
) -> None:
    """Remove a stale file or directory tree (idempotent)."""
    rel = rel or path.name
    _hit(inj, f"before:remove:{rel}")
    if path.is_dir():
        shutil.rmtree(path, ignore_errors=True)
    else:
        try:
            path.unlink()
        except FileNotFoundError:
            pass
    _hit(inj, f"after:remove:{rel}")
