"""Crash-safe durable index store.

Atomic generational checkpoints, a checksummed manifest, a framed
document WAL with torn-tail recovery, an advisory writer lock, and a
deterministic crash-point fault-injection harness.  See
``docs/STORAGE.md`` for the on-disk format specification and
:mod:`repro.index.store.store` for the write/read protocols.

Nothing here is imported on the in-memory query path:
:mod:`repro.api` pulls this package in lazily, only when an engine is
saved to, loaded from, or opened on a directory.
"""

from repro.index.store.faults import SimulatedCrash, StoreFaultInjector
from repro.index.store.lock import LOCK_NAME, StoreLock
from repro.index.store.manifest import MANIFEST_NAME, Manifest
from repro.index.store.store import (
    ARRAYS_FILE,
    DOCS_FILE,
    GEN_PREFIX,
    META_FILE,
    TITLES_FILE,
    WAL_NAME,
    IndexStore,
    engine_payload,
    pinned_generations,
)

__all__ = [
    "IndexStore",
    "engine_payload",
    "pinned_generations",
    "Manifest",
    "StoreLock",
    "StoreFaultInjector",
    "SimulatedCrash",
    "MANIFEST_NAME",
    "LOCK_NAME",
    "WAL_NAME",
    "GEN_PREFIX",
    "META_FILE",
    "ARRAYS_FILE",
    "DOCS_FILE",
    "TITLES_FILE",
]
