"""The crash-safe generational index store.

On-disk layout (format 2)::

    store_dir/
      MANIFEST            # self-checksummed pointer: generation, digests,
                          # WAL replay watermark (atomic-rename swapped)
      LOCK                # advisory writer lock (transient)
      wal.jsonl           # framed document WAL (see repro.index.store.wal)
      gen-000001/         # stale generation, removed by GC
      gen-000002/         # current generation (named by MANIFEST)
        meta.json         # index metadata (repro.index.io v1 codec)
        postings.npz      # index arrays
        documents.jsonl   # analyzed collection (one JSON object per line)
        titles.json       # document titles (CLI display)

Write protocol (:meth:`IndexStore.checkpoint`): materialize every file
of the next generation inside ``gen-N.tmp/`` (fsync each), fsync the
temp directory, rename it to ``gen-N``, fsync the store directory, then
write ``MANIFEST.tmp`` and atomically rename it over ``MANIFEST``.  The
manifest rename is the *only* step with externally visible effect, so a
crash at any point leaves either the previous manifest (pointing at the
intact previous generation plus a still-valid WAL) or the new one —
never a blend.  After the swap the WAL is reset and stale generations
are garbage-collected; both steps are crash-safe because replay skips
records below the manifest's ``doc_count`` watermark and GC is re-run on
every open.

Read protocol: verify the manifest's self-checksum, then verify the
SHA-256 of every referenced file before decoding anything.  Any
mismatch, missing file, or structural inconsistency raises
:class:`repro.errors.IndexCorruptionError` naming the damaged path.
"""

from __future__ import annotations

import pathlib
import threading

from repro.errors import IndexCorruptionError, IndexError_
from repro.index.index import Index
from repro.index.io import (
    FORMAT_VERSION,
    arrays_from_bytes,
    arrays_to_bytes,
    assemble_index,
    check_invariants,
    flatten_index,
    meta_from_bytes,
    meta_to_bytes,
)
from repro.index.store import fsio, wal
from repro.index.store.faults import StoreFaultInjector
from repro.index.store.lock import LOCK_NAME, StoreLock
from repro.index.store.manifest import (
    MANIFEST_NAME,
    Manifest,
    decode_manifest,
    encode_manifest,
    sha256_hex,
)
from repro.obs.metrics import (
    checkpoint_seconds,
    corruption_detected,
    store_checkpoints,
)


def _corruption(*args, **kwargs) -> IndexCorruptionError:
    """Count the detection, then build the error (every corruption the
    store finds passes through here so the metrics registry sees it)."""
    corruption_detected().child().inc()
    return IndexCorruptionError(*args, **kwargs)


GEN_PREFIX = "gen-"
WAL_NAME = "wal.jsonl"

# -- generation pins --------------------------------------------------------
#
# The async query service keeps readers on an immutable generation while
# a writer checkpoints the next one; GC must not delete a generation a
# live reader still references.  Pins are refcounts keyed by (resolved
# store path, generation name) in a process-wide registry, so the
# reader-side and writer-side IndexStore instances — distinct objects on
# the same directory — see one another's pins.  A crashed process takes
# its pins with it, which is safe: GC re-runs on every open and the
# pinned generation was only protection for *in-process* readers.

_PINS: dict[tuple[str, str], int] = {}
_PINS_LOCK = threading.Lock()


def _pin_key(path: pathlib.Path, generation: str) -> tuple[str, str]:
    return (str(path.resolve()), generation)


def pinned_generations(path: pathlib.Path) -> set[str]:
    """Generation names currently pinned under ``path`` (refcount > 0)."""
    resolved = str(path.resolve())
    with _PINS_LOCK:
        return {gen for (p, gen), n in _PINS.items() if p == resolved and n > 0}

META_FILE = "meta.json"
ARRAYS_FILE = "postings.npz"
DOCS_FILE = "documents.jsonl"
TITLES_FILE = "titles.json"


class IndexStore:
    """One durable store directory: generations, manifest, WAL, lock."""

    def __init__(
        self,
        directory: str | pathlib.Path,
        faults: StoreFaultInjector | None = None,
    ):
        self.path = pathlib.Path(directory)
        self.faults = faults
        self.manifest: Manifest | None = None

    # -- opening -----------------------------------------------------------

    @staticmethod
    def is_store(directory: str | pathlib.Path) -> bool:
        """True when ``directory`` holds a format-2 store."""
        return (pathlib.Path(directory) / MANIFEST_NAME).exists()

    @classmethod
    def open(
        cls,
        directory: str | pathlib.Path,
        faults: StoreFaultInjector | None = None,
    ) -> "IndexStore":
        """Open an existing store (manifest required and verified)."""
        store = cls(directory, faults=faults)
        store.read_manifest()
        return store

    def read_manifest(self) -> Manifest:
        manifest_path = self.path / MANIFEST_NAME
        try:
            data = manifest_path.read_bytes()
        except FileNotFoundError:
            raise IndexError_(f"no saved index under {self.path}") from None
        self.manifest = decode_manifest(data, source=str(manifest_path))
        return self.manifest

    def _require_manifest(self) -> Manifest:
        if self.manifest is None:
            self.read_manifest()
        return self.manifest

    # -- reading -----------------------------------------------------------

    @property
    def generation_dir(self) -> pathlib.Path:
        return self.path / self._require_manifest().generation

    @property
    def wal_path(self) -> pathlib.Path:
        return self.path / self._require_manifest().wal

    def has_file(self, name: str) -> bool:
        return name in self._require_manifest().files

    def read_file(self, name: str) -> bytes:
        """Read one generation file, verifying its recorded digest."""
        manifest = self._require_manifest()
        file_path = self.generation_dir / name
        entry = manifest.files.get(name)
        if entry is None:
            raise _corruption(
                "file is not listed in the manifest", path=str(file_path)
            )
        try:
            data = file_path.read_bytes()
        except FileNotFoundError:
            raise _corruption(
                "generation file named by the manifest is missing",
                path=str(file_path),
            ) from None
        if sha256_hex(data) != entry["sha256"]:
            raise _corruption(
                "checksum mismatch (expected sha256 "
                f"{entry['sha256'][:12]}..., file has "
                f"{sha256_hex(data)[:12]}...)",
                path=str(file_path),
            )
        return data

    def read_all_verified(self) -> dict[str, bytes]:
        """Read and checksum-verify every file the manifest lists."""
        return {name: self.read_file(name)
                for name in sorted(self._require_manifest().files)}

    def load_index(self, blobs: dict[str, bytes] | None = None) -> Index:
        """Decode the current generation's index (verified)."""
        if blobs is None:
            blobs = {
                META_FILE: self.read_file(META_FILE),
                ARRAYS_FILE: self.read_file(ARRAYS_FILE),
            }
        meta_source = str(self.generation_dir / META_FILE)
        arrays_source = str(self.generation_dir / ARRAYS_FILE)
        meta = meta_from_bytes(blobs[META_FILE], source=meta_source)
        version = meta.get("version")
        if version != FORMAT_VERSION:
            raise IndexError_(
                f"unsupported index format version {version!r} "
                f"(expected {FORMAT_VERSION})"
            )
        arrays = arrays_from_bytes(blobs[ARRAYS_FILE], source=arrays_source)
        return assemble_index(meta, arrays, source=arrays_source)

    # -- WAL ---------------------------------------------------------------

    def wal_records(self) -> list[dict]:
        """Complete WAL records past the checkpoint watermark, in order.

        A torn tail is ignored (the write it belonged to never
        completed); corruption raises.  Records already incorporated in
        the current generation (``seq < doc_count``) are skipped, which
        is what makes a crash between manifest swap and WAL reset
        harmless.
        """
        manifest = self._require_manifest()
        records, _valid, _total = wal.read_wal(self.wal_path)
        live = [r for r in records if r.get("seq", 0) >= manifest.doc_count]
        expected = manifest.doc_count
        for record in live:
            if record.get("seq") != expected:
                raise _corruption(
                    f"WAL sequence gap: expected seq {expected}, found "
                    f"{record.get('seq')!r}",
                    path=str(self.wal_path),
                )
            expected += 1
        return live

    def repair_wal(self) -> int:
        """Truncate a torn trailing record; returns bytes removed."""
        return wal.repair_torn_tail(
            self.wal_path, inj=self.faults, rel=self._require_manifest().wal
        )

    def append_wal(self, record: dict) -> None:
        """Durably append one document record to the WAL."""
        manifest = self._require_manifest()
        wal.append_record(
            self.wal_path, record, inj=self.faults, rel=manifest.wal
        )

    # -- checkpointing -----------------------------------------------------

    def checkpoint(self, files: dict[str, bytes], doc_count: int) -> str:
        """Atomically install a new generation holding ``files``.

        Returns the new generation name.  Crash-safe at every step: the
        previous state stays loadable until the manifest rename, the new
        one after it.
        """
        with checkpoint_seconds().child().time():
            gen = self._checkpoint(files, doc_count)
        store_checkpoints().child().inc()
        return gen

    def _checkpoint(self, files: dict[str, bytes], doc_count: int) -> str:
        inj = self.faults
        current = self.manifest.generation_number if self.manifest else 0
        gen = f"{GEN_PREFIX}{current + 1:06d}"
        self.path.mkdir(parents=True, exist_ok=True)
        tmp = self.path / f"{gen}.tmp"
        # Leftovers of a previous crashed checkpoint: the temp dir, or a
        # fully-renamed generation no manifest ever came to reference.
        # Removing them precedes any of this checkpoint's writes, so it
        # is not itself a crash point.
        if tmp.exists():
            fsio.remove_entry(tmp, rel=f"{gen}.tmp")
        if (self.path / gen).exists():
            fsio.remove_entry(self.path / gen, rel=gen)
        tmp.mkdir()

        digests: dict[str, dict] = {}
        for name in sorted(files):
            data = files[name]
            fsio.write_file(tmp / name, data, inj=inj, rel=f"{gen}/{name}")
            digests[name] = {"sha256": sha256_hex(data), "size": len(data)}
        fsio.fsync_dir(tmp, inj=inj, rel=f"{gen}.tmp")
        fsio.atomic_rename(tmp, self.path / gen, inj=inj, rel=gen)
        fsio.fsync_dir(self.path, inj=inj, rel=".")

        manifest = Manifest(
            generation=gen,
            doc_count=doc_count,
            files=digests,
            wal=self.manifest.wal if self.manifest else WAL_NAME,
        )
        manifest_tmp = self.path / (MANIFEST_NAME + ".tmp")
        fsio.write_file(
            manifest_tmp, encode_manifest(manifest), inj=inj,
            rel=MANIFEST_NAME + ".tmp",
        )
        fsio.atomic_rename(
            manifest_tmp, self.path / MANIFEST_NAME, inj=inj,
            rel=MANIFEST_NAME,
        )
        fsio.fsync_dir(self.path, inj=inj, rel=".")
        self.manifest = manifest

        # The swap is done: everything below is cleanup that recovery
        # re-does on open, so a crash here loses nothing.
        wal_file = self.wal_path
        if wal_file.exists():
            fsio.truncate_file(wal_file, 0, inj=inj, rel=manifest.wal)
        self.gc()
        return gen

    # -- generation pinning ------------------------------------------------

    def pin_generation(self, generation: str | None = None) -> str:
        """Pin a generation against GC; returns the pinned name.

        Defaults to the manifest's current generation.  Pins nest
        (refcounted) and are process-wide, so a reader pinning through
        one :class:`IndexStore` instance protects the generation from a
        writer GC'ing through another instance on the same directory.
        """
        if generation is None:
            generation = self._require_manifest().generation
        with _PINS_LOCK:
            key = _pin_key(self.path, generation)
            _PINS[key] = _PINS.get(key, 0) + 1
        return generation

    def release_generation(self, generation: str) -> None:
        """Drop one pin on ``generation`` (no-op when not pinned)."""
        with _PINS_LOCK:
            key = _pin_key(self.path, generation)
            count = _PINS.get(key, 0)
            if count <= 1:
                _PINS.pop(key, None)
            else:
                _PINS[key] = count - 1

    def gc(self) -> list[str]:
        """Remove generations and temp files the manifest doesn't name.

        Pinned generations (live in-process readers) are kept even when
        the manifest has moved past them; they are collected by the next
        GC after the last pin is released.
        """
        manifest = self._require_manifest()
        keep = {manifest.generation, manifest.wal, MANIFEST_NAME, LOCK_NAME}
        keep |= pinned_generations(self.path)
        removed = []
        for entry in sorted(self.path.iterdir()):
            name = entry.name
            if name in keep:
                continue
            if name.startswith(GEN_PREFIX) or name == MANIFEST_NAME + ".tmp":
                fsio.remove_entry(entry, inj=self.faults, rel=name)
                removed.append(name)
        return removed

    # -- verification ------------------------------------------------------

    def verify(self) -> dict:
        """Full integrity audit; raises on any damage, returns a report.

        Checks the manifest self-checksum, every generation file's
        SHA-256 and size, the index structural invariants, and every
        complete WAL frame.  A torn WAL tail is reported, not an error —
        it is the expected residue of a crash mid-append.
        """
        manifest = self.read_manifest()
        blobs = self.read_all_verified()
        for name, data in blobs.items():
            if len(data) != manifest.files[name].get("size", len(data)):
                raise _corruption(
                    "size mismatch against manifest",
                    path=str(self.generation_dir / name),
                )
        if META_FILE in blobs and ARRAYS_FILE in blobs:
            arrays_source = str(self.generation_dir / ARRAYS_FILE)
            meta = meta_from_bytes(
                blobs[META_FILE], source=str(self.generation_dir / META_FILE)
            )
            arrays = arrays_from_bytes(blobs[ARRAYS_FILE],
                                       source=arrays_source)
            check_invariants(meta, arrays, source=arrays_source)
        records, valid, total = wal.read_wal(self.wal_path)
        live = self.wal_records()
        return {
            "generation": manifest.generation,
            "doc_count": manifest.doc_count,
            "files": {name: len(data) for name, data in blobs.items()},
            "wal_records": len(records),
            "wal_pending": len(live),
            "wal_torn_bytes": total - valid,
        }

    # -- locking -----------------------------------------------------------

    def lock(self) -> StoreLock:
        """A writer lock for this store directory (not yet acquired)."""
        self.path.mkdir(parents=True, exist_ok=True)
        return StoreLock(self.path)


def engine_payload(index, collection) -> dict[str, bytes]:
    """Serialize an engine's state as checkpoint files."""
    import json

    from repro.corpus.io import collection_to_bytes

    meta, arrays = flatten_index(index)
    titles = json.dumps([doc.title for doc in collection]).encode("utf-8")
    return {
        META_FILE: meta_to_bytes(meta),
        ARRAYS_FILE: arrays_to_bytes(arrays),
        DOCS_FILE: collection_to_bytes(collection),
        TITLES_FILE: titles,
    }
