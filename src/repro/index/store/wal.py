"""Write-ahead log of document additions: framed, checksummed, recoverable.

Documents added to an engine opened on a store must survive a crash
*before* the next checkpoint.  Each :meth:`repro.SearchEngine.add`
appends one framed record to ``wal.jsonl`` and fsyncs it; recovery
replays the log on open.

Frame layout (one record)::

    pcrc(8 hex) plen(8 hex) hcrc(8 hex) payload(plen bytes) '\\n'

* ``payload`` — the record as compact JSON (no raw newlines, so a frame
  never contains ``'\\n'`` except its terminator);
* ``plen`` — payload length in bytes; ``pcrc`` — CRC-32 of the payload;
* ``hcrc`` — CRC-32 of the first 16 header characters, guarding the
  length field itself.

The header checksum is what makes *torn write* and *corruption*
distinguishable, byte for byte:

* A torn write persists a strict **prefix** of the intended bytes, so
  the tail is an incomplete frame: fewer than 24 header bytes, or a
  valid header whose payload/terminator bytes ran out.  Recovery
  truncates it silently (:func:`scan_wal` reports the valid prefix
  length).
* A flipped byte never removes bytes, so the frame is *complete* but
  fails a checksum (or its terminator is wrong) — that is corruption
  and raises :class:`repro.errors.IndexCorruptionError` naming the
  file.  Without ``hcrc``, a flip inside the length field could
  masquerade as a torn tail and be silently dropped.

Records carry a ``seq`` field equal to the document id they create.
Replay skips records with ``seq < manifest.doc_count``: those documents
are already inside the current checkpoint generation, which makes the
post-checkpoint WAL reset safe to crash around (a stale log is merely
skipped, never double-applied).
"""

from __future__ import annotations

import json
import pathlib
import zlib

from repro.errors import IndexCorruptionError
from repro.index.store import fsio
from repro.index.store.faults import StoreFaultInjector
from repro.obs.metrics import corruption_detected, wal_appends

_HEADER_LEN = 24


def encode_record(record: dict) -> bytes:
    """Frame one record for appending."""
    payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
    core = f"{zlib.crc32(payload):08x}{len(payload):08x}"
    hcrc = f"{zlib.crc32(core.encode('ascii')):08x}"
    return core.encode("ascii") + hcrc.encode("ascii") + payload + b"\n"


def scan_wal(data: bytes, source: str) -> tuple[list[dict], int]:
    """Parse a WAL byte stream.

    Returns ``(records, valid_length)`` where ``valid_length`` is the
    byte offset of the last complete, verified frame — shorter than
    ``len(data)`` exactly when the log ends in a torn tail the caller
    should truncate.  A complete frame that fails verification raises
    :class:`IndexCorruptionError` naming ``source``.
    """

    def bad(detail: str, pos: int) -> IndexCorruptionError:
        corruption_detected().child().inc()
        return IndexCorruptionError(
            f"corrupt WAL record at byte {pos}: {detail}", path=source
        )

    records: list[dict] = []
    pos = 0
    n = len(data)
    while pos < n:
        if n - pos < _HEADER_LEN:
            break  # torn: header bytes ran out
        header = data[pos:pos + _HEADER_LEN]
        core, hcrc_hex = header[:16], header[16:24]
        try:
            declared_hcrc = int(hcrc_hex, 16)
        except ValueError as exc:
            raise bad(f"malformed header checksum {hcrc_hex!r}", pos) from exc
        if zlib.crc32(core) != declared_hcrc:
            raise bad("header checksum mismatch", pos)
        # hcrc matched, so the length/payload-crc fields are as written.
        pcrc = int(core[:8], 16)
        plen = int(core[8:16], 16)
        if n - pos - _HEADER_LEN < plen + 1:
            break  # torn: payload or terminator ran out
        payload = data[pos + _HEADER_LEN:pos + _HEADER_LEN + plen]
        terminator = data[pos + _HEADER_LEN + plen:pos + _HEADER_LEN + plen + 1]
        if zlib.crc32(payload) != pcrc:
            raise bad("payload checksum mismatch", pos)
        if terminator != b"\n":
            raise bad("missing record terminator", pos)
        try:
            record = json.loads(payload)
        except ValueError as exc:
            raise bad(f"checksummed payload is not JSON: {exc}", pos) from exc
        if not isinstance(record, dict):
            raise bad("record payload is not a JSON object", pos)
        records.append(record)
        pos += _HEADER_LEN + plen + 1
    return records, pos


def read_wal(path: pathlib.Path) -> tuple[list[dict], int, int]:
    """Read ``path``; returns ``(records, valid_length, total_length)``.

    A missing file is an empty log.  Corruption (as opposed to a torn
    tail) raises :class:`IndexCorruptionError`.
    """
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return [], 0, 0
    records, valid = scan_wal(data, source=str(path))
    return records, valid, len(data)


def append_record(
    path: pathlib.Path,
    record: dict,
    inj: StoreFaultInjector | None = None,
    rel: str = "",
) -> None:
    """Durably append one framed record."""
    fsio.append_frame(path, encode_record(record), inj=inj, rel=rel)
    wal_appends().child().inc()


def repair_torn_tail(
    path: pathlib.Path,
    inj: StoreFaultInjector | None = None,
    rel: str = "",
) -> int:
    """Truncate a torn trailing record, returning bytes removed."""
    records, valid, total = read_wal(path)
    del records
    if valid < total:
        fsio.truncate_file(path, valid, inj=inj, rel=rel or path.name)
    return total - valid
