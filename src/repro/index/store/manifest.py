"""The MANIFEST: the store's single atomically-swapped source of truth.

A store directory is defined by its ``MANIFEST`` file.  It names the
current generation directory, records a SHA-256 digest (and size) for
every file inside that generation, the number of documents the
generation incorporates (the WAL replay watermark), and the WAL file
name.  Readers resolve the manifest first and then only ever touch files
it references — so a half-written next generation is invisible until the
one ``os.replace`` that installs a new manifest, and anything the
manifest does not reference is garbage by definition.

The manifest guards itself: its first line is the SHA-256 of the JSON
body that follows, verified on every read, so a flipped byte anywhere in
the file surfaces as :class:`repro.errors.IndexCorruptionError` rather
than as silently wrong pointers.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.errors import IndexCorruptionError, IndexError_

MANIFEST_NAME = "MANIFEST"
STORE_FORMAT = 2


def sha256_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


@dataclass
class Manifest:
    """Parsed manifest contents."""

    generation: str                      # e.g. "gen-000002"
    doc_count: int                       # documents inside the generation
    files: dict[str, dict] = field(default_factory=dict)
    # relpath within the generation dir -> {"sha256": hex, "size": bytes}
    wal: str = "wal.jsonl"
    format: int = STORE_FORMAT

    @property
    def generation_number(self) -> int:
        return int(self.generation.rsplit("-", 1)[1])


def encode_manifest(manifest: Manifest) -> bytes:
    body = json.dumps(
        {
            "format": manifest.format,
            "generation": manifest.generation,
            "doc_count": manifest.doc_count,
            "files": manifest.files,
            "wal": manifest.wal,
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    return sha256_hex(body).encode("ascii") + b"\n" + body


def decode_manifest(data: bytes, source: str) -> Manifest:
    """Parse and self-verify a manifest; raises on any damage."""
    newline = data.find(b"\n")
    if newline != 64:
        raise IndexCorruptionError(
            "manifest does not start with a 64-hex-digit checksum line",
            path=source,
        )
    declared, body = data[:64], data[65:]
    if sha256_hex(body).encode("ascii") != declared:
        raise IndexCorruptionError(
            "manifest self-checksum mismatch", path=source
        )
    try:
        obj = json.loads(body)
    except ValueError as exc:
        raise IndexCorruptionError(
            f"checksummed manifest body is not JSON: {exc}", path=source
        ) from exc
    fmt = obj.get("format")
    if fmt != STORE_FORMAT:
        raise IndexError_(
            f"unsupported store format {fmt!r} (expected {STORE_FORMAT})"
        )
    try:
        manifest = Manifest(
            generation=obj["generation"],
            doc_count=int(obj["doc_count"]),
            files=dict(obj["files"]),
            wal=obj.get("wal", "wal.jsonl"),
            format=fmt,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise IndexCorruptionError(
            f"manifest is missing required fields: {exc}", path=source
        ) from exc
    for name, entry in manifest.files.items():
        if not isinstance(entry, dict) or "sha256" not in entry:
            raise IndexCorruptionError(
                f"manifest entry for {name!r} lacks a sha256 digest",
                path=source,
            )
    return manifest
