"""Advisory single-writer lock for a store directory.

Two engines appending to one ``wal.jsonl`` — or racing a checkpoint
rename — would interleave silently; the lockfile turns that misuse into
a typed :class:`repro.errors.StoreLockedError` instead.  The lock is a
``LOCK`` file created with ``O_CREAT | O_EXCL`` (atomic on POSIX and
NTFS) containing ``pid@host``.  A lockfile whose pid is no longer alive
on the same host is stale (the previous writer crashed — the very event
this store is designed around) and is broken automatically.

Readers never take the lock: a reader resolves one manifest and only
touches files that manifest references, which a concurrent writer never
mutates in place.
"""

from __future__ import annotations

import os
import pathlib
import socket

from repro.errors import StoreLockedError

LOCK_NAME = "LOCK"


class StoreLock:
    """Holds the writer lock on a store directory."""

    def __init__(self, directory: str | pathlib.Path):
        self.path = pathlib.Path(directory) / LOCK_NAME
        self._held = False

    @property
    def held(self) -> bool:
        return self._held

    def acquire(self) -> "StoreLock":
        holder = f"{os.getpid()}@{socket.gethostname()}"
        for attempt in range(2):
            try:
                fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                current = self._read_holder()
                if attempt == 0 and self._is_stale(current):
                    try:
                        self.path.unlink()
                    except FileNotFoundError:
                        pass
                    continue
                raise StoreLockedError(
                    f"store {self.path.parent} is locked by another writer "
                    f"({current or 'unknown holder'}); close that engine or "
                    f"remove a stale {LOCK_NAME} file",
                    path=str(self.path),
                    holder=current,
                )
            try:
                os.write(fd, holder.encode("ascii"))
                os.fsync(fd)
            finally:
                os.close(fd)
            self._held = True
            return self
        raise AssertionError("unreachable")

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def _read_holder(self) -> str | None:
        try:
            return self.path.read_text(errors="replace").strip() or None
        except OSError:
            return None

    def _is_stale(self, holder: str | None) -> bool:
        """A same-host lock whose pid is gone was left by a crash."""
        if holder is None or "@" not in holder:
            return False
        pid_text, host = holder.split("@", 1)
        if host != socket.gethostname():
            return False
        try:
            pid = int(pid_text)
        except ValueError:
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        except PermissionError:
            return False  # alive, owned by someone else
        return False

    def __enter__(self) -> "StoreLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()
