"""Advisory single-writer lock for a store directory.

Two engines appending to one ``wal.jsonl`` — or racing a checkpoint
rename — would interleave silently; the lockfile turns that misuse into
a typed :class:`repro.errors.StoreLockedError` instead.  The lock is a
``LOCK`` file created with ``O_CREAT | O_EXCL`` (atomic on POSIX and
NTFS) containing ``pid@host``.  A lockfile whose pid is no longer alive
on the same host is stale (the previous writer crashed — the very event
this store is designed around) and is broken automatically.

Breaking a stale lock is itself a race: two openers that both observe
the dead pid and both ``unlink`` + ``create`` can interleave so that the
second opener's unlink removes the *first opener's fresh lock*, leaving
two live writers each convinced they hold it.  The break therefore goes
through an atomic ``rename`` of the stale lockfile to a per-breaker
claim name: exactly one racer wins the rename (the loser's rename
raises ``FileNotFoundError`` and it simply retries the normal create),
the winner re-verifies the claimed file still names the dead holder
before discarding it, and nobody ever unlinks a path another writer may
have re-created.

Acquisition also supports **bounded retry with backoff** for callers
(like the query service's writer supervisor) that race a just-released
or just-broken lock: ``acquire(retries=N)`` sleeps a jittered,
linearly growing backoff between attempts instead of failing on the
first collision.  The default remains fail-fast (``retries=0``) so
interactive misuse still reports immediately.

Readers never take the lock: a reader resolves one manifest and only
touches files that manifest references, which a concurrent writer never
mutates in place.
"""

from __future__ import annotations

import os
import pathlib
import socket
import time
from typing import Callable

from repro.errors import StoreLockedError

LOCK_NAME = "LOCK"


class StoreLock:
    """Holds the writer lock on a store directory."""

    def __init__(self, directory: str | pathlib.Path):
        self.path = pathlib.Path(directory) / LOCK_NAME
        self._held = False

    @property
    def held(self) -> bool:
        return self._held

    def acquire(
        self,
        retries: int = 0,
        backoff_s: float = 0.02,
        jitter_s: float = 0.02,
        sleep: Callable[[float], None] = time.sleep,
    ) -> "StoreLock":
        """Take the lock, breaking a stale one; raises when truly held.

        Args:
            retries: Extra acquisition rounds after the first; each
                round re-attempts the create (and the stale break).
            backoff_s: Base sleep between rounds, grown linearly.
            jitter_s: Uniform random extra sleep per round, so two
                retrying openers do not stay phase-locked.
            sleep: Injectable for deterministic tests.
        """
        holder = f"{os.getpid()}@{socket.gethostname()}"
        last_error: StoreLockedError | None = None
        for attempt in range(retries + 1):
            if attempt:
                sleep(backoff_s * attempt + jitter_s * _jitter())
            try:
                self._create(holder)
                return self
            except FileExistsError:
                pass
            current = self._read_holder()
            if self._is_stale(current) and self._break_stale(current):
                # The stale file is gone and only we removed it; take
                # the normal create path (another racer may still beat
                # us to it, which the retry loop absorbs).
                try:
                    self._create(holder)
                    return self
                except FileExistsError:
                    current = self._read_holder()
            last_error = StoreLockedError(
                f"store {self.path.parent} is locked by another writer "
                f"({current or 'unknown holder'}); close that engine or "
                f"remove a stale {LOCK_NAME} file",
                path=str(self.path),
                holder=current,
            )
        assert last_error is not None
        raise last_error

    def _create(self, holder: str) -> None:
        """Atomically create the lockfile naming us as holder."""
        fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        try:
            os.write(fd, holder.encode("ascii"))
            os.fsync(fd)
        finally:
            os.close(fd)
        self._held = True

    def _break_stale(self, expected_holder: str | None) -> bool:
        """Atomically claim and discard a stale lockfile.

        Returns True when *this* process removed the stale lock.  The
        rename is the arbitration point: among N simultaneous breakers
        exactly one succeeds, and a lockfile freshly created by a racer
        is never unlinked blindly — if the claimed file's content no
        longer matches the holder we judged dead (a racer broke and
        re-created it between our read and our rename), we restore it
        via an atomic ``link`` and report failure.
        """
        claim = self.path.with_name(
            f"{LOCK_NAME}.break.{os.getpid()}.{time.monotonic_ns()}"
        )
        try:
            os.rename(self.path, claim)
        except OSError:
            return False  # someone else already claimed or removed it
        try:
            claimed_holder = claim.read_text(errors="replace").strip() or None
        except OSError:
            claimed_holder = None
        if claimed_holder == expected_holder or self._is_stale(claimed_holder):
            claim.unlink(missing_ok=True)
            return True
        # Pathological: we renamed away a *live* lock created between our
        # staleness check and the rename.  Put it back atomically; if a
        # new lockfile already exists the restore loses and the claimed
        # file is surfaced for manual cleanup via the raised error path.
        try:
            os.link(claim, self.path)
            claim.unlink(missing_ok=True)
        except OSError:
            pass
        return False

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def _read_holder(self) -> str | None:
        try:
            return self.path.read_text(errors="replace").strip() or None
        except OSError:
            return None

    def _is_stale(self, holder: str | None) -> bool:
        """A same-host lock whose pid is gone was left by a crash."""
        if holder is None or "@" not in holder:
            return False
        pid_text, host = holder.split("@", 1)
        if host != socket.gethostname():
            return False
        try:
            pid = int(pid_text)
        except ValueError:
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        except PermissionError:
            return False  # alive, owned by someone else
        return False

    def __enter__(self) -> "StoreLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()


def _jitter() -> float:
    """Uniform [0, 1) from the clock's sub-millisecond noise — enough to
    de-phase two retrying openers without importing ``random``."""
    return (time.monotonic_ns() % 1_000_000) / 1_000_000.0
