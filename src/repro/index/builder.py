"""Index construction from a document collection."""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.corpus.collection import DocumentCollection
from repro.index.index import Index
from repro.index.postings import PositionPostings
from repro.index.stats import CollectionStats


class IndexBuilder:
    """Single-pass, in-memory index builder.

    Documents must arrive in ascending id order (guaranteed when building
    from a :class:`DocumentCollection`), which keeps postings doc-sorted
    without a final sort.
    """

    def __init__(self):
        self._by_term: dict[str, dict[int, list[int]]] = defaultdict(dict)
        self._doc_lengths: list[int] = []
        self._sentence_starts: list[tuple[int, ...]] = []

    def add_document(
        self,
        doc_id: int,
        tokens: tuple[str, ...],
        sentence_starts: tuple[int, ...] = (),
    ) -> None:
        if doc_id != len(self._doc_lengths):
            raise ValueError(
                f"documents must be added in dense id order; expected "
                f"{len(self._doc_lengths)}, got {doc_id}"
            )
        self._doc_lengths.append(len(tokens))
        self._sentence_starts.append(tuple(sentence_starts))
        by_term = self._by_term
        for offset, term in enumerate(tokens):
            docs = by_term[term]
            if doc_id in docs:
                docs[doc_id].append(offset)
            else:
                docs[doc_id] = [offset]

    def build(self) -> Index:
        terms = {
            term: PositionPostings.from_dict(by_doc)
            for term, by_doc in self._by_term.items()
        }
        stats = CollectionStats(np.asarray(self._doc_lengths, dtype=np.int64))
        return Index(terms, stats, sentence_starts=self._sentence_starts)


def build_index(collection: DocumentCollection) -> Index:
    """Build an :class:`Index` over every document in ``collection``."""
    builder = IndexBuilder()
    for doc in collection:
        builder.add_document(doc.doc_id, doc.tokens, doc.sentence_starts)
    return builder.build()


def build_packed_index(collection: DocumentCollection):
    """Build the collection's index directly in packed form.

    Convenience for callers that only ever read (benchmarks, worker
    smoke tests): builds the object index once, serializes it through
    :func:`repro.index.packed.pack_index`, and returns the
    :class:`repro.index.packed.PackedIndex` decoding view over the
    blob.  The engine itself packs lazily via its own cache instead.
    """
    from repro.index.packed import PackedIndex, pack_index

    return PackedIndex(pack_index(build_index(collection)))
