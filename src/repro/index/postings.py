"""Postings lists: the physical storage behind index scans.

A term's postings map each document containing the term to the ascending
list of offsets at which it occurs.  Document ids are kept in a sorted
NumPy array so that seeks (``skip pointers`` in IR terms, the enabler of
zig-zag joins) are ``O(log n)`` via binary search.
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np


class PositionPostings:
    """Postings for a single term in the term-position index.

    Attributes:
        doc_ids: Sorted ``int64`` array of documents containing the term.
        offsets: ``offsets[i]`` is the ascending tuple of positions of the
            term in ``doc_ids[i]``.

    Doc ids are held at most twice: the NumPy array (bulk searchsorted,
    shard slicing) and one lazy Python list that every cursor bisects —
    point lookups (:meth:`positions_in`) bisect the same list instead of
    keeping a third copy in a doc-to-entry dict.
    """

    __slots__ = (
        "doc_ids",
        "offsets",
        "_total_positions",
        "_doc_id_list",
    )

    def __init__(self, doc_ids: np.ndarray, offsets: list[tuple[int, ...]]):
        if len(doc_ids) != len(offsets):
            raise ValueError("doc_ids and offsets must be aligned")
        self.doc_ids = doc_ids
        self.offsets = offsets
        self._total_positions = sum(len(o) for o in offsets)
        self._doc_id_list: list[int] | None = None

    @property
    def doc_id_list(self) -> list[int]:
        """Doc ids as a plain list (lazy): scan cursors bisect this —
        per-call overhead of NumPy searchsorted dominates zig-zag seeks."""
        if self._doc_id_list is None:
            self._doc_id_list = self.doc_ids.tolist()
        return self._doc_id_list

    @property
    def doc_id_seq(self):
        """The bisectable doc-id sequence — the accessor scan cursors
        share with the packed substrate (:mod:`repro.index.packed`),
        where it is a zero-copy buffer view instead of a list."""
        return self.doc_id_list

    @classmethod
    def from_dict(cls, by_doc: dict[int, list[int]]) -> "PositionPostings":
        """Build from a {doc_id: [offsets]} mapping (used by the builder)."""
        docs = sorted(by_doc)
        doc_ids = np.asarray(docs, dtype=np.int64)
        offsets = [tuple(sorted(by_doc[d])) for d in docs]
        return cls(doc_ids, offsets)

    @classmethod
    def empty(cls) -> "PositionPostings":
        return cls(np.empty(0, dtype=np.int64), [])

    @property
    def document_frequency(self) -> int:
        """#DOCS in Figure 1: how many documents contain the term."""
        return len(self.doc_ids)

    @property
    def total_positions(self) -> int:
        """Total occurrences of the term across the collection."""
        return self._total_positions

    def entry_index_at_or_after(self, doc_id: int, lo: int = 0) -> int:
        """Index of the first postings entry with doc >= ``doc_id``.

        This is the skip-pointer seek used by zig-zag joins.  ``lo`` bounds
        the search to ``doc_ids[lo:]`` — cursors pass their current entry
        index so each seek is O(log tail), never re-searching entries the
        scan has already consumed.
        """
        if lo:
            return int(
                np.searchsorted(self.doc_ids[lo:], doc_id, side="left")
            ) + lo
        return int(np.searchsorted(self.doc_ids, doc_id, side="left"))

    def positions_in(self, doc_id: int) -> tuple[int, ...]:
        """Offsets of the term in ``doc_id`` (empty tuple if absent).

        O(log n) bisect over the shared doc-id list — the same structure
        the scan cursors seek on, so point lookups add no extra copy of
        the doc ids.
        """
        seq = self.doc_id_list
        i = bisect_left(seq, doc_id)
        if i < len(seq) and seq[i] == doc_id:
            return self.offsets[i]
        return ()

    def term_frequency(self, doc_id: int) -> int:
        """#INDOC in Figure 1: occurrences of the term in ``doc_id``."""
        return len(self.positions_in(doc_id))

    def __len__(self) -> int:
        return len(self.doc_ids)
