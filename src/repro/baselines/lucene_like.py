"""A rigid, Lucene-style search engine.

Architecture mirrors Lucene's: a fixed document-at-a-time plan — postings
intersection over sorted document-id lists (skip pointers realized as
binary-search intersection), per-document positional verification for
phrases and proximity groups, and one hard-coded scoring algorithm
(SumBest plus sloppy proximity weighting; Section 7: "excluding the
special handling of proximity predicates, the Lucene scoring scheme
coincides with SumBest").

There is no optimizer and no plug-in scoring — the engine *is* the plan.
That rigidity is the paper's foil: the GRAFT optimizer configured with the
Lucene scheme should produce comparable performance (Figure 4) while also
supporting every other scheme and predicate.
"""

from __future__ import annotations

from repro.baselines.rigid import (
    RigidCandidates,
    RigidQuery,
    best_proximity_slop,
    decompose_rigid,
    phrase_occurs,
)
from repro.index.index import Index
from repro.mcalc.ast import Query
from repro.sa.context import IndexScoringContext, ScoringContext
from repro.sa.weighting import bm25


class LuceneLikeEngine:
    """Rigid engine with hard-coded SumBest + sloppy-proximity scoring."""

    def __init__(self, index: Index, ctx: ScoringContext | None = None):
        self.index = index
        self.ctx = ctx if ctx is not None else IndexScoringContext(index)

    def search(self, query: Query, top_k: int | None = None) -> list[tuple[int, float]]:
        """Ranked (doc, score) results; raises UnsupportedQueryError for
        constructs outside Lucene's subset."""
        rigid = decompose_rigid(query)
        results = []
        for doc in RigidCandidates(self.index, rigid):
            score = self._score(rigid, doc)
            if score is not None:
                results.append((doc, score))
        results.sort(key=lambda r: (-r[1], r[0]))
        if top_k is not None:
            return results[:top_k]
        return results


    # -- scoring ---------------------------------------------------------------

    def _score(self, rigid: RigidQuery, doc: int) -> float | None:
        """SumBest + sloppy proximity; None when positional verification
        rejects the document."""
        ctx = self.ctx
        score = 0.0
        for term in rigid.terms:
            score += bm25(ctx, doc, term)
        for group in rigid.or_groups:
            for term in group:
                if self.index.term_frequency(doc, term):
                    score += bm25(ctx, doc, term)
        for phrase in rigid.phrases:
            positions = [self.index.postings(t).positions_in(doc) for t in phrase]
            if not phrase_occurs(positions):
                return None
            for term in phrase:
                score += bm25(ctx, doc, term)
        for words, max_distance in rigid.proximities:
            positions = [self.index.postings(t).positions_in(doc) for t in words]
            slop = best_proximity_slop(positions, max_distance)
            if slop is None:
                return None
            weight = 1.0 / (1.0 + slop)
            for term in words:
                score += bm25(ctx, doc, term) * weight
        return score
