"""Rigid-plan baseline engines, after Lucene and Terrier.

The paper's Figure 4 compares GRAFT against Lucene and Terrier — mature
IR engines with hard-coded plan generators and fixed scoring.  Running the
JVM originals here would measure Python-vs-Java, not flexible-vs-rigid
plan generation, so these baselines re-implement the rigid architecture on
the same index substrate: document-at-a-time postings intersection with
skip pointers, fixed scoring (Lucene's SumBest-plus-sloppy-proximity /
Terrier's AnySum), and support for exactly the predicate subset the
originals support (PHRASE and PROXIMITY; "Lucene and Terrier do not
support Q8 or Q10 because they do not support the WINDOW predicate").
"""

from repro.baselines.lucene_like import LuceneLikeEngine
from repro.baselines.rigid import RigidQuery, decompose_rigid
from repro.baselines.terrier_like import TerrierLikeEngine

__all__ = [
    "LuceneLikeEngine",
    "TerrierLikeEngine",
    "RigidQuery",
    "decompose_rigid",
]
