"""A rigid, Terrier-style search engine.

Terrier's DFR-family models are instances of the paper's AnySum scheme
(Section 7): every query keyword contributes its (document, keyword)
weight once, positions never matter beyond boolean verification, and the
number of matches is irrelevant.  The rigid plan is document-at-a-time
postings intersection with positional verification for the PHRASE and
PROXIMITY predicates Terrier supports.
"""

from __future__ import annotations

from repro.baselines.rigid import (
    RigidCandidates,
    RigidQuery,
    decompose_rigid,
    min_span,
    phrase_occurs,
)
from repro.index.index import Index
from repro.mcalc.ast import Query
from repro.sa.context import IndexScoringContext, ScoringContext
from repro.sa.weighting import bm25


class TerrierLikeEngine:
    """Rigid engine with hard-coded AnySum (DFR-style) scoring."""

    def __init__(self, index: Index, ctx: ScoringContext | None = None):
        self.index = index
        self.ctx = ctx if ctx is not None else IndexScoringContext(index)

    def search(self, query: Query, top_k: int | None = None) -> list[tuple[int, float]]:
        rigid = decompose_rigid(query)
        results = []
        for doc in RigidCandidates(self.index, rigid):
            if not self._verify(rigid, doc):
                continue
            # AnySum: the score of any one match — the sum over all query
            # keyword columns of the (doc, keyword) weight, present or not.
            score = sum(bm25(self.ctx, doc, kw) for kw in rigid.all_keywords())
            results.append((doc, score))
        results.sort(key=lambda r: (-r[1], r[0]))
        if top_k is not None:
            return results[:top_k]
        return results


    def _verify(self, rigid: RigidQuery, doc: int) -> bool:
        for phrase in rigid.phrases:
            positions = [self.index.postings(t).positions_in(doc) for t in phrase]
            if not phrase_occurs(positions):
                return False
        for words, max_distance in rigid.proximities:
            positions = [self.index.postings(t).positions_in(doc) for t in words]
            span = min_span(positions)
            if span is None or span > max_distance:
                return False
        return True
