"""Decomposition of queries into the rigid engines' fixed plan shapes.

Lucene- and Terrier-style engines do not interpret arbitrary MCalc; they
accept a flat conjunction of *elements*, each being a term, a disjunction
of terms, a quoted phrase, or a proximity group.  This module recognizes
that subset in a parsed :class:`repro.mcalc.ast.Query` and rejects
anything richer (WINDOW, nested boolean structure, negation, ...) with
:class:`repro.errors.UnsupportedQueryError` — exactly the expressiveness
gap Section 8 describes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import UnsupportedQueryError
from repro.mcalc.ast import And, Formula, Has, Or, Pred, Query


@dataclass
class RigidQuery:
    """A query in the shape rigid engines understand.

    Attributes:
        terms: Bare conjunct keywords.
        or_groups: Disjunctions of bare keywords.
        phrases: Quoted phrases (keyword sequences; adjacency required).
        proximities: ``(keywords, max_distance)`` proximity groups.
    """

    terms: list[str] = field(default_factory=list)
    or_groups: list[list[str]] = field(default_factory=list)
    phrases: list[list[str]] = field(default_factory=list)
    proximities: list[tuple[list[str], int]] = field(default_factory=list)

    def all_keywords(self) -> list[str]:
        """Every keyword mentioned, in query order (with repeats)."""
        out = list(self.terms)
        for group in self.or_groups:
            out.extend(group)
        for phrase in self.phrases:
            out.extend(phrase)
        for words, _ in self.proximities:
            out.extend(words)
        return out


def decompose_rigid(query: Query) -> RigidQuery:
    """Recognize ``query`` as a rigid-engine query or raise."""
    rigid = RigidQuery()
    formula = query.source_formula
    if isinstance(formula, And) and any(
        isinstance(op, Pred) for op in formula.operands
    ):
        # The whole query is a single phrase/proximity group.
        _classify_group(formula, rigid)
        return rigid
    operands = formula.operands if isinstance(formula, And) else (formula,)
    for op in operands:
        _classify(op, rigid)
    return rigid


def _classify(op: Formula, rigid: RigidQuery) -> None:
    if isinstance(op, Has):
        rigid.terms.append(op.keyword)
        return
    if isinstance(op, Or):
        group = []
        for inner in op.operands:
            if not isinstance(inner, Has):
                raise UnsupportedQueryError(
                    "rigid engines support disjunctions of bare keywords only"
                )
            group.append(inner.keyword)
        rigid.or_groups.append(group)
        return
    if isinstance(op, And):
        _classify_group(op, rigid)
        return
    raise UnsupportedQueryError(
        f"rigid engines do not support {type(op).__name__} here"
    )


def _classify_group(op: And, rigid: RigidQuery) -> None:
    """An And of HAS atoms plus either a DISTANCE-1 chain (phrase) or one
    PROXIMITY predicate."""
    keywords: dict[str, str] = {}
    order: list[str] = []
    preds: list[Pred] = []
    for inner in op.operands:
        if isinstance(inner, Has):
            keywords[inner.var] = inner.keyword
            order.append(inner.var)
        elif isinstance(inner, Pred):
            preds.append(inner)
        else:
            raise UnsupportedQueryError(
                "rigid engines support only flat phrase/proximity groups"
            )
    words = [keywords[v] for v in order]
    if preds and all(
        p.name == "DISTANCE" and p.constants == (1,) for p in preds
    ) and len(preds) == len(order) - 1:
        rigid.phrases.append(words)
        return
    if len(preds) == 1 and preds[0].name == "PROXIMITY":
        rigid.proximities.append((words, preds[0].constants[0]))
        return
    names = sorted({p.name for p in preds})
    raise UnsupportedQueryError(
        f"rigid engines do not support the {', '.join(names) or 'empty'} "
        "predicate combination (only PHRASE and PROXIMITY)"
    )


# ---------------------------------------------------------------------------
# Document-at-a-time candidate generation shared by the rigid engines.
# ---------------------------------------------------------------------------

class RigidCandidates:
    """Driver-probe candidate enumeration, as rigid engines do it.

    The rarest required term drives; every other element is probed per
    document (hash lookups into postings), and phrases / proximity groups
    are positionally verified.  This is the classic document-at-a-time
    discipline (conjunctive processing with skip pointers degenerates to
    exactly this when one list is much shorter than the rest).
    """

    def __init__(self, index, rigid: RigidQuery):
        self.index = index
        self.rigid = rigid
        # Required single terms: bare conjuncts plus all phrase/proximity
        # members (a document missing any of them cannot match).
        self.required = list(rigid.terms)
        for phrase in rigid.phrases:
            self.required.extend(phrase)
        for words, _ in rigid.proximities:
            self.required.extend(words)

    def __iter__(self):
        index = self.index
        rigid = self.rigid
        if self.required:
            driver_term = min(
                self.required, key=lambda t: index.document_frequency(t)
            )
            driver = index.postings(driver_term).doc_ids
        else:
            # Disjunction-only query: the union of the groups' doc lists.
            import numpy as np

            member_lists = [
                index.postings(t).doc_ids
                for group in rigid.or_groups
                for t in group
            ]
            if not member_lists:
                return
            driver = np.unique(np.concatenate(member_lists))

        postings = {
            term: index.postings(term)
            for term in set(self.required)
            | {t for g in rigid.or_groups for t in g}
        }
        required = [postings[t] for t in set(self.required)]
        groups = [
            [postings[t] for t in group] for group in rigid.or_groups
        ]
        for raw_doc in driver:
            doc = int(raw_doc)
            if any(not p.positions_in(doc) for p in required):
                continue
            ok = True
            for group in groups:
                if not any(p.positions_in(doc) for p in group):
                    ok = False
                    break
            if not ok:
                continue
            yield doc


# ---------------------------------------------------------------------------
# Positional verification shared by the rigid engines.
# ---------------------------------------------------------------------------

def phrase_occurs(position_lists: list[tuple[int, ...]]) -> bool:
    """Does the phrase occur (term i at start + i for some start)?"""
    if any(not p for p in position_lists):
        return False
    starts = set(position_lists[0])
    for i, positions in enumerate(position_lists[1:], start=1):
        starts &= {p - i for p in positions}
        if not starts:
            return False
    return True


def min_span(position_lists: list[tuple[int, ...]]) -> int | None:
    """Smallest window span (max - min) covering one position of each list.

    The classic k-way min-span sweep with a heap; None when some list is
    empty.
    """
    if any(not p for p in position_lists):
        return None
    iters = [iter(p) for p in position_lists]
    heap: list[tuple[int, int]] = []
    current_max = -1
    for i, it in enumerate(iters):
        v = next(it)
        heap.append((v, i))
        current_max = max(current_max, v)
    heapq.heapify(heap)
    best = None
    while True:
        v, i = heap[0]
        span = current_max - v
        if best is None or span < best:
            best = span
        nxt = next(iters[i], None)
        if nxt is None:
            return best
        heapq.heapreplace(heap, (nxt, i))
        current_max = max(current_max, nxt)


def best_proximity_slop(
    position_lists: list[tuple[int, ...]], max_distance: int
) -> int | None:
    """The minimum slop (span beyond the tightest possible arrangement) of
    any occurrence satisfying the proximity constraint, or None when the
    group never co-occurs within ``max_distance``."""
    span = min_span(position_lists)
    if span is None or span > max_distance:
        return None
    return max(0, span - (len(position_lists) - 1))
