"""Minimal dependency-free HTTP/1.1 framing over asyncio streams.

The service needs exactly enough HTTP to be scraped by Prometheus,
probed by an orchestrator, and queried by a load generator: request-line
plus headers plus an optional ``Content-Length`` body in; status-line
plus headers plus body out, with keep-alive.  Anything fancier
(chunked transfer, multipart, TLS) is out of scope and rejected with an
explicit status instead of being half-implemented.

Parsing is defensive by construction: header and body sizes are bounded
*before* allocation, a malformed request produces a 400 response rather
than an exception escaping the connection handler, and a clean EOF
between requests (the normal end of a keep-alive connection) is simply
``None``.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

from repro.errors import GraftError

#: Bounds chosen for an API service, not a browser target.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(GraftError):
    """A request that cannot be served; carries the HTTP status to emit."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    def param(self, name: str, default: str | None = None) -> str | None:
        return self.query.get(name, default)

    def header(self, name: str, default: str | None = None) -> str | None:
        """A header by case-insensitive name (parsing lowercases keys)."""
        return self.headers.get(name.lower(), default)

    def int_param(self, name: str, default: int) -> int:
        raw = self.query.get(name)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError:
            raise HttpError(
                400, f"query parameter {name!r} must be an integer, "
                     f"got {raw!r}"
            ) from None

    def float_param(self, name: str, default: float | None) -> float | None:
        raw = self.query.get(name)
        if raw is None:
            return default
        try:
            return float(raw)
        except ValueError:
            raise HttpError(
                400, f"query parameter {name!r} must be a number, got {raw!r}"
            ) from None

    def bool_param(self, name: str, default: bool) -> bool:
        raw = self.query.get(name)
        if raw is None:
            return default
        lowered = raw.strip().lower()
        if lowered in ("1", "true", "yes", "on"):
            return True
        if lowered in ("0", "false", "no", "off"):
            return False
        raise HttpError(
            400, f"query parameter {name!r} must be a boolean, got {raw!r}"
        )


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Read one request off the stream.

    Returns ``None`` on a clean EOF before any request bytes (the peer
    closed a keep-alive connection); raises :class:`HttpError` for
    malformed or oversized input, which the server turns into a 4xx
    response before closing.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise HttpError(413, "request head exceeds the header limit") from None
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "request head exceeds the header limit")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported protocol version {version!r}")

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(501, "chunked transfer encoding is not supported")

    body = b""
    raw_length = headers.get("content-length")
    if raw_length is not None:
        try:
            length = int(raw_length)
        except ValueError:
            raise HttpError(
                400, f"malformed Content-Length {raw_length!r}"
            ) from None
        if length < 0:
            raise HttpError(400, f"negative Content-Length {length}")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, "request body exceeds the body limit")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "request body shorter than its "
                                 "Content-Length") from None

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return Request(
        method=method.upper(),
        path=split.path or "/",
        query=query,
        headers=headers,
        body=body,
        version=version,
    )


def response_bytes(
    status: int,
    body: bytes = b"",
    *,
    content_type: str = "application/json",
    extra_headers: dict[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialize one complete HTTP/1.1 response."""
    reason = _REASONS.get(status, "Unknown")
    extra = dict(extra_headers or {})
    # An explicit Content-Type in extra_headers overrides the default
    # (e.g. text/plain for the Prometheus exposition endpoint).
    for name in list(extra):
        if name.lower() == "content-type":
            content_type = extra.pop(name)
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in extra.items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body
