"""Admission control, load shedding, and the circuit breaker.

A serving stack dies two ways under overload: the queue grows without
bound until every request times out (congestion collapse), or one
poisoned dependency turns every request into a slow failure.  This
module is the service's defense against both, built from the engine's
own primitives: per-request :class:`repro.exec.limits.QueryLimits`
deadlines become admission semantics, and the store's typed corruption
errors become circuit-breaker trip signals.

Three layers, applied in order to every query request:

1. **Load shedding** — when the number of requests *waiting* for an
   execution slot reaches the watermark, new arrivals are refused
   immediately with 503 and a jittered ``Retry-After`` hint.  Refusing
   work we cannot start before its deadline is cheaper for everyone
   than queueing it to die.
2. **Bounded admission** — at most ``max_inflight`` searches execute
   concurrently (an ``asyncio.Semaphore``); a waiter whose remaining
   deadline expires in the queue is answered 504 without ever touching
   the engine.
3. **Circuit breaking** — a store :class:`repro.errors.
   IndexCorruptionError` or audit :class:`repro.errors.
   ScoreConsistencyError` trips the breaker; while open, searches
   fail fast onto the degraded serial single-shard path (conservative,
   cache-free, known-good) instead of hammering the failing one.  After
   a cooldown one probe request retries the full path; success closes
   the breaker.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass

from repro.errors import ConfigError, GraftError
from repro.exec.limits import QueryLimits
from repro.obs.metrics import (
    REGISTRY,
    admission_timeouts,
    breaker_transitions,
    inflight_requests,
    queued_requests,
    requests_shed,
)


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the query service (validated at construction).

    Attributes:
        host/port: Listen address; port 0 binds an ephemeral port
            (the bound port is reported by :meth:`HttpServer.start`).
        max_inflight: Concurrent search executions (semaphore width).
            Sized to the executor: more inflight than worker threads
            just moves queueing somewhere less observable.
        max_queue: Admitted-but-waiting requests beyond which new
            arrivals are shed with 503 + ``Retry-After``.
        deadline_ms: Default per-request budget, queue wait included;
            the execution deadline handed to :class:`QueryLimits` is
            whatever remains after admission.  Clients may lower (never
            raise) it per request via ``?deadline_ms=``.
        max_rows: Optional row budget forwarded to every search.
        retry_after_s / retry_jitter_s: Backoff hint on shed responses:
            ``retry_after_s`` plus a uniform draw from
            ``[0, retry_jitter_s)``, so a thundering herd told to come
            back does not arrive in phase again.
        breaker_threshold: Consecutive trip-class failures that open
            the circuit breaker.
        breaker_cooldown_s: Open time before one probe request may try
            the full path again.
        drain_timeout_s: Graceful-shutdown budget for inflight requests
            before the server stops waiting.
        checkpoint_every: Auto-checkpoint (and hot-swap readers) after
            this many WAL-appended documents; 0 = only on demand via
            ``POST /admin/checkpoint``.
        shards: Shard count for reader engines (None = ``REPRO_SHARDS``
            or serial).
        executor: Parallel execution driver for reader engines:
            ``"serial"``, ``"thread"``, or ``"process"`` (worker
            processes over a shared-memory packed index;
            docs/PERFORMANCE.md).  None keeps the engine default
            (``REPRO_EXEC`` or thread).  Each reader generation owns
            its worker pool; the hot swap retires the pool with the
            generation once inflight requests drain.
        executor_workers: Search thread-pool width (default
            ``max_inflight``).
        telemetry: Request telemetry (correlation ids, phase spans,
            slow capture, ``/debug/requests``+``/debug/slow``).  On by
            default; off restores the bare-engine request path (no
            per-request objects are allocated at all).
        slow_capacity: How many worst-case wide events the slow-request
            capture retains (per rolling window).
        slow_window_s: Rolling window for the slow capture — events
            older than this are pruned, so an old incident cannot pin
            the ring.
        slow_min_wall_ms: Wide events faster than this are never
            captured (0 keeps the N worst regardless of speed).
        qlog_path: Attach a structured query log
            (:class:`repro.obs.qlog.QueryLog`) at this path to every
            reader engine the service loads; None disables.  Records
            carry the request id, making them joinable with
            ``/debug/slow``.
        qlog_sample_rate / qlog_slow_ms: The attached log's sampling
            rate and slow threshold (see :class:`QueryLog`).
        profile_endpoint: Enable ``GET /debug/profile?seconds=N`` (the
            stdlib sampling profiler).  Off by default: profiling is a
            whole-process operation, so it must be an explicit opt-in
            even on a bind-local service.
        profile_max_seconds: Upper bound on one profile request's
            sampling duration.
        slos: Declarative objectives for the SLO engine, as parsed spec
            strings (see :func:`repro.obs.slo.parse_slo_spec`, e.g.
            ``"latency:p99:50ms:0.99"``).  Empty disables the engine
            (and ``/debug/slo`` answers 503).
        slo_shed: When True, a fast-window burn-rate breach arms the
            admission controller's pressure mode (shed at half the
            queue watermark) until the breach clears — defend the
            latency objective by refusing marginal work early.
        spans: Enable the unified span exporter: every finished query
            request becomes one OTLP-shaped span tree, retrievable at
            ``/debug/trace/<request_id>``.  Requires telemetry.
        spans_path: Also append each exported trace to this rotating
            JSONL file (one payload per line); None keeps traces
            in-memory only.
        spans_capacity: How many traces the in-memory ring retains.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_inflight: int = 8
    max_queue: int = 16
    deadline_ms: float = 1000.0
    max_rows: int | None = None
    retry_after_s: float = 0.5
    retry_jitter_s: float = 0.5
    breaker_threshold: int = 1
    breaker_cooldown_s: float = 5.0
    drain_timeout_s: float = 5.0
    checkpoint_every: int = 0
    shards: int | None = None
    executor: str | None = None
    executor_workers: int | None = None
    telemetry: bool = True
    slow_capacity: int = 32
    slow_window_s: float = 600.0
    slow_min_wall_ms: float = 0.0
    qlog_path: str | None = None
    qlog_sample_rate: float = 1.0
    qlog_slow_ms: float | None = 100.0
    profile_endpoint: bool = False
    profile_max_seconds: float = 30.0
    slos: tuple[str, ...] = ()
    slo_shed: bool = False
    spans: bool = False
    spans_path: str | None = None
    spans_capacity: int = 256

    def __post_init__(self):
        for name, minimum in (
            ("max_inflight", 1),
            ("max_queue", 0),
            ("breaker_threshold", 1),
            ("checkpoint_every", 0),
            ("slow_capacity", 1),
            ("spans_capacity", 1),
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < minimum:
                raise ConfigError(
                    f"must be an integer >= {minimum}, got {value!r}",
                    option=name,
                )
        for name in ("deadline_ms", "breaker_cooldown_s", "drain_timeout_s",
                     "slow_window_s", "profile_max_seconds"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or value <= 0:
                raise ConfigError(
                    f"must be a positive number, got {value!r}", option=name
                )
        for name in ("retry_after_s", "retry_jitter_s"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or value < 0:
                raise ConfigError(
                    f"must be a non-negative number, got {value!r}",
                    option=name,
                )
        if self.max_rows is not None and (
            not isinstance(self.max_rows, int) or self.max_rows < 1
        ):
            raise ConfigError(
                f"must be a positive integer or None, got {self.max_rows!r}",
                option="max_rows",
            )
        if self.executor is not None:
            # Reuse the engine's validator so serve rejects exactly the
            # values SearchEngine(executor=...) would; it raises a
            # ConfigError already labeled option="executor".
            from repro.api import _resolve_executor

            _resolve_executor(self.executor)
        if self.executor_workers is not None and (
            not isinstance(self.executor_workers, int)
            or self.executor_workers < 1
        ):
            raise ConfigError(
                f"must be a positive integer or None, "
                f"got {self.executor_workers!r}",
                option="executor_workers",
            )
        if not isinstance(self.slow_min_wall_ms, (int, float)) \
                or self.slow_min_wall_ms < 0:
            raise ConfigError(
                f"must be a non-negative number, "
                f"got {self.slow_min_wall_ms!r}",
                option="slow_min_wall_ms",
            )
        if not (0.0 <= self.qlog_sample_rate <= 1.0):
            raise ConfigError(
                f"must be within [0, 1], got {self.qlog_sample_rate!r}",
                option="qlog_sample_rate",
            )
        if self.qlog_slow_ms is not None and (
            not isinstance(self.qlog_slow_ms, (int, float))
            or self.qlog_slow_ms <= 0
        ):
            raise ConfigError(
                f"must be a positive number or None, "
                f"got {self.qlog_slow_ms!r}",
                option="qlog_slow_ms",
            )
        for spec in self.slos:
            try:
                from repro.obs.slo import parse_slo_spec

                parse_slo_spec(spec)
            except GraftError as exc:
                raise ConfigError(str(exc), option="slos") from None
        if self.slo_shed and not self.slos:
            raise ConfigError(
                "slo_shed requires at least one objective in slos",
                option="slo_shed",
            )
        if (self.slos or self.spans) and not self.telemetry:
            raise ConfigError(
                "SLOs and span export need per-request telemetry; "
                "remove --no-telemetry",
                option="telemetry",
            )
        if self.spans_path is not None and not self.spans:
            raise ConfigError(
                "spans_path is set but span export is disabled",
                option="spans_path",
            )

    def limits(self, deadline_ms: float, partial: bool = True) -> QueryLimits:
        """Per-request execution limits for the remaining budget."""
        return QueryLimits(
            deadline_ms=max(deadline_ms, 0.001),
            max_rows=self.max_rows,
            on_limit="partial" if partial else "error",
        )


class ShedRequest(GraftError):
    """The admission queue is at its watermark; carries the backoff hint."""

    def __init__(self, message: str, retry_after_s: float):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class AdmissionTimeout(GraftError):
    """The request's deadline expired while waiting for an execution slot."""


class AdmissionController:
    """Bounded concurrency with watermark shedding.

    All counter mutations happen on the event loop thread, so plain
    integers are exact; the semaphore provides the actual waiting.
    Metrics gauges mirror the counters so ``/metrics`` exposes live
    queue depth and inflight count.
    """

    def __init__(
        self,
        max_inflight: int,
        max_queue: int,
        *,
        retry_after_s: float = 0.5,
        retry_jitter_s: float = 0.5,
        rng: random.Random | None = None,
        registry=REGISTRY,
    ):
        self._sem = asyncio.Semaphore(max_inflight)
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.inflight = 0
        self.queued = 0
        self.shed = 0
        self.admitted = 0
        self.timed_out = 0
        self._retry_after_s = retry_after_s
        self._retry_jitter_s = retry_jitter_s
        self._rng = rng if rng is not None else random.Random()
        self._registry = registry
        #: SLO-driven early shedding: while armed, the effective queue
        #: watermark is halved, so marginal work is refused while a
        #: latency objective is burning its budget too fast.
        self.pressure = False
        self.pressure_sheds = 0

    def set_pressure(self, armed: bool) -> None:
        """Arm/disarm early shedding (driven by the SLO engine)."""
        self.pressure = armed

    def effective_max_queue(self) -> int:
        if self.pressure:
            return self.max_queue // 2
        return self.max_queue

    def retry_after(self) -> float:
        """The jittered backoff hint for one shed response."""
        return self._retry_after_s + self._rng.uniform(
            0.0, self._retry_jitter_s
        )

    async def __aenter__(self):
        return await self.admit()

    async def __aexit__(self, *exc_info):
        self.exit()

    async def admit(self, timeout_s: float | None = None) -> float:
        """Wait for an execution slot; returns seconds spent queued.

        Raises :class:`ShedRequest` immediately at the queue watermark
        and :class:`AdmissionTimeout` when ``timeout_s`` elapses before
        a slot frees up.  On success the caller *must* pair with
        :meth:`exit` (or use the controller as an async context
        manager with the default timeout).
        """
        watermark = self.effective_max_queue()
        if self.queued >= watermark:
            self.shed += 1
            if self.pressure:
                self.pressure_sheds += 1
            requests_shed(self._registry).child().inc()
            detail = " [slo pressure]" if self.pressure else ""
            raise ShedRequest(
                f"admission queue at watermark ({self.queued} waiting, "
                f"{self.inflight} inflight){detail}",
                retry_after_s=self.retry_after(),
            )
        self.queued += 1
        queued_requests(self._registry).child().set(self.queued)
        started = time.monotonic()
        try:
            if timeout_s is None:
                await self._sem.acquire()
            else:
                await asyncio.wait_for(self._sem.acquire(), timeout_s)
        except (asyncio.TimeoutError, TimeoutError):
            self.timed_out += 1
            admission_timeouts(self._registry).child().inc()
            raise AdmissionTimeout(
                f"deadline expired after {time.monotonic() - started:.3f}s "
                f"in the admission queue"
            ) from None
        finally:
            self.queued -= 1
            queued_requests(self._registry).child().set(self.queued)
        self.inflight += 1
        self.admitted += 1
        inflight_requests(self._registry).child().set(self.inflight)
        return time.monotonic() - started

    def exit(self) -> None:
        """Release the slot taken by a successful :meth:`admit`."""
        self.inflight -= 1
        inflight_requests(self._registry).child().set(self.inflight)
        self._sem.release()


class CircuitBreaker:
    """Trip on consecutive integrity failures; recover via one probe.

    States: ``closed`` (normal), ``open`` (every request degraded until
    the cooldown elapses), ``half-open`` (one probe request runs the
    full path; its verdict closes or re-opens).  The service decides
    *what* degraded means — here lives only the state machine.
    """

    def __init__(
        self,
        threshold: int = 1,
        cooldown_s: float = 5.0,
        *,
        clock=time.monotonic,
        registry=REGISTRY,
    ):
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.state = "closed"
        self.trips = 0
        self._failures = 0
        self._opened_at: float | None = None
        self._clock = clock
        self._registry = registry

    def _enter(self, state: str) -> None:
        if state != self.state:
            self.state = state
            breaker_transitions(self._registry).labels(state=state).inc()

    def allow_full_path(self) -> bool:
        """Should this request run the normal (non-degraded) path?

        While open, returns False until the cooldown has elapsed; the
        first caller after cooldown becomes the half-open probe and gets
        True.  Exactly one probe runs at a time because the transition
        happens synchronously on the event loop.
        """
        if self.state == "closed":
            return True
        if self.state == "half-open":
            return False  # a probe is already in flight
        assert self._opened_at is not None
        if self._clock() - self._opened_at >= self.cooldown_s:
            self._enter("half-open")
            return True
        return False

    def record_success(self) -> None:
        self._failures = 0
        if self.state != "closed":
            self._enter("closed")
            self._opened_at = None

    def record_failure(self) -> None:
        self._failures += 1
        if self.state == "half-open" or self._failures >= self.threshold:
            self.trips += 1 if self.state != "open" else 0
            self._enter("open")
            self._opened_at = self._clock()
