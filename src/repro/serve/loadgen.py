"""A dependency-free asyncio load generator for the query service.

Drives a running :class:`repro.serve.server.HttpServer` over real
sockets with keep-alive connections, and reports what a load balancer
would care about: per-status counts, latency percentiles *of accepted
requests*, and the set of generations/epochs observed — the last one is
how the chaos tests assert that a mid-run hot swap never exposed a torn
generation (every response names exactly one valid generation).

Shed responses (503) are counted, not retried by default: the generator
measures the service's overload behavior rather than papering over it.
With ``respect_retry_after=True`` it honors the jittered backoff hint
instead, which is how a well-behaved client rides out a burst.

Every search carries a client-generated ``X-Request-Id``; the server
must echo it verbatim (and stamp it through its telemetry and query
log), so the report counts ``id_mismatches`` — any nonzero value means
correlation is broken end to end.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from dataclasses import dataclass, field

from repro.bench.workload import PAPER_QUERIES
# One percentile implementation for the whole stack: telemetry's
# sorted-interpolated version (also used by qlog stats and the SLO
# engine), re-exported here for the existing import surface.
from repro.obs.telemetry import percentile  # noqa: F401
from repro.serve.http import HttpError

#: The paper's workload (Q4..Q11) — same queries the benchmark runs, so
#: a loadgen pass over the bench fixture produces deterministic rows.
DEFAULT_QUERIES = tuple(PAPER_QUERIES.values())


@dataclass
class LoadgenReport:
    """What one load-generation run observed."""

    requests: int = 0
    ok: int = 0
    shed: int = 0
    timeouts: int = 0
    errors: int = 0
    rows: int = 0
    statuses: dict[int, int] = field(default_factory=dict)
    generations: set = field(default_factory=set)
    epochs: set = field(default_factory=set)
    degraded: int = 0
    latencies_ms: list[float] = field(default_factory=list)
    wall_s: float = 0.0
    id_mismatches: int = 0
    request_ids: set = field(default_factory=set)

    @property
    def p50_ms(self) -> float:
        return percentile(sorted(self.latencies_ms), 0.50)

    @property
    def p95_ms(self) -> float:
        return percentile(sorted(self.latencies_ms), 0.95)

    @property
    def p99_ms(self) -> float:
        return percentile(sorted(self.latencies_ms), 0.99)

    @property
    def qps(self) -> float:
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    def merge_response(self, status: int, payload: dict, elapsed_ms: float):
        self.requests += 1
        self.statuses[status] = self.statuses.get(status, 0) + 1
        if status == 200:
            self.ok += 1
            self.latencies_ms.append(elapsed_ms)
            self.rows += len(payload.get("results", ()))
            if payload.get("generation") is not None:
                self.generations.add(payload["generation"])
            if "epoch" in payload:
                self.epochs.add(payload["epoch"])
            if payload.get("degraded") or payload.get(
                "served_degraded_serial"
            ):
                self.degraded += 1
        elif status == 503:
            self.shed += 1
        elif status == 504:
            self.timeouts += 1
        else:
            self.errors += 1

    def summary(self) -> dict:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "shed": self.shed,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "rows": self.rows,
            "degraded": self.degraded,
            "generations": sorted(self.generations),
            "epochs": sorted(self.epochs),
            "id_mismatches": self.id_mismatches,
            "p50_ms": round(self.p50_ms, 3),
            "p95_ms": round(self.p95_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "qps": round(self.qps, 1),
            "wall_s": round(self.wall_s, 3),
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
        }


class _Client:
    """One keep-alive connection issuing GETs and parsing responses."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None

    async def connect(self) -> None:
        self.reader, self.writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except ConnectionError:
                pass
            self.reader = self.writer = None

    async def request(
        self,
        path: str,
        method: str = "GET",
        body: bytes = b"",
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict, dict[str, str]]:
        """Issue one request; reconnects once if the peer closed."""
        if self.writer is None:
            await self.connect()
        try:
            return await self._roundtrip(path, method, body, headers)
        except (ConnectionError, asyncio.IncompleteReadError, HttpError):
            await self.close()
            await self.connect()
            return await self._roundtrip(path, method, body, headers)

    async def _roundtrip(
        self,
        path: str,
        method: str,
        body: bytes,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict, dict[str, str]]:
        assert self.reader is not None and self.writer is not None
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (headers or {}).items()
        )
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: keep-alive\r\n\r\n"
        )
        self.writer.write(head.encode("latin-1") + body)
        await self.writer.drain()
        status_line = await self.reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.decode("latin-1").split(" ", 2)
        if len(parts) < 2:
            raise HttpError(502, f"malformed status line {status_line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = (await self.reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await self.reader.readexactly(length) if length else b""
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError:
            payload = {"raw": raw.decode("utf-8", "replace")}
        if not isinstance(payload, dict):
            payload = {"value": payload}
        return status, payload, headers


async def run_loadgen(
    host: str,
    port: int,
    *,
    requests: int = 200,
    concurrency: int = 8,
    queries: tuple[str, ...] = DEFAULT_QUERIES,
    scheme: str = "sumbest",
    top_k: int = 10,
    deadline_ms: float | None = None,
    respect_retry_after: bool = False,
    swap_at: int | None = None,
) -> LoadgenReport:
    """Round-robin ``requests`` searches over ``queries``.

    ``swap_at``: after that many responses have arrived, POST
    ``/admin/checkpoint`` once from a side connection — the mid-run hot
    swap of the CI smoke test.  ``respect_retry_after``: sleep out the
    server's backoff hint on 503 and retry the same request (it still
    counts the shed response).
    """
    from urllib.parse import quote

    report = LoadgenReport()
    next_index = 0
    swap_done = swap_at is None
    lock = asyncio.Lock()
    started = time.monotonic()

    async def maybe_swap() -> None:
        nonlocal swap_done
        if swap_done or report.requests < swap_at:
            return
        swap_done = True
        side = _Client(host, port)
        try:
            await side.request("/admin/checkpoint", method="POST")
        finally:
            await side.close()

    async def worker() -> None:
        nonlocal next_index
        client = _Client(host, port)
        await client.connect()
        try:
            while True:
                async with lock:
                    if next_index >= requests:
                        return
                    index = next_index
                    next_index += 1
                query = queries[index % len(queries)]
                path = (
                    f"/search?q={quote(query)}&scheme={scheme}"
                    f"&top_k={top_k}"
                )
                if deadline_ms is not None:
                    path += f"&deadline_ms={deadline_ms}"
                while True:
                    # A fresh client-side correlation id per attempt; the
                    # server must echo it back verbatim.
                    rid = f"lg-{index:08d}-{os.urandom(4).hex()}"
                    sent = time.monotonic()
                    status, payload, headers = await client.request(
                        path, headers={"X-Request-Id": rid}
                    )
                    elapsed_ms = (time.monotonic() - sent) * 1000.0
                    async with lock:
                        report.merge_response(status, payload, elapsed_ms)
                        report.request_ids.add(rid)
                        if headers.get("x-request-id") != rid:
                            report.id_mismatches += 1
                    await maybe_swap()
                    if status == 503 and respect_retry_after:
                        await asyncio.sleep(
                            float(headers.get("retry-after", "0.05"))
                        )
                        continue
                    break
        finally:
            await client.close()

    await asyncio.gather(*(worker() for _ in range(concurrency)))
    report.wall_s = time.monotonic() - started
    return report
