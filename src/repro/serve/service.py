"""The query service core: immutable readers, one writer, atomic swap.

The serving model is the store's generational design lifted into a
process (docs/SERVICE.md):

* **Readers** hold an engine loaded from one store generation (plus the
  WAL records durable at load time).  A loaded reader is immutable —
  searches never mutate it — so any number of concurrent searches can
  share it without coordination beyond the thread-safe query cache.
* **One writer** (a :meth:`repro.api.SearchEngine.open`\\ ed engine,
  holding the store's advisory lock) WAL-appends added documents and
  periodically compacts them into a new generation via
  :meth:`checkpoint`.
* **The swap** is the only moment the two meet: after a checkpoint the
  service loads a *new* reader from the new generation off the request
  path, pins that generation against store GC, and atomically replaces
  the current handle.  Requests already executing keep their pinned old
  handle until they finish (refcount), so no request ever observes a
  torn generation — each sees exactly one.  When the old handle's
  refcount drains, its store pin is released and the old generation
  becomes garbage.

The writer is *expendable* by design: if it dies mid-checkpoint (chaos
harness, real crash), readers keep serving the last durable generation
and :meth:`QueryService.revive_writer` reopens the store — which
repairs the WAL tail and collects the dead checkpoint's residue, the
same recovery path a process restart would take.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.api import SearchEngine, SearchOutcome
from repro.errors import (
    GraftError,
    IndexCorruptionError,
    QueryTimeoutError,
    ResourceExhaustedError,
    ScoreConsistencyError,
)
from repro.exec.cache import CacheConfig
from repro.obs import telemetry
from repro.obs.metrics import (
    REGISTRY,
    degraded_serial_requests,
    generation_swaps,
    swap_seconds,
)
from repro.obs.telemetry import TelemetryHub
from repro.serve.admission import (
    AdmissionController,
    AdmissionTimeout,
    CircuitBreaker,
    ServiceConfig,
    ShedRequest,
)
from repro.serve.http import HttpError


@dataclass
class GenerationHandle:
    """One immutable reader generation, refcounted by live requests.

    ``engine`` executes the configured (possibly sharded, cached) path;
    ``serial_engine`` shares the same collection and index but is pinned
    serial with caches off — the known-good fail-fast path the circuit
    breaker degrades to.  ``refs`` counts requests currently executing
    against this handle; a retired handle whose refs drain to zero
    releases its store-generation pin.
    """

    engine: SearchEngine
    serial_engine: SearchEngine
    generation: str | None
    refs: int = 0
    retired: bool = False
    release_pin: "callable | None" = field(default=None, repr=False)

    def drained(self) -> None:
        # Shut the engine's process worker pool (and shared-memory
        # segment) down with the generation: once the last pinned
        # request finishes, nothing can route a query at this handle
        # again, so keeping workers attached to the retired index would
        # only pin memory.  No-op for thread/serial engines.
        self.engine.close()
        if self.release_pin is not None:
            self.release_pin()
            self.release_pin = None


class _ReaderSet:
    """The current handle plus the pin/release/swap protocol.

    Guarded by a real lock, not event-loop discipline: searches release
    their pins from executor threads' completion callbacks in tests and
    benchmarks, so the invariants must hold under preemption.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.current: GenerationHandle | None = None
        self.epoch = 0
        self.swaps = 0

    def pin(self) -> tuple[GenerationHandle, int]:
        with self._lock:
            handle = self.current
            if handle is None:
                raise HttpError(503, "no reader generation loaded")
            handle.refs += 1
            return handle, self.epoch

    def release(self, handle: GenerationHandle) -> None:
        drained = False
        with self._lock:
            handle.refs -= 1
            drained = handle.retired and handle.refs == 0
        if drained:
            handle.drained()

    def swap(self, new: GenerationHandle) -> GenerationHandle | None:
        """Install ``new`` as current; returns the retired old handle."""
        drained = False
        with self._lock:
            old = self.current
            self.current = new
            self.epoch += 1
            if old is not None:
                # The initial install is not a swap: ``swaps`` mirrors
                # graft_generation_swaps_total, which counts handoffs.
                self.swaps += 1
                old.retired = True
                drained = old.refs == 0
        if old is not None and drained:
            old.drained()
        return old


class WriterDead(GraftError):
    """The background writer has crashed and was not revived yet."""


class QueryService:
    """HTTP-agnostic service core: admission, search, ingest, swap.

    The async surface (:mod:`repro.serve.server`) is a thin framing
    layer over this class, so the chaos and overload tests drive the
    exact production logic in-process without sockets.
    """

    def __init__(
        self,
        store_dir,
        config: ServiceConfig | None = None,
        *,
        analyzer=None,
        store_faults=None,
        registry=REGISTRY,
    ):
        self.store_dir = store_dir
        self.config = config if config is not None else ServiceConfig()
        self.analyzer = analyzer
        #: Chaos harness only: a StoreFaultInjector threaded into the
        #: writer's store ops.  Revival always reopens unfaulted — the
        #: recovery path is the thing under test, not another victim.
        self._store_faults = store_faults
        self.registry = registry
        self.admission = AdmissionController(
            self.config.max_inflight,
            self.config.max_queue,
            retry_after_s=self.config.retry_after_s,
            retry_jitter_s=self.config.retry_jitter_s,
            registry=registry,
        )
        self.breaker = CircuitBreaker(
            self.config.breaker_threshold,
            self.config.breaker_cooldown_s,
            registry=registry,
        )
        self.readers = _ReaderSet()
        #: Unified span exporter (docs/OBSERVABILITY.md Layer 7): one
        #: OTLP-shaped trace per finished query request, served back at
        #: ``/debug/trace/<id>``.  None unless ``config.spans``.
        self.spans = None
        if self.config.spans:
            from repro.obs.spans import SpanExporter

            self.spans = SpanExporter(
                ring_capacity=self.config.spans_capacity,
                path=self.config.spans_path,
                registry=registry,
            )
        #: SLO engine (Layer 7): declarative objectives judged by
        #: multi-window burn rates; served at ``/debug/slo``.
        self.slo = None
        if self.config.slos:
            from repro.obs.slo import SloEngine, parse_slo_spec

            self.slo = SloEngine(
                [parse_slo_spec(s) for s in self.config.slos],
                registry=registry,
            )
        #: Request telemetry (docs/OBSERVABILITY.md Layer 6): in-flight
        #: table, slow-request capture, rolling latency window.  None
        #: when disabled — every instrumentation site then short-circuits
        #: on an ``is None`` check and allocates nothing.
        self.telemetry: TelemetryHub | None = (
            TelemetryHub(
                slow_capacity=self.config.slow_capacity,
                slow_window_s=self.config.slow_window_s,
                slow_min_wall_ms=self.config.slow_min_wall_ms,
                exporter=self.spans,
            )
            if self.config.telemetry else None
        )
        if self.telemetry is not None and self.slo is not None:
            # Every finished /search request — success, shed, timeout —
            # flows through the hub exactly once, so this is the one
            # place SLO outcomes are counted.
            self.telemetry.on_search_finish = self._observe_slo
        self._qlog = None
        if self.config.qlog_path:
            from repro.obs.qlog import QueryLog

            self._qlog = QueryLog(
                self.config.qlog_path,
                sample_rate=self.config.qlog_sample_rate,
                slow_ms=self.config.qlog_slow_ms,
            )
        self.started = False
        self.draining = False
        self._writer: SearchEngine | None = None
        self._writer_fault: BaseException | None = None
        self._wal_since_checkpoint = 0
        self._swap_lock = asyncio.Lock()
        workers = self.config.executor_workers or self.config.max_inflight
        self._search_executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="graft-search"
        )
        # One writer thread: WAL appends and checkpoints are inherently
        # serial (single advisory lock), so serialization by executor
        # width is simpler and stricter than locking inside the engine.
        self._writer_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="graft-writer"
        )

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Open the writer, load the first reader generation, go ready."""
        loop = asyncio.get_running_loop()
        self._writer = await loop.run_in_executor(
            self._writer_executor, self._open_writer
        )
        handle = await loop.run_in_executor(
            self._search_executor, self._build_handle
        )
        self.readers.swap(handle)
        self.started = True

    def _open_writer(self) -> SearchEngine:
        from repro.index.store import IndexStore

        store = IndexStore(self.store_dir)
        lock = store.lock().acquire(retries=5, backoff_s=0.05)
        lock.release()  # SearchEngine.open re-acquires; we only waited out
        return SearchEngine.open(
            self.store_dir,
            analyzer=self.analyzer,
            faults=self._store_faults,
        )

    def _build_handle(self) -> GenerationHandle:
        """Load, shard-configure, pre-build and pin one reader."""
        from repro.index.store import IndexStore

        engine = SearchEngine.load(self.store_dir, analyzer=self.analyzer)
        if self.config.shards is not None:
            engine.shards = self.config.shards
        if self.config.executor is not None:
            engine.executor = self.config.executor
        index = engine.index  # force-build off the request path
        if engine.executor == "process" and engine.shards > 1:
            # Pay the pack+publish+fork cost here, off the request
            # path, exactly like the force-built index above; a pool
            # that cannot start degrades to threads with a warning now
            # instead of on the first query.
            engine._process_pool()
        # shards=1 explicitly: the degraded path must stay serial even
        # when REPRO_SHARDS is set in the environment.
        serial = SearchEngine(
            collection=engine.collection, shards=1, cache=CacheConfig.off()
        )
        serial._index = index
        if self._qlog is not None:
            # Both paths log: a request degraded onto the serial engine
            # is exactly the kind the log must not lose.
            engine.qlog = self._qlog
            serial.qlog = self._qlog
        generation = engine.loaded_generation
        release = None
        if generation is not None:
            pin_store = IndexStore(self.store_dir)
            pin_store.pin_generation(generation)
            release = lambda: pin_store.release_generation(generation)
        return GenerationHandle(
            engine=engine,
            serial_engine=serial,
            generation=generation,
            release_pin=release,
        )

    async def stop(self) -> None:
        """Release the writer lock and retire the readers."""
        self.draining = True
        self.started = False
        writer, self._writer = self._writer, None
        if writer is not None:
            await asyncio.get_running_loop().run_in_executor(
                self._writer_executor, writer.close
            )
        old = self.readers.swap(
            GenerationHandle(
                engine=SearchEngine(), serial_engine=SearchEngine(),
                generation=None,
            )
        )
        if old is not None:
            pass  # retired; pin released once inflight requests drain
        self._search_executor.shutdown(wait=False)
        self._writer_executor.shutdown(wait=False)

    # -- serving -----------------------------------------------------------

    async def search(
        self,
        query: str,
        scheme: str = "sumbest",
        top_k: int | None = 10,
        deadline_ms: float | None = None,
        partial: bool = True,
        request_id: str | None = None,
    ) -> dict:
        """One admitted, deadline-governed search; returns the payload.

        Raises :class:`repro.serve.http.HttpError` with the status the
        transport should emit (503 shed / 504 timeout / 4xx client).

        ``request_id`` labels this search in the telemetry layer for
        in-process callers; over HTTP the server has usually already
        begun a request context (from ``X-Request-Id``), in which case
        the argument is ignored in favor of the active context.
        """
        # The transport (HttpServer) begins the request context; when the
        # service is driven directly (tests, benchmarks, embedding) it
        # owns one itself so phase spans and the slow capture still work.
        rt = telemetry.current()
        owned_token = None
        if rt is None and self.telemetry is not None:
            rt = self.telemetry.begin(
                request_id, route="/search", query=query, scheme=scheme
            )
            owned_token = telemetry.activate(rt)
        elif rt is not None:
            # The transport began the context from raw query params; fill
            # in the resolved values (e.g. the default scheme).
            rt.query = rt.query or query
            rt.scheme = rt.scheme or scheme
        status = 200
        try:
            if self.draining or not self.started:
                raise HttpError(503, "service is draining")
            budget_ms = self.config.deadline_ms
            if deadline_ms is not None:
                budget_ms = min(budget_ms, deadline_ms)
            try:
                queued_s = await self.admission.admit(
                    timeout_s=budget_ms / 1000.0
                )
            except ShedRequest as exc:
                raise _shed_error(exc) from None
            except AdmissionTimeout as exc:
                raise HttpError(504, str(exc)) from None
            if rt is not None:
                rt.add_phase_ms("queue_wait", queued_s * 1000.0)
            try:
                remaining_ms = budget_ms - queued_s * 1000.0
                if remaining_ms <= 0:
                    raise HttpError(
                        504, "deadline expired in the admission queue"
                    )
                return await self._execute(
                    query, scheme, top_k, remaining_ms, partial, queued_s, rt
                )
            finally:
                self.admission.exit()
        except HttpError as exc:
            status = exc.status
            raise
        except BaseException:
            status = 500
            raise
        finally:
            if owned_token is not None:
                telemetry.deactivate(owned_token)
                self.telemetry.finish(rt, status)

    async def _execute(
        self,
        query: str,
        scheme: str,
        top_k: int | None,
        remaining_ms: float,
        partial: bool,
        queued_s: float,
        rt=None,
    ) -> dict:
        handle, epoch = self.readers.pin()
        full_path = self.breaker.allow_full_path()
        limits = self.config.limits(remaining_ms, partial=partial)
        loop = asyncio.get_running_loop()
        started = time.monotonic()

        def run_search(engine: SearchEngine) -> SearchOutcome:
            # run_in_executor does not propagate contextvars across the
            # thread hop, so the request context is re-bound explicitly
            # — this is what lets the engine's phase spans and the qlog
            # request-id stamp see the request.
            with telemetry.bound(rt):
                return engine.search(
                    query, scheme=scheme, top_k=top_k, limits=limits
                )

        try:
            if full_path:
                engine = handle.engine
            else:
                engine = handle.serial_engine
                degraded_serial_requests(self.registry).child().inc()
                if rt is not None:
                    rt.note("served_degraded_serial", True)
            outcome = await loop.run_in_executor(
                self._search_executor, lambda: run_search(engine)
            )
        except (IndexCorruptionError, ScoreConsistencyError) as exc:
            self.breaker.record_failure()
            raise HttpError(500, f"integrity failure: {exc}") from exc
        except QueryTimeoutError as exc:
            raise HttpError(504, str(exc)) from exc
        except ResourceExhaustedError as exc:
            raise HttpError(429, str(exc)) from exc
        except GraftError as exc:
            raise HttpError(400, str(exc)) from exc
        finally:
            self.readers.release(handle)
        if full_path:
            self.breaker.record_success()
        return self._payload(
            query, scheme, outcome, handle, epoch,
            served_serial=not full_path,
            wall_s=time.monotonic() - started,
            queued_s=queued_s,
            rt=rt,
        )

    def _payload(
        self,
        query: str,
        scheme: str,
        outcome: SearchOutcome,
        handle: GenerationHandle,
        epoch: int,
        *,
        served_serial: bool,
        wall_s: float,
        queued_s: float,
        rt=None,
    ) -> dict:
        return {
            "request_id": rt.request_id if rt is not None else None,
            "query": query,
            "scheme": scheme,
            "generation": handle.generation,
            "epoch": epoch,
            "degraded": outcome.degraded,
            "limit_hit": outcome.limit_hit,
            "breaker": self.breaker.state,
            "served_degraded_serial": served_serial,
            "shard_count": outcome.shard_count,
            "plan_cached": outcome.plan_cached,
            "wall_ms": wall_s * 1000.0,
            "queued_ms": queued_s * 1000.0,
            "results": [
                {
                    "rank": rank,
                    "doc_id": r.doc_id,
                    "score": r.score,
                    "title": r.title,
                }
                for rank, r in enumerate(outcome.results, start=1)
            ],
        }

    async def explain(self, query: str, scheme: str = "sumbest") -> dict:
        """The optimized plan the current generation would execute."""
        if self.draining or not self.started:
            raise HttpError(503, "service is draining")
        async with self.admission:
            handle, epoch = self.readers.pin()
            try:
                loop = asyncio.get_running_loop()
                text = await loop.run_in_executor(
                    self._search_executor,
                    lambda: handle.engine.explain(query, scheme=scheme),
                )
            except GraftError as exc:
                raise HttpError(400, str(exc)) from exc
            finally:
                self.readers.release(handle)
            return {
                "query": query,
                "scheme": scheme,
                "generation": handle.generation,
                "epoch": epoch,
                "plan": text,
            }

    # -- ingest and swap ---------------------------------------------------

    @property
    def writer_alive(self) -> bool:
        return self._writer is not None and self._writer_fault is None

    def _require_writer(self) -> SearchEngine:
        if self.draining:
            raise HttpError(503, "service is draining")
        if not self.writer_alive:
            raise HttpError(
                503,
                "writer is down "
                f"({type(self._writer_fault).__name__ if self._writer_fault else 'not started'}); "
                "readers keep serving the last durable generation",
            )
        return self._writer

    async def add_document(self, text: str, title: str = "") -> dict:
        """WAL-append one document through the writer; durable on return.

        The document becomes *searchable* at the next checkpoint + swap;
        this split is what lets readers stay immutable.
        """
        writer = self._require_writer()
        loop = asyncio.get_running_loop()
        try:
            doc_id = await loop.run_in_executor(
                self._writer_executor, lambda: writer.add(text, title)
            )
        except BaseException as exc:
            self._writer_fault = exc
            raise HttpError(503, f"writer failed: {exc}") from exc
        self._wal_since_checkpoint += 1
        pending = (
            self.config.checkpoint_every
            and self._wal_since_checkpoint >= self.config.checkpoint_every
        )
        if pending:
            asyncio.ensure_future(self._auto_checkpoint())
        return {
            "doc_id": doc_id,
            "wal_pending": self._wal_since_checkpoint,
            "generation": self.readers.current.generation
            if self.readers.current else None,
        }

    async def _auto_checkpoint(self) -> None:
        try:
            await self.checkpoint_and_swap()
        except HttpError:
            pass  # a concurrent swap is already running, or writer died

    async def checkpoint_and_swap(self) -> dict:
        """Compact the WAL into a new generation and hot-swap readers.

        Zero dropped requests by construction: the new reader is loaded
        and pre-built entirely off the request path, the swap itself is
        one pointer flip under the reader lock, and requests pinned to
        the old handle finish on it.
        """
        writer = self._require_writer()
        if self._swap_lock.locked():
            raise HttpError(409, "a checkpoint/swap is already in progress")
        async with self._swap_lock:
            loop = asyncio.get_running_loop()
            swap_started = time.monotonic()
            try:
                generation = await loop.run_in_executor(
                    self._writer_executor, writer.checkpoint
                )
            except BaseException as exc:
                # The writer 'died' mid-checkpoint (chaos or real fault).
                # Readers are untouched; the store recovers on reopen.
                self._writer_fault = exc
                raise HttpError(
                    503, f"writer crashed during checkpoint: {exc}"
                ) from exc
            self._wal_since_checkpoint = 0
            handle = await loop.run_in_executor(
                self._search_executor, self._build_handle
            )
            old = self.readers.swap(handle)
            elapsed = time.monotonic() - swap_started
            generation_swaps(self.registry).child().inc()
            swap_seconds(self.registry).child().observe(elapsed)
            return {
                "generation": generation,
                "previous": old.generation if old is not None else None,
                "epoch": self.readers.epoch,
                "swap_ms": elapsed * 1000.0,
            }

    async def revive_writer(self) -> dict:
        """Reopen the store after a writer crash (the supervisor path).

        Releases the dead writer's advisory lock (the supervisor owns
        the handle in-process; after a real crash the pid-staleness
        break does the same job), then reopens — which truncates any
        torn WAL tail and garbage-collects the dead checkpoint's
        residue, exactly like a process restart.
        """
        if self.writer_alive:
            return {"revived": False, "reason": "writer is alive"}
        loop = asyncio.get_running_loop()
        dead, self._writer = self._writer, None
        self._writer_fault = None

        def reopen() -> SearchEngine:
            if dead is not None:
                dead.close()
            return SearchEngine.open(self.store_dir, analyzer=self.analyzer)

        try:
            self._writer = await loop.run_in_executor(
                self._writer_executor, reopen
            )
        except BaseException as exc:
            self._writer_fault = exc
            raise HttpError(503, f"writer revival failed: {exc}") from exc
        self._wal_since_checkpoint = 0
        return {
            "revived": True,
            "generation": self._writer.loaded_generation,
        }

    # -- SLO judgment ------------------------------------------------------

    def _observe_slo(self, wall_ms: float, status: int) -> None:
        """Fold one finished query into the SLO engine; arm/disarm the
        admission controller's pressure mode on fast-burn transitions."""
        self.slo.observe(wall_ms, status)
        report = self.slo.maybe_evaluate()
        if not self.config.slo_shed:
            return
        armed = bool(report.get("fast_burn_breaching"))
        if armed != self.admission.pressure:
            self.admission.set_pressure(armed)
            from repro.obs.metrics import slo_shed_armed

            slo_shed_armed(self.registry).child().set(1.0 if armed else 0.0)

    def slo_report(self) -> dict:
        """A fresh full evaluation for ``/debug/slo``."""
        if self.slo is None:
            raise HttpError(
                503, "no SLOs configured; start with --slo SPEC"
            )
        report = self.slo.evaluate()
        report["shed_pressure"] = self.admission.pressure
        report["pressure_sheds"] = self.admission.pressure_sheds
        return report

    def trace_payload(self, request_id: str) -> dict:
        """The exported span tree for one request (``/debug/trace/<id>``)."""
        if self.spans is None:
            raise HttpError(
                503, "span export is disabled; start with --spans"
            )
        payload = self.spans.get(request_id)
        if payload is None:
            raise HttpError(
                404, f"no exported trace for request id {request_id!r}"
            )
        return payload

    # -- introspection -----------------------------------------------------

    def status(self) -> dict:
        current = self.readers.current
        return {
            "ready": self.started and not self.draining
            and current is not None,
            "draining": self.draining,
            "generation": current.generation if current else None,
            "epoch": self.readers.epoch,
            "swaps": self.readers.swaps,
            "reader_refs": current.refs if current else 0,
            "doc_count": len(current.engine.collection) if current else 0,
            "inflight": self.admission.inflight,
            "queued": self.admission.queued,
            "shed": self.admission.shed,
            "admitted": self.admission.admitted,
            "admission_timeouts": self.admission.timed_out,
            "breaker": self.breaker.state,
            "breaker_trips": self.breaker.trips,
            "writer_alive": self.writer_alive,
            "wal_pending": self._wal_since_checkpoint,
            "telemetry": (
                self.telemetry.status_summary()
                if self.telemetry is not None else None
            ),
            "slo": (
                {
                    "objectives": len(self.slo.objectives),
                    "breaching": self.slo.breaching(),
                    "shed_pressure": self.admission.pressure,
                }
                if self.slo is not None else None
            ),
            "spans": (
                {
                    "ring": len(self.spans.ring),
                    "capacity": self.spans.ring.capacity,
                    "written": (
                        self.spans.writer.written
                        if self.spans.writer is not None else None
                    ),
                }
                if self.spans is not None else None
            ),
        }


def _shed_error(exc: ShedRequest) -> HttpError:
    error = HttpError(503, str(exc))
    error.retry_after_s = exc.retry_after_s
    return error
