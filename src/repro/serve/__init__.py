"""The resilient async query service (docs/SERVICE.md).

A dependency-free asyncio HTTP service over a durable index store:
immutable reader generations hot-swapped behind live traffic, a single
WAL-appending writer, bounded admission with load shedding, and a
circuit breaker that degrades to a known-good serial path on integrity
failures.  Every request carries a correlation id (``X-Request-Id``)
through a per-request telemetry context (:mod:`repro.obs.telemetry`)
feeding ``/debug/requests``, ``/debug/slow``, and the ``/status``
latency summary.
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionTimeout,
    CircuitBreaker,
    ServiceConfig,
    ShedRequest,
)
from repro.serve.console import run_top
from repro.serve.http import HttpError, Request, read_request, response_bytes
from repro.serve.loadgen import (
    DEFAULT_QUERIES,
    LoadgenReport,
    run_loadgen,
)
from repro.obs.telemetry import TelemetryHub, new_request_id
from repro.serve.server import HttpServer, run_server
from repro.serve.service import GenerationHandle, QueryService, WriterDead

__all__ = [
    "AdmissionController",
    "AdmissionTimeout",
    "CircuitBreaker",
    "DEFAULT_QUERIES",
    "GenerationHandle",
    "HttpError",
    "HttpServer",
    "LoadgenReport",
    "QueryService",
    "Request",
    "ServiceConfig",
    "ShedRequest",
    "TelemetryHub",
    "WriterDead",
    "new_request_id",
    "read_request",
    "response_bytes",
    "run_loadgen",
    "run_server",
    "run_top",
]
