"""The asyncio HTTP surface over :class:`repro.serve.service.QueryService`.

One coroutine per connection, keep-alive, no external dependencies —
``asyncio.start_server`` plus the framing in :mod:`repro.serve.http`.

Endpoints:

========================  =====================================================
``GET /search``           ``?q=``, ``scheme=``, ``top_k=``, ``deadline_ms=``,
                          ``partial=`` — admitted, deadline-governed search.
``GET /explain``          ``?q=``, ``scheme=`` — the optimized plan text.
``GET /healthz``          Liveness: 200 as long as the process serves.
``GET /readyz``           Readiness: 200 only when a reader generation is
                          loaded and the server is not draining.
``GET /metrics``          Prometheus text (or JSON with ``?format=json``).
``GET /status``           Service introspection (generation, epoch, breaker,
                          admission counters, writer health).
``POST /add``             JSON ``{"text": ..., "title": ...}`` — WAL-append
                          one document through the writer.
``POST /admin/checkpoint``  Checkpoint the WAL and hot-swap readers.
``POST /admin/revive``    Reopen the store after a writer crash.
``GET /debug/requests``   In-flight requests: id, age, current phase.
``GET /debug/slow``       Captured slow-request wide events (``?n=``).
``GET /debug/profile``    Opt-in sampling profiler (``?seconds=N``),
                          collapsed-stack text; 403 unless enabled.
``GET /debug/slo``        Burn rates, budgets, and verdicts per objective;
                          503 unless SLOs are configured (``--slo``).
``GET /debug/trace/<id>`` The unified OTLP-shaped span tree exported for
                          one request; 503 unless ``--spans``, 404 when
                          the id has aged out of the ring.
========================  =====================================================

Every request is assigned a correlation id — the client's
``X-Request-Id`` header when present (sanitized), a generated
ULID-style id otherwise — echoed back as ``X-Request-Id`` on the
response and threaded through the engine via the request-telemetry
context (:mod:`repro.obs.telemetry`).

Shutdown is a drain, not a guillotine: on SIGTERM (or :meth:`stop`) the
server first flips ``/readyz`` to 503 so load balancers stop routing
here, stops accepting connections, waits up to ``drain_timeout_s`` for
inflight requests, then closes.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time

from repro.obs import telemetry
from repro.obs.metrics import (
    REGISTRY,
    http_request_seconds,
    http_requests,
)
from repro.obs.telemetry import new_request_id, sanitize_request_id
from repro.serve.http import (
    HttpError,
    Request,
    read_request,
    response_bytes,
)
from repro.serve.service import QueryService


def _json_body(payload: dict) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


class HttpServer:
    """Bind, route, drain.  One instance per :class:`QueryService`."""

    def __init__(self, service: QueryService, *, registry=REGISTRY):
        self.service = service
        self.registry = registry
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._draining = asyncio.Event()
        self.host: str | None = None
        self.port: int | None = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Start the service core and listen; returns (host, port)."""
        if not self.service.started:
            await self.service.start()
        config = self.service.config
        self._server = await asyncio.start_server(
            self._handle_connection, host=config.host, port=config.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT trigger a graceful drain (CLI entry point)."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                sig, lambda: asyncio.ensure_future(self.stop())
            )

    async def serve_forever(self) -> None:
        """Block until a drain is triggered and completes."""
        await self._draining.wait()

    async def stop(self) -> None:
        """Graceful drain: unready, stop accepting, wait, close.

        Idempotent — a second SIGTERM while draining is a no-op rather
        than an abort; hard-kill impatience belongs to the supervisor.
        """
        if self._draining.is_set():
            return
        self.service.draining = True  # /readyz goes 503 first
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + self.service.config.drain_timeout_s
        while self._connections and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        for task in list(self._connections):
            task.cancel()
        await self.service.stop()
        self._draining.set()

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    writer.write(
                        self._error_bytes(exc, route="(parse)", keep=False)
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                keep = request.keep_alive and not self.service.draining
                payload = await self._dispatch_counted(request)
                writer.write(
                    response_bytes(
                        payload[0],
                        payload[1],
                        extra_headers=payload[2],
                        keep_alive=keep,
                    )
                )
                await writer.drain()
                if not keep:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    def _error_bytes(
        self, exc: HttpError, *, route: str, keep: bool
    ) -> bytes:
        headers = {}
        retry = getattr(exc, "retry_after_s", None)
        if retry is not None:
            headers["Retry-After"] = f"{retry:.3f}"
        http_requests(self.registry).labels(
            route=route, status=str(exc.status)
        ).inc()
        return response_bytes(
            exc.status,
            _json_body({"error": str(exc), "status": exc.status}),
            extra_headers=headers,
            keep_alive=keep,
        )

    async def _dispatch_counted(
        self, request: Request
    ) -> tuple[int, bytes, dict[str, str]]:
        route = request.path
        started = time.monotonic()
        # Begin the request-telemetry context: accept the client's
        # X-Request-Id (sanitized) or mint a ULID-style one, bind it to
        # this task so every layer below — admission, service, engine,
        # qlog — sees the same id, and echo it on the response.
        hub = self.service.telemetry
        rt = None
        token = None
        rid = sanitize_request_id(request.header("x-request-id"))
        if hub is not None:
            rt = hub.begin(
                rid,
                route=request.path,
                query=request.param("q") or "",
                scheme=request.param("scheme") or "",
            )
            rid = rt.request_id
            token = telemetry.activate(rt)
        elif rid is None:
            rid = new_request_id()
        try:
            try:
                status, body, headers = await self._dispatch(request)
            except HttpError as exc:
                status = exc.status
                headers = {}
                retry = getattr(exc, "retry_after_s", None)
                if retry is not None:
                    headers["Retry-After"] = f"{retry:.3f}"
                body = _json_body({"error": str(exc), "status": status})
            except Exception as exc:  # noqa: BLE001 — the connection must live
                status = 500
                headers = {}
                body = _json_body(
                    {"error": f"{type(exc).__name__}: {exc}", "status": 500}
                )
        finally:
            if token is not None:
                telemetry.deactivate(token)
        if hub is not None and rt is not None:
            hub.finish(rt, status)
        headers = dict(headers)
        headers.setdefault("X-Request-Id", rid)
        http_requests(self.registry).labels(
            route=route, status=str(status)
        ).inc()
        http_request_seconds(self.registry).labels(route=route).observe(
            time.monotonic() - started
        )
        return status, body, headers

    # -- routing -----------------------------------------------------------

    async def _dispatch(
        self, request: Request
    ) -> tuple[int, bytes, dict[str, str]]:
        route = (request.method, request.path)
        if route == ("GET", "/search"):
            return await self._search(request)
        if route == ("GET", "/explain"):
            return await self._explain(request)
        if route == ("GET", "/healthz"):
            return 200, _json_body({"alive": True}), {}
        if route == ("GET", "/readyz"):
            status = self.service.status()
            return (
                (200 if status["ready"] else 503),
                _json_body(status),
                {},
            )
        if route == ("GET", "/metrics"):
            return self._metrics(request)
        if route == ("GET", "/status"):
            return 200, _json_body(self.service.status()), {}
        if route == ("POST", "/add"):
            return await self._add(request)
        if route == ("POST", "/admin/checkpoint"):
            result = await self.service.checkpoint_and_swap()
            return 200, _json_body(result), {}
        if route == ("POST", "/admin/revive"):
            result = await self.service.revive_writer()
            return 200, _json_body(result), {}
        if route == ("GET", "/debug/requests"):
            return self._debug_requests()
        if route == ("GET", "/debug/slow"):
            return self._debug_slow(request)
        if route == ("GET", "/debug/profile"):
            return await self._debug_profile(request)
        if route == ("GET", "/debug/slo"):
            return 200, _json_body(self.service.slo_report()), {}
        if request.path.startswith("/debug/trace/"):
            if request.method != "GET":
                raise HttpError(
                    405, f"{request.method} is not allowed on {request.path}"
                )
            return self._debug_trace(request)
        if request.path in (
            "/search", "/explain", "/healthz", "/readyz", "/metrics",
            "/status", "/add", "/admin/checkpoint", "/admin/revive",
            "/debug/requests", "/debug/slow", "/debug/profile",
            "/debug/slo",
        ):
            raise HttpError(
                405, f"{request.method} is not allowed on {request.path}"
            )
        raise HttpError(404, f"no route for {request.path}")

    async def _search(
        self, request: Request
    ) -> tuple[int, bytes, dict[str, str]]:
        query = request.param("q")
        if not query:
            raise HttpError(400, "missing required query parameter 'q'")
        payload = await self.service.search(
            query,
            scheme=request.param("scheme", "sumbest"),
            top_k=request.int_param("top_k", 10),
            deadline_ms=request.float_param("deadline_ms", None),
            partial=request.bool_param("partial", True),
        )
        with telemetry.span("serialize"):
            body = _json_body(payload)
        return 200, body, {}

    async def _explain(
        self, request: Request
    ) -> tuple[int, bytes, dict[str, str]]:
        query = request.param("q")
        if not query:
            raise HttpError(400, "missing required query parameter 'q'")
        payload = await self.service.explain(
            query, scheme=request.param("scheme", "sumbest")
        )
        return 200, _json_body(payload), {}

    def _metrics(
        self, request: Request
    ) -> tuple[int, bytes, dict[str, str]]:
        if request.param("format") == "json":
            return (
                200,
                (self.registry.to_json(indent=2) + "\n").encode("utf-8"),
                {},
            )
        text = self.registry.to_prometheus_text()
        # The full Prometheus exposition content type: scrapers negotiate
        # on version *and* charset.
        return (
            200,
            text.encode("utf-8"),
            {"Content-Type": "text/plain; version=0.0.4; charset=utf-8"},
        )

    def _require_hub(self):
        hub = self.service.telemetry
        if hub is None:
            raise HttpError(
                503, "request telemetry is disabled (ServiceConfig.telemetry)"
            )
        return hub

    def _debug_requests(self) -> tuple[int, bytes, dict[str, str]]:
        hub = self._require_hub()
        return 200, _json_body({"inflight": hub.inflight()}), {}

    def _debug_trace(
        self, request: Request
    ) -> tuple[int, bytes, dict[str, str]]:
        rid = sanitize_request_id(request.path[len("/debug/trace/"):])
        if rid is None:
            raise HttpError(400, "malformed request id in path")
        return 200, _json_body(self.service.trace_payload(rid)), {}

    def _debug_slow(
        self, request: Request
    ) -> tuple[int, bytes, dict[str, str]]:
        hub = self._require_hub()
        n = request.int_param("n", 32)
        if n < 1:
            raise HttpError(400, "query parameter 'n' must be >= 1")
        return (
            200,
            _json_body({
                "window_s": hub.slow.window_s,
                "capacity": hub.slow.capacity,
                "events": hub.slow.snapshot(n),
            }),
            {},
        )

    async def _debug_profile(
        self, request: Request
    ) -> tuple[int, bytes, dict[str, str]]:
        config = self.service.config
        if not config.profile_endpoint:
            raise HttpError(
                403,
                "profiling endpoint is disabled; start the service with "
                "profile_endpoint=True (repro serve --enable-profile)",
            )
        seconds = request.float_param("seconds", 2.0)
        if seconds is None or seconds <= 0:
            raise HttpError(400, "query parameter 'seconds' must be > 0")
        seconds = min(seconds, config.profile_max_seconds)
        from repro.obs.profile import sample_for

        # The sampler blocks its thread for the whole window; run it on
        # the default executor so the event loop keeps serving traffic
        # (which is the point: profile the service under load).
        loop = asyncio.get_running_loop()
        prof = await loop.run_in_executor(None, lambda: sample_for(seconds))
        text = prof.collapsed()
        body = (
            f"# sampling profile: {seconds:.3f}s at "
            f"{prof.interval_s * 1000.0:.1f}ms interval, "
            f"{prof.samples} samples (collapsed stacks)\n"
            + text + ("\n" if text else "")
        ).encode("utf-8")
        return 200, body, {"Content-Type": "text/plain; charset=utf-8"}

    async def _add(
        self, request: Request
    ) -> tuple[int, bytes, dict[str, str]]:
        try:
            doc = json.loads(request.body.decode("utf-8") or "{}")
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"request body is not JSON: {exc}") from None
        if not isinstance(doc, dict) or not isinstance(doc.get("text"), str):
            raise HttpError(
                400, "request body must be a JSON object with a 'text' string"
            )
        result = await self.service.add_document(
            doc["text"], title=str(doc.get("title", ""))
        )
        return 202, _json_body(result), {}


async def run_server(
    store_dir, config=None, *, analyzer=None, ready_line=print
) -> None:
    """CLI entry: start, announce, serve until SIGTERM, drain."""
    service = QueryService(store_dir, config, analyzer=analyzer)
    server = HttpServer(service)
    host, port = await server.start()
    server.install_signal_handlers()
    status = service.status()
    ready_line(
        f"serving {store_dir} generation={status['generation']} "
        f"docs={status['doc_count']} on http://{host}:{port}"
    )
    await server.serve_forever()
    ready_line("drained; bye")
