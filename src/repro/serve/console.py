"""``repro top`` — a live ops console for a running query service.

Stdlib only: :mod:`urllib.request` polls ``/status``, ``/debug/slo``
and ``/metrics?format=json``; ANSI escapes repaint the screen in place.
The rendering is a pure function over one polled snapshot, so the unit
tests exercise the exact dashboard an operator sees without a socket,
and ``--once --json`` emits the raw snapshot for scripting and CI.

What the screen answers, top to bottom: is the service ready and on
which generation; how much traffic is in flight / queued / shed; where
the rolling latency percentiles sit; how each SLO's error budget is
doing (with a burn-down bar per objective); and whether the caches and
shards are earning their keep.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any

__all__ = ["poll", "render", "run_top"]

_CLEAR = "\x1b[2J\x1b[H"
_BOLD = "\x1b[1m"
_RED = "\x1b[31m"
_GREEN = "\x1b[32m"
_YELLOW = "\x1b[33m"
_RESET = "\x1b[0m"


def _fetch(base: str, path: str, timeout_s: float) -> dict[str, Any] | None:
    """One GET returning parsed JSON; None on a non-2xx or network error."""
    try:
        with urllib.request.urlopen(
            f"{base}{path}", timeout=timeout_s
        ) as resp:
            return json.loads(resp.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError):
        return None


def poll(base: str, timeout_s: float = 5.0) -> dict[str, Any]:
    """One console snapshot: status + SLO report + metrics.

    ``slo`` is None when the service has no objectives configured (the
    endpoint answers 503) — the dashboard renders the section as absent
    rather than failing the poll.
    """
    base = base.rstrip("/")
    status = _fetch(base, "/status", timeout_s)
    if status is None:
        raise ConnectionError(f"cannot reach {base}/status")
    return {
        "polled_at": time.time(),
        "url": base,
        "status": status,
        "slo": _fetch(base, "/debug/slo", timeout_s),
        "metrics": _fetch(base, "/metrics?format=json", timeout_s) or {},
    }


def _counter(metrics: dict[str, Any], name: str) -> float:
    family = metrics.get(name)
    if not family:
        return 0.0
    return sum(s.get("value", 0.0) for s in family.get("samples", []))


def _ratio(hits: float, misses: float) -> float | None:
    total = hits + misses
    return hits / total if total else None


def _bar(fraction: float, width: int = 20) -> str:
    fraction = max(0.0, min(1.0, fraction))
    filled = round(fraction * width)
    return "#" * filled + "-" * (width - filled)


def _paint(text: str, code: str, color: bool) -> str:
    return f"{code}{text}{_RESET}" if color else text


def _fmt_ms(value: float | None) -> str:
    return f"{value:8.2f}" if value is not None else "       -"


def render(snapshot: dict[str, Any], *, color: bool = True) -> str:
    """The dashboard for one :func:`poll` snapshot (pure; testable)."""
    status = snapshot["status"]
    metrics = snapshot.get("metrics") or {}
    slo = snapshot.get("slo")
    lines: list[str] = []

    ready = status.get("ready")
    ready_text = (
        _paint("READY", _GREEN, color) if ready
        else _paint("NOT READY", _RED, color)
    )
    lines.append(
        f"{_paint('repro top', _BOLD, color)} — {snapshot['url']}  "
        f"[{ready_text}]  "
        f"gen={status.get('generation')} epoch={status.get('epoch')} "
        f"docs={status.get('doc_count')} "
        f"writer={'up' if status.get('writer_alive') else 'DOWN'} "
        f"breaker={status.get('breaker')}"
    )

    lines.append(
        f"traffic   inflight={status.get('inflight', 0):<4} "
        f"queued={status.get('queued', 0):<4} "
        f"admitted={status.get('admitted', 0):<8} "
        f"shed={status.get('shed', 0):<6} "
        f"timeouts={status.get('admission_timeouts', 0):<6} "
        f"swaps={status.get('swaps', 0)}"
    )

    telem = status.get("telemetry")
    if telem:
        latency = telem.get("latency_ms") or {}
        rates = (
            f"shed_rate={telem.get('shed_rate', 0.0):.3f} "
            f"error_rate={telem.get('error_rate', 0.0):.3f}"
        )
        lines.append(
            f"latency   p50={_fmt_ms(latency.get('p50'))}ms "
            f"p95={_fmt_ms(latency.get('p95'))}ms "
            f"p99={_fmt_ms(latency.get('p99'))}ms   "
            f"window={telem.get('requests', 0)} req/{telem.get('window_s')}s "
            f"{rates}"
        )
    else:
        lines.append("latency   (telemetry disabled)")

    plan_ratio = _ratio(
        _counter(metrics, "graft_plan_cache_hits_total"),
        _counter(metrics, "graft_plan_cache_misses_total"),
    )
    result_ratio = _ratio(
        _counter(metrics, "graft_result_cache_hits_total"),
        _counter(metrics, "graft_result_cache_misses_total"),
    )
    executed = _counter(metrics, "graft_shards_executed_total")
    pruned = _counter(metrics, "graft_shards_pruned_total")
    audits = _counter(metrics, "graft_audits_total")
    divergences = _counter(metrics, "graft_audit_divergences_total")

    def pct(ratio: float | None) -> str:
        return f"{ratio * 100.0:5.1f}%" if ratio is not None else "    -"

    lines.append(
        f"engine    plan_cache={pct(plan_ratio)} "
        f"result_cache={pct(result_ratio)} "
        f"shards run={executed:.0f} pruned={pruned:.0f} "
        f"audits={audits:.0f} divergences={divergences:.0f}"
    )

    if slo and slo.get("objectives"):
        lines.append(_paint("slo", _BOLD, color))
        for objective in slo["objectives"]:
            budget = objective.get("budget", {})
            remaining = float(budget.get("remaining_fraction", 1.0))
            breaching = objective.get("state") == "breaching"
            state_text = (
                _paint("BREACHING", _RED, color) if breaching
                else _paint("ok", _GREEN, color)
            )
            if breaching:
                bar = _paint(_bar(remaining), _RED, color)
            elif remaining < 0.25:
                bar = _paint(_bar(remaining), _YELLOW, color)
            else:
                bar = _bar(remaining)
            fast = objective.get("windows", {}).get("fast", {})
            measured = objective.get("measured_ms")
            measured_text = (
                f" measured={measured:.2f}ms" if measured is not None else ""
            )
            lines.append(
                f"  {objective['name']:<24} [{bar}] "
                f"budget {remaining * 100.0:5.1f}%  {state_text}  "
                f"burn(fast)={fast.get('long_burn_rate', 0.0):.2f}"
                f"{measured_text}"
            )
        if slo.get("shed_pressure"):
            lines.append(
                "  " + _paint(
                    "early shedding ARMED (fast burn)", _YELLOW, color
                )
            )
    else:
        lines.append("slo       (no objectives configured; serve --slo SPEC)")

    spans = status.get("spans")
    if spans:
        lines.append(
            f"spans     ring={spans.get('ring')}/{spans.get('capacity')}"
            + (
                f" written={spans['written']}"
                if spans.get("written") is not None else ""
            )
        )
    return "\n".join(lines)


def run_top(
    url: str,
    *,
    interval_s: float = 2.0,
    once: bool = False,
    as_json: bool = False,
    color: bool = True,
    iterations: int | None = None,
    out=None,
) -> int:
    """The ``repro top`` loop; returns a process exit code.

    ``--once`` renders a single snapshot without clearing the screen
    (``--json`` emits it raw).  The interactive loop repaints every
    ``interval_s`` until interrupted.
    """
    out = out if out is not None else sys.stdout
    base = url if "://" in url else f"http://{url}"
    count = 0
    while True:
        try:
            snapshot = poll(base)
        except ConnectionError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if as_json:
            out.write(json.dumps(snapshot) + "\n")
        else:
            if not once:
                out.write(_CLEAR)
            out.write(render(snapshot, color=color) + "\n")
        out.flush()
        count += 1
        if once or (iterations is not None and count >= iterations):
            return 0
        try:
            time.sleep(interval_s)
        except KeyboardInterrupt:
            return 0
