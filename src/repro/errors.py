"""Exception hierarchy for the GRAFT reproduction.

Every error raised by the library derives from :class:`GraftError` so
applications can catch library failures with a single ``except`` clause.
"""

from __future__ import annotations


class GraftError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(GraftError):
    """A configuration value is malformed or out of range.

    Raised when engine or service configuration — constructor arguments,
    environment variables such as ``REPRO_SHARDS``, or
    :class:`repro.serve.ServiceConfig` fields — fails validation, so a
    bad deployment setting surfaces as one clear typed error at
    construction time instead of an unhandled ``ValueError`` deep inside
    query execution.  ``option`` names the offending setting.
    """

    def __init__(self, message: str, option: str | None = None):
        if option is not None:
            message = f"{option}: {message}"
        super().__init__(message)
        self.option = option


class QuerySyntaxError(GraftError):
    """The shorthand query text could not be parsed."""

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at character {position})"
        super().__init__(message)
        self.position = position


class UnsafeQueryError(GraftError):
    """An MCalc formula failed the safe-range analysis.

    Safe queries bind every free position variable either to positions of a
    keyword (via HAS) or to the empty symbol (via EMPTY) on every disjunct.
    """


class UnknownPredicateError(GraftError):
    """A full-text predicate name is not registered."""


class PredicateArityError(GraftError):
    """A full-text predicate was applied to the wrong number of variables
    or constants."""


class UnknownSchemeError(GraftError):
    """A scoring scheme name is not registered."""


class PlanError(GraftError):
    """An algebra plan is structurally invalid (schema mismatch, missing
    column, operator applied out of context)."""


class OptimizationError(GraftError):
    """A rewrite rule was applied where its validity preconditions
    (Table 1 of the paper) do not hold."""


class ExecutionError(GraftError):
    """A physical operator failed during evaluation.

    When the failure is localized to one operator, ``operator`` names the
    physical operator class and the message is prefixed with it, so a
    query over a deep plan reports *where* evaluation broke instead of a
    raw traceback.
    """

    def __init__(self, message: str, operator: str | None = None):
        if operator is not None:
            message = f"[{operator}] {message}"
        super().__init__(message)
        self.operator = operator


class ResourceExhaustedError(GraftError):
    """A query exceeded a configured resource limit.

    ``limit`` names the tripped :class:`repro.exec.limits.QueryLimits`
    field (``"max_rows"``, ``"max_matches_per_doc"`` or ``"deadline_ms"``).
    """

    def __init__(self, message: str, limit: str | None = None):
        super().__init__(message)
        self.limit = limit


class QueryTimeoutError(ResourceExhaustedError):
    """A query exceeded its wall-clock deadline."""


class ScoreConsistencyError(GraftError):
    """A shadow-execution audit found an optimized plan whose results
    diverge from the canonical score-isolated plan (Definition 1).

    Raised only under ``audit_mode="strict"``; the structured
    :class:`repro.obs.audit.AuditEvent` describing the divergence is
    attached as ``event``.
    """

    def __init__(self, message: str, event=None):
        super().__init__(message)
        self.event = event


class UnsupportedQueryError(GraftError):
    """A rigid baseline engine does not support this query's constructs
    (e.g. Lucene and Terrier "do not support the WINDOW predicate",
    Section 8)."""


class IndexError_(GraftError):
    """An index lookup or construction failure.

    Named with a trailing underscore to avoid shadowing the builtin
    ``IndexError``.
    """


class IndexCorruptionError(IndexError_):
    """A persisted index failed an integrity check.

    Raised when loading or verifying an on-disk index finds a damaged
    artifact: a checksum mismatch, an unparseable or truncated file, a
    missing array, or postings arrays whose shapes are mutually
    inconsistent.  ``path`` names the offending file so operators know
    exactly which artifact to restore from a checkpoint.
    """

    def __init__(self, message: str, path: str | None = None):
        if path is not None:
            message = f"{path}: {message}"
        super().__init__(message)
        self.path = path


class StoreLockedError(IndexError_):
    """Another writer holds the store's advisory lock.

    One index store directory admits one writer at a time; a second
    concurrent writer would silently interleave WAL appends and
    checkpoint renames.  ``holder`` describes the current lock owner as
    recorded in the lockfile (``pid@host``).
    """

    def __init__(self, message: str, path: str | None = None,
                 holder: str | None = None):
        super().__init__(message)
        self.path = path
        self.holder = holder
