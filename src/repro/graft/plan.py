"""Scoring-side plan nodes: SA operators hosted by MA operators.

"In GRAFT, the alternate combinator is hosted by the group operator, while
the conjunctive/disjunctive combinators, alpha and omega are hosted by
projection" (Section 4.3), just as SQL hosts SUM in a group-by and ``a+b``
in a generalized projection.

Row multiplicity and score columns
----------------------------------
Execution rows carry an integer multiplicity (``count``), introduced by
eager counting / pre-counting: a row with count ``k`` stands for ``k``
identical match-table rows.  Score columns obey one of two disciplines:

* **counts pending** (canonical-style plans): score columns hold per-row
  values; the (single, top) :class:`GroupScore` applies ``times(s, count)``
  while folding, expanding multiplicities at aggregation time exactly as
  eager counting prescribes (Section 5.2.1).
* **counts incorporated** (eager-aggregation plans): every score column of
  a row with multiplicity ``count`` is already the alternate-fold of
  exactly ``count`` match-table sub-rows.  :class:`ScoreInit` scales fresh
  initial scores by the row count, physical joins cross-scale each side's
  score columns by the other side's count, and :class:`GroupScore` folds
  without further scaling.  The invariant makes partial (pushed-down)
  aggregation compose correctly under joins, following Yan & Larson.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import PlanError
from repro.ma.nodes import PlanNode


@dataclass(frozen=True, eq=False)
class ScoreInit(PlanNode):
    """Projection hosting ``alpha``: adds a score column ``s:v`` for each
    listed variable, initialized from the row's cell (with the scheme's
    per-row positional adjustment applied, when defined).

    ``scale_by_count`` selects the counts-incorporated discipline.
    """

    child: PlanNode
    vars: tuple[str, ...]
    scale_by_count: bool = False

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, *children: PlanNode) -> PlanNode:
        (child,) = children
        return replace(self, child=child)

    @property
    def position_vars(self) -> tuple[str, ...]:
        return self.child.position_vars

    def label(self) -> str:
        return f"pi[alpha: {', '.join(self.vars)}]"


@dataclass(frozen=True, eq=False)
class CombinePhi(PlanNode):
    """Projection hosting the scoring plan Phi: folds the per-variable
    score columns of each row into a single ``s`` column with the
    conjunctive/disjunctive combinators.  Position columns are dropped —
    nothing above a Phi combination inspects positions."""

    child: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, *children: PlanNode) -> PlanNode:
        (child,) = children
        return replace(self, child=child)

    @property
    def position_vars(self) -> tuple[str, ...]:
        return ()

    def label(self) -> str:
        return "pi[Phi]"


@dataclass(frozen=True, eq=False)
class GroupScore(PlanNode):
    """Group-by-document hosting the alternate combinator: folds every
    score column across a document's rows, in row order, emitting one row
    per document (multiplicity = sum of input multiplicities)."""

    child: PlanNode
    counts_incorporated: bool = False

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, *children: PlanNode) -> PlanNode:
        (child,) = children
        return replace(self, child=child)

    @property
    def position_vars(self) -> tuple[str, ...]:
        return ()

    @property
    def counted(self) -> bool:
        return True

    def label(self) -> str:
        return "gamma[alt]"


@dataclass(frozen=True, eq=False)
class Finalize(PlanNode):
    """Projection hosting ``omega``: emits the final (doc, score) pairs."""

    child: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, *children: PlanNode) -> PlanNode:
        (child,) = children
        return replace(self, child=child)

    @property
    def position_vars(self) -> tuple[str, ...]:
        return ()

    def label(self) -> str:
        return "pi[omega]"


@dataclass(frozen=True, eq=False)
class AlternateElim(PlanNode):
    """The novel alternate-elimination operator ``delta`` (Section 5.2.3).

    Valid only for constant scoring schemes, where any one match scores
    the document: emits the first row of each document and signals the
    subplan to skip the document's remaining tuples.
    """

    child: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, *children: PlanNode) -> PlanNode:
        (child,) = children
        return replace(self, child=child)

    @property
    def position_vars(self) -> tuple[str, ...]:
        return self.child.position_vars

    @property
    def counted(self) -> bool:
        # delta discards multiplicity along with the duplicate matches.
        return False

    def label(self) -> str:
        return "delta[doc]"


def score_vars(node: PlanNode) -> tuple[str, ...]:
    """Score columns produced by ``node``, in schema order."""
    if isinstance(node, ScoreInit):
        inherited = score_vars(node.child)
        return inherited + tuple(v for v in node.vars if v not in inherited)
    if isinstance(node, CombinePhi):
        return ("s",)
    if isinstance(node, (GroupScore, AlternateElim)):
        return score_vars(node.child)
    if isinstance(node, Finalize):
        return ("score",)
    children = node.children()
    if not children:
        return ()
    out: list[str] = []
    for child in children:
        for v in score_vars(child):
            if v not in out:
                out.append(v)
    return tuple(out)


def validate_plan(root: PlanNode) -> None:
    """Structural sanity checks on a complete GRAFT plan."""
    if not isinstance(root, Finalize):
        raise PlanError("a complete GRAFT plan must end in Finalize (omega)")
