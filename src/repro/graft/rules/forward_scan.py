"""Forward-scan joins (Section 5.2.2).

Botev et al.'s PPRED evaluation strategy as a physical join: a stateless
zig-zag join that advances both inputs forward only and finds at most one
match per document.  "The forward-scan join may be used as a physical join
operator in GRAFT queries, but only for very specific scoring schemes:
the scheme must be constant, since the forward-scan join may miss some
matches."

A join qualifies when every predicate evaluated in it belongs to the PPRED
(forward) class; predicate-free joins gain nothing from the technique and
are left as zig-zag merge joins.
"""

from __future__ import annotations

from dataclasses import replace

from repro.graft.rules.base import map_plan
from repro.ma.nodes import Join, PlanNode
from repro.mcalc.predicates import get_predicate


def apply_forward_scan_joins(plan: PlanNode) -> PlanNode:
    """Mark qualifying joins to execute as forward-scan joins."""

    def rewrite(node: PlanNode) -> PlanNode:
        if (
            isinstance(node, Join)
            and node.predicates
            and node.algorithm == "merge"
            and all(get_predicate(p.name).forward_class for p in node.predicates)
        ):
            return replace(node, algorithm="forward")
        return node

    return map_plan(plan, rewrite)


#: Rewrite-log identity of this module's rule (Table 1 row name).
RULE_NAME = "forward-scan-join"


def rule_summary(before: PlanNode, after: PlanNode) -> str:
    forward = sum(
        1 for n in after.walk()
        if isinstance(n, Join) and n.algorithm == "forward"
    )
    return (f"converted {forward} join(s) to single-pass forward scans"
            if forward else "no joins qualify for forward scanning")
