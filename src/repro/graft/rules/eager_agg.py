"""Eager aggregation (Section 5.2.1, after Yan & Larson).

"One way to avoid full materialization of match tables is to eagerly
aggregate the matches in intermediate results by pushing group-bys down
the plan."  Requirements (Table 1): the alternate combinator must be fully
associative, and the scheme must not be row-first (a pushed-down group-by
hosting the alternate combinator would cross a projection hosting the
conjunctive/disjunctive combinators).

The rewrite rebuilds the scoring arrangement over the (already pushed,
counted, reordered) matching subplan:

* at the lowest subtree whose variables no outer predicate needs, a
  projection hosting alpha (scaled by the row multiplicity) and a pushed
  group-by hosting the alternate combinator collapse the subtree to one
  row per document;
* physical joins above cross-scale each side's pre-aggregated score
  columns by the other side's multiplicity (see
  :mod:`repro.exec.join_ops`), maintaining the counts-incorporated
  invariant;
* the plan tops out with the Phi projection and omega, column-first.

The global sort is dropped: the rule is additionally gated on a
commutative alternate combinator, because partially aggregated streams
meet in document-stream order rather than canonical table order.
"""

from __future__ import annotations

from repro.errors import OptimizationError
from repro.graft.canonical import QueryInfo
from repro.graft.plan import (
    CombinePhi,
    Finalize,
    GroupScore,
    ScoreInit,
    score_vars,
)
from repro.graft.rules.sort_elim import apply_sort_elimination
from repro.ma.nodes import (
    AntiJoin,
    Join,
    PlanNode,
    Select,
    Union,
)


def apply_eager_aggregation(
    matching: PlanNode, info: QueryInfo
) -> PlanNode:
    """Build the eager-aggregation plan over ``matching`` (the matching
    subplan, scoring stripped).  Returns a complete plan (Finalize root).
    """
    if info.direction == "row":
        raise OptimizationError("eager aggregation is invalid row-first")
    matching = apply_sort_elimination(matching)
    pushed = _push(matching, frozenset())
    root = _ensure_aggregated(pushed)
    return Finalize(CombinePhi(root))


def _push(node: PlanNode, pending: frozenset[str]) -> PlanNode:
    """Push aggregation to the lowest *profitable* points: subtrees that
    may emit several rows per document and whose positions no outer
    predicate still needs.  Single-row-per-document subtrees (counted
    leaves, joins thereof) are left unaggregated — scoring them early
    would pay alpha for every probed document instead of only the final
    answers."""
    if isinstance(node, Join):
        needed = pending.union(*[set(p.vars) for p in node.predicates]) \
            if node.predicates else pending
        left = _push(node.left, needed)
        right = _push(node.right, needed)
        new = node.with_children(left, right)
        if pending & set(new.position_vars):
            return new
        if node.predicates:
            # Cross products filtered by predicates are the multi-row
            # sources worth collapsing before further joins.
            return _ensure_aggregated(new)
        return new
    if isinstance(node, Union):
        branches = [_push(b, pending) for b in _flatten_union(node)]
        if not (pending & set(node.position_vars)):
            branches = [
                _ensure_aggregated(b) if _multi_row(b) else b
                for b in branches
            ]
        return _rebuild_union(branches)
    if isinstance(node, Select):
        needed = pending.union(*[set(p.vars) for p in node.predicates])
        inner = node.with_children(_push(node.child, needed))
        if pending & set(node.position_vars) or not _multi_row(inner):
            return inner
        return _ensure_aggregated(inner)
    if isinstance(node, AntiJoin):
        left = _push(node.left, pending)
        return node.with_children(left, node.right)
    # Leaves and counting chains: aggregate only raw (multi-row) atoms.
    if pending & set(node.position_vars) or not _multi_row(node):
        return node
    return _ensure_aggregated(node)


def _multi_row(node: PlanNode) -> bool:
    """May this subtree emit more than one row per document?"""
    from repro.ma.nodes import Atom, GroupCount, PreCountAtom

    if isinstance(node, (PreCountAtom, GroupCount, GroupScore)):
        return False
    if isinstance(node, Atom):
        return True
    if isinstance(node, Union):
        # Each branch contributes rows; bounded by branch count when the
        # branches themselves are single-row, which the top group-by
        # absorbs cheaply.
        return True
    children = node.children()
    if not children:
        return True
    return any(_multi_row(c) for c in children)


def _flatten_union(node: PlanNode) -> list[PlanNode]:
    if isinstance(node, Union):
        return _flatten_union(node.left) + _flatten_union(node.right)
    return [node]


def _rebuild_union(branches: list[PlanNode]) -> PlanNode:
    tree = branches[0]
    for branch in branches[1:]:
        tree = Union(tree, branch)
    return tree


def _ensure_aggregated(node: PlanNode) -> PlanNode:
    if isinstance(node, GroupScore):
        return node
    already = set(score_vars(node))
    raw = tuple(v for v in node.position_vars if v not in already)
    if raw:
        node = ScoreInit(node, raw, scale_by_count=True)
    return GroupScore(node, counts_incorporated=True)


#: Rewrite-log identity of this module's rule (Table 1 row name).
RULE_NAME = "eager-aggregation"


def rule_summary(before: PlanNode, after: PlanNode) -> str:
    from repro.graft.rules.base import count_nodes

    pushed = count_nodes(after, GroupScore)
    joins = count_nodes(after, Join, Union)
    return (f"pushed {pushed} partial aggregation(s) below "
            f"{joins} join/union operator(s)" if pushed
            else "nothing to aggregate eagerly")
