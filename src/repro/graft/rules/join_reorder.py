"""Join reordering (Section 5.2.1).

The canonical join order follows keyword order; with index statistics in
hand, the optimizer reorders predicate-free join chains so the most
selective (shortest-postings) inputs drive the zig-zag intersection.
Chains are flattened, subtrees ordered by estimated cardinality, and the
tree rebuilt right-deep (the canonical shape).  Joins carrying predicates
are kept intact — their operand pairing is what makes the pushed
predicates evaluable — but participate in the ordering as single units.

Score aggregation is decoupled from joins, so no scoring scheme prohibits
this rule (Table 1); it runs before any scoring operators are pushed into
the matching subplan.
"""

from __future__ import annotations

from repro.graft.rules.base import map_plan
from repro.index.index import Index
from repro.ma.nodes import (
    Atom,
    Join,
    PlanNode,
    PreCountAtom,
    Union,
)


def _estimate(node: PlanNode, index: Index) -> int:
    """Rough output cardinality driver: the most selective atom below."""
    estimates: list[int] = []
    for sub in node.walk():
        if isinstance(sub, Atom):
            estimates.append(index.total_positions(sub.keyword))
        elif isinstance(sub, PreCountAtom):
            estimates.append(index.document_frequency(sub.keyword))
    if not estimates:
        return 0
    if isinstance(node, Union):
        return sum(estimates)
    return min(estimates)


def apply_join_reordering(
    plan: PlanNode, index: Index, cost_based: bool = False
) -> PlanNode:
    """Reorder predicate-free join chains, cheapest subtree first.

    ``cost_based=True`` orders each chain by exhaustive cost estimation
    over left-deep orders (the paper's deferred future work, implemented
    in :mod:`repro.graft.cost`) instead of the rarest-first heuristic.
    """

    def rewrite(node: PlanNode) -> PlanNode:
        if not isinstance(node, Join) or node.predicates:
            return node
        # Only rewrite chain heads: a predicate-free join whose parent is
        # also a predicate-free join will be flattened into the parent's
        # chain, so handle the topmost one (map_plan is bottom-up; the
        # chain head sees already-flattened children and re-sorts — the
        # extra sorts of inner heads are redundant but harmless).
        parts = _flatten(node)
        if cost_based:
            from repro.graft.cost import best_join_order

            parts = best_join_order(parts, index)
        else:
            parts.sort(key=lambda p: _estimate(p, index))
        # Left-deep, most selective first: the accumulating (small) left
        # stream drives the zig-zag probes into each larger stream, so
        # dense inputs are only touched at the driver's documents.  (The
        # canonical plan stays right-deep, as in the paper; this is the
        # reordering optimization.)
        tree = parts[0]
        for part in parts[1:]:
            tree = Join(tree, part)
        return tree

    return map_plan(plan, rewrite)


def _flatten(node: PlanNode) -> list[PlanNode]:
    if isinstance(node, Join) and not node.predicates:
        return _flatten(node.left) + _flatten(node.right)
    return [node]


#: Rewrite-log identity of this module's rule (Table 1 row name).
RULE_NAME = "join-reordering"


def _leaf_keywords(plan: PlanNode) -> list[str]:
    return [
        n.keyword for n in plan.walk()
        if isinstance(n, (Atom, PreCountAtom))
    ]


def rule_summary(before: PlanNode, after: PlanNode) -> str:
    was, now = _leaf_keywords(before), _leaf_keywords(after)
    if was == now:
        return "join order already optimal"
    return f"reordered leaf scans: {', '.join(was)} -> {', '.join(now)}"
