"""Alternate elimination (novel, Section 5.2.3).

For constant scoring schemes "alternate aggregation is unnecessary since
the score of any match is the document score": group-by operators hosting
the alternate combinator are replaced by the alternate-elimination
operator delta, which emits the first match of each document and signals
the subplan to skip the rest.

This rule performs three rewrites, all valid only under constant schemes:

1. the top ``GroupScore`` (hosting only alternate aggregations) becomes a
   ``delta`` — the paper's ``gamma_{A|B} == delta_A`` equivalence;
2. the new ``delta`` commutes below the per-row alpha projection so
   initialization runs once per document instead of once per match;
3. eager-counting group-bys are likewise replaced by ``delta`` — under a
   constant scheme the multiplicities they maintain can never influence a
   score (the alternate combinator is idempotent), so the first row of
   the group is as good as the count of all of them.
"""

from __future__ import annotations

from repro.errors import OptimizationError
from repro.graft.plan import AlternateElim, GroupScore, ScoreInit
from repro.graft.rules.base import map_plan
from repro.ma.nodes import GroupCount, PlanNode


def apply_alternate_elimination(plan: PlanNode) -> PlanNode:
    """Replace alternate-aggregating group-bys with delta operators."""

    def rewrite(node: PlanNode) -> PlanNode:
        if isinstance(node, GroupCount):
            return AlternateElim(node.child)
        if isinstance(node, GroupScore):
            child = node.child
            if isinstance(child, ScoreInit):
                if child.scale_by_count:
                    raise OptimizationError(
                        "alternate elimination cannot replace aggregation "
                        "in a counts-incorporated (eager aggregation) plan"
                    )
                # delta commutes with the per-row projection hosting alpha.
                return ScoreInit(
                    AlternateElim(child.child), child.vars, child.scale_by_count
                )
            return AlternateElim(child)
        return node

    return map_plan(plan, rewrite)


#: Rewrite-log identity of this module's rule (Table 1 row name).
RULE_NAME = "alternate-elimination"


def rule_summary(before, after) -> str:
    from repro.graft.rules.base import count_nodes

    deltas = count_nodes(after, AlternateElim)
    replaced = count_nodes(before, GroupScore) - count_nodes(after, GroupScore)
    if not deltas:
        return "no alternate aggregations to eliminate"
    return (f"replaced {replaced} group-by(s) with {deltas} "
            f"first-match delta(s)")
