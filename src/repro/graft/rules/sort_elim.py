"""Sort elimination (Section 5.2.1).

"Canonical GRAFT plans have a single sort operator which guarantees a
well-defined order to matches in the match table.  This order is necessary
for scoring schemes where the alternate combinator is non-commutative.
When it commutes, the order is irrelevant and the sort operator may be
removed."  The optimizer gates this rule on ``alt_commutes``.
"""

from __future__ import annotations

from repro.graft.rules.base import map_plan
from repro.ma.nodes import PlanNode, Sort


def apply_sort_elimination(plan: PlanNode) -> PlanNode:
    """Remove every sort operator from the plan."""

    def rewrite(node: PlanNode) -> PlanNode:
        if isinstance(node, Sort):
            return node.child
        return node

    return map_plan(plan, rewrite)


#: Rewrite-log identity of this module's rule (Table 1 row name).
RULE_NAME = "sort-elimination"


def rule_summary(before: PlanNode, after: PlanNode) -> str:
    from repro.graft.rules.base import count_nodes

    removed = count_nodes(before, Sort) - count_nodes(after, Sort)
    return f"removed {removed} sort operator(s)" if removed \
        else "no sort operators to remove"
