"""Position forgetting, eager counting, and pre-counting (Section 5.2).

The pre-counting rewrite chain of Section 5.2.3::

    A(d, p, k)                                  the raw position scan
    -> pi_d(A(d, p, k))                         positions forgotten
    -> gamma_{d | COUNT(*)}(pi_d(A(d, p, k)))   identical rows counted
    -> CA(d, p, k)                              term-document index scan

The first two steps are *eager counting* over a position scan — the
paper's Figure-3 baseline; the last step is the pre-counting index swap
that replaces an O(positions) scan with an O(documents) scan.

Positions of a variable may only be forgotten when (a) no full-text
predicate constrains the variable — it is one of the query's "free
keywords" — and (b) the variable is non-positional for the selected scheme
(Lucene's per-query refinement applies here: only its phrase/proximity
columns are positional).
"""

from __future__ import annotations

from repro.graft.rules.base import map_plan
from repro.graft.canonical import QueryInfo
from repro.ma.nodes import (
    Atom,
    GroupCount,
    PlanNode,
    PositionProject,
    PreCountAtom,
)
from repro.sa.scheme import ScoringScheme


def countable_vars(info: QueryInfo, scheme: ScoringScheme) -> set[str]:
    """Variables whose positions a plan may forget: free keywords
    (Section 5.2.3) that are non-positional under the scheme."""
    free = set(info.query.free_keyword_vars())
    positional = scheme.positional_vars(info.query)
    return free - positional


def apply_eager_counting(
    plan: PlanNode, info: QueryInfo, scheme: ScoringScheme
) -> PlanNode:
    """Forget and count every countable leaf:
    ``A -> gamma_count(pi_d(A))``."""
    allowed = countable_vars(info, scheme)

    def rewrite(node: PlanNode) -> PlanNode:
        if isinstance(node, Atom) and node.var in allowed:
            return GroupCount(PositionProject(node, (node.var,)))
        return node

    return map_plan(plan, rewrite)


def apply_pre_counting(plan: PlanNode, info: QueryInfo, scheme: ScoringScheme) -> PlanNode:
    """The index swap: ``gamma_count(pi_d(A)) -> CA``."""
    allowed = countable_vars(info, scheme)

    def rewrite(node: PlanNode) -> PlanNode:
        if (
            isinstance(node, GroupCount)
            and isinstance(node.child, PositionProject)
            and isinstance(node.child.child, Atom)
            and node.child.child.var in allowed
            and node.child.vars == (node.child.child.var,)
        ):
            atom = node.child.child
            return PreCountAtom(atom.var, atom.keyword)
        return node

    return map_plan(plan, rewrite)


#: Rewrite-log identities of this module's two chained rules.
RULE_NAME_EAGER = "eager-counting"
RULE_NAME_PRE = "pre-counting"


def eager_counting_summary(before: PlanNode, after: PlanNode) -> str:
    from repro.graft.rules.base import count_nodes

    groups = count_nodes(after, GroupCount) - count_nodes(before, GroupCount)
    return (f"forgot positions and counted rows under {groups} "
            f"group-count(s)" if groups > 0
            else "no countable free keywords")


def pre_counting_summary(before: PlanNode, after: PlanNode) -> str:
    from repro.graft.rules.base import count_nodes

    swapped = count_nodes(after, PreCountAtom) - count_nodes(before, PreCountAtom)
    return (f"swapped {swapped} position scan(s) for term-document scans"
            if swapped > 0 else "no counted scans to swap")
