"""Selection pushing (Section 5.2.1).

The canonical plan evaluates every full-text predicate in one selection
above all joins; this rule pushes each predicate to the lowest operator
with all of its variables in scope:

* into a join's predicate list when the variables straddle the join;
* through unions, into the (unique) branch binding all the variables —
  a predicate whose variables straddle union branches is *vacuously true*
  (every row has the empty symbol in at least one of its columns) and is
  dropped outright;
* predicates confined to one subtree keep descending.

Because score aggregation is decoupled from selection, "these
optimizations are not prohibited by any scoring schemes" (Table 1).
"""

from __future__ import annotations

from repro.errors import PlanError
from repro.graft.rules.base import map_plan
from repro.ma.nodes import (
    AntiJoin,
    Join,
    PlanNode,
    Select,
    Sort,
    Union,
)
from repro.mcalc.ast import Pred


def apply_selection_pushing(plan: PlanNode) -> PlanNode:
    """Push every Select's predicates down; removes emptied Selects."""

    def rewrite(node: PlanNode) -> PlanNode:
        if isinstance(node, Select):
            child = node.child
            for pred in node.predicates:
                child = _push(child, pred)
            return child
        return node

    return map_plan(plan, rewrite)


def _push(node: PlanNode, pred: Pred) -> PlanNode:
    needed = set(pred.vars)
    if isinstance(node, Join):
        if needed <= set(node.left.position_vars):
            return node.with_children(_push(node.left, pred), node.right)
        if needed <= set(node.right.position_vars):
            return node.with_children(node.left, _push(node.right, pred))
        return Join(
            node.left, node.right, node.predicates + (pred,), node.algorithm
        )
    if isinstance(node, Union):
        in_left = needed <= set(node.left.position_vars)
        in_right = needed <= set(node.right.position_vars)
        if in_left and in_right:
            return node.with_children(
                _push(node.left, pred), _push(node.right, pred)
            )
        if in_left:
            return node.with_children(_push(node.left, pred), node.right)
        if in_right:
            return node.with_children(node.left, _push(node.right, pred))
        # Variables straddle the branches: every union row carries the
        # empty symbol in some predicate column, so the predicate is
        # vacuous and disappears.
        return node
    if isinstance(node, AntiJoin):
        return node.with_children(_push(node.left, pred), node.right)
    if isinstance(node, Sort):
        return node.with_children(_push(node.child, pred))
    if isinstance(node, Select):
        return Select(node.child, node.predicates + (pred,))
    if needed <= set(node.position_vars):
        # A leaf (or opaque subtree) carrying all variables: select here.
        return Select(node, (pred,))
    raise PlanError(
        f"cannot place predicate {pred}: variables {sorted(needed)} not "
        f"available below {node.label()}"
    )


#: Rewrite-log identity of this module's rule (Table 1 row name).
RULE_NAME = "selection-pushing"


def rule_summary(before: PlanNode, after: PlanNode) -> str:
    """One line for the optimizer's rewrite log: where selections went."""
    from repro.graft.rules.base import count_nodes

    dissolved = count_nodes(before, Select) - count_nodes(after, Select)
    join_preds = sum(
        len(n.predicates) for n in after.walk() if isinstance(n, Join)
    )
    parts = []
    if dissolved:
        parts.append(f"{dissolved} selection(s) pushed")
    if join_preds:
        parts.append(f"{join_preds} predicate(s) now evaluate inside joins")
    return "; ".join(parts) or "no selections to push"
