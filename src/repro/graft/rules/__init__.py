"""Rewrite rules: one module per optimization of Section 5.2.

Every rule takes a plan (plus query/scheme context where needed) and
returns a rewritten plan; the optimizer consults the Table-1 validity
matrix (:mod:`repro.graft.validity`) before invoking any rule.
"""

from repro.graft.rules.alt_elim import apply_alternate_elimination
from repro.graft.rules.counting import (
    apply_eager_counting,
    apply_pre_counting,
    countable_vars,
)
from repro.graft.rules.eager_agg import apply_eager_aggregation
from repro.graft.rules.forward_scan import apply_forward_scan_joins
from repro.graft.rules.join_reorder import apply_join_reordering
from repro.graft.rules.selection_push import apply_selection_pushing
from repro.graft.rules.sort_elim import apply_sort_elimination

__all__ = [
    "apply_selection_pushing",
    "apply_sort_elimination",
    "apply_eager_counting",
    "apply_pre_counting",
    "countable_vars",
    "apply_alternate_elimination",
    "apply_eager_aggregation",
    "apply_forward_scan_joins",
    "apply_join_reordering",
]
