"""Rewrite rules: one module per optimization of Section 5.2.

Every rule takes a plan (plus query/scheme context where needed) and
returns a rewritten plan; the optimizer consults the Table-1 validity
matrix (:mod:`repro.graft.validity`) before invoking any rule.

Each module also carries observability metadata — a ``RULE_NAME``
matching its Table-1 row and a ``rule_summary(before, after)``
describing what the rewrite did to a specific plan — collected here in
:data:`RULE_SUMMARIES` for the optimizer's structured rewrite log
(:mod:`repro.obs.rewrite`).
"""

from repro.graft.rules import (
    alt_elim,
    counting,
    eager_agg,
    forward_scan,
    join_reorder,
    selection_push,
    sort_elim,
)
from repro.graft.rules.alt_elim import apply_alternate_elimination
from repro.graft.rules.counting import (
    apply_eager_counting,
    apply_pre_counting,
    countable_vars,
)
from repro.graft.rules.eager_agg import apply_eager_aggregation
from repro.graft.rules.forward_scan import apply_forward_scan_joins
from repro.graft.rules.join_reorder import apply_join_reordering
from repro.graft.rules.selection_push import apply_selection_pushing
from repro.graft.rules.sort_elim import apply_sort_elimination

#: Rule name -> ``summary(before, after)`` for the optimizer rewrite log.
RULE_SUMMARIES = {
    selection_push.RULE_NAME: selection_push.rule_summary,
    sort_elim.RULE_NAME: sort_elim.rule_summary,
    join_reorder.RULE_NAME: join_reorder.rule_summary,
    counting.RULE_NAME_EAGER: counting.eager_counting_summary,
    counting.RULE_NAME_PRE: counting.pre_counting_summary,
    eager_agg.RULE_NAME: eager_agg.rule_summary,
    alt_elim.RULE_NAME: alt_elim.rule_summary,
    forward_scan.RULE_NAME: forward_scan.rule_summary,
}

__all__ = [
    "apply_selection_pushing",
    "apply_sort_elimination",
    "apply_eager_counting",
    "apply_pre_counting",
    "countable_vars",
    "apply_alternate_elimination",
    "apply_eager_aggregation",
    "apply_forward_scan_joins",
    "apply_join_reordering",
    "RULE_SUMMARIES",
]
