"""Shared rewrite machinery."""

from __future__ import annotations

from typing import Callable

from repro.ma.nodes import PlanNode


def map_plan(node: PlanNode, fn: Callable[[PlanNode], PlanNode]) -> PlanNode:
    """Rebuild the tree bottom-up, applying ``fn`` to every node.

    ``fn`` receives nodes whose children are already rewritten; returning
    the node unchanged is the identity.
    """
    children = node.children()
    if children:
        new_children = tuple(map_plan(c, fn) for c in children)
        if any(a is not b for a, b in zip(new_children, children)):
            node = node.with_children(*new_children)
    return fn(node)


def plans_equal(a: PlanNode, b: PlanNode) -> bool:
    """Structural equality via the printed form (nodes use identity eq)."""
    from repro.graft.explain import explain

    return explain(a) == explain(b)


def count_nodes(plan: PlanNode, *types: type) -> int:
    """How many nodes of the given types the plan contains (rewrite-log
    summaries report their rules' effect as before/after node counts)."""
    return sum(1 for node in plan.walk() if isinstance(node, types))
