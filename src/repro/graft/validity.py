"""The optimization validity matrix — the paper's Table 1 as code.

"Each optimization listed can be applied when the selected scoring scheme
satisfies the operator and direction requirements listed in the same row."
The optimizer consults :func:`optimization_allowed` before applying any
rewrite; combining this matrix with a scheme's declared properties
regenerates Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import OptimizationError
from repro.sa.properties import Associativity, SchemeProperties


@dataclass(frozen=True)
class OptimizationSpec:
    """One row of Table 1."""

    name: str
    operator_requirement: str
    direction_requirement: str
    check: Callable[[SchemeProperties], bool]


def _always(props: SchemeProperties) -> bool:
    return True


#: Table 1, in the paper's row order.  The notes column of the paper maps
#: to ``operator_requirement`` / ``direction_requirement`` strings; the
#: ``check`` callables are what the optimizer actually evaluates.
OPTIMIZATIONS: tuple[OptimizationSpec, ...] = (
    OptimizationSpec(
        "sort-elimination",
        "alt commutes",
        "",
        lambda p: p.alt_commutes,
    ),
    OptimizationSpec("join-reordering", "", "", _always),
    OptimizationSpec("selection-pushing", "", "", _always),
    OptimizationSpec("zigzag-join", "", "", _always),
    OptimizationSpec(
        "forward-scan-join",
        "constant",
        "",
        lambda p: p.constant,
    ),
    OptimizationSpec(
        "alternate-elimination",
        "constant",
        "",
        lambda p: p.constant,
    ),
    OptimizationSpec(
        "eager-aggregation",
        "alt fully associative (and commutative: pushed partial "
        "aggregates meet in stream order, not table order)",
        "not row-first",
        lambda p: (
            p.alt_associates is Associativity.FULL
            and p.alt_commutes
            and p.directional != "row"
        ),
    ),
    OptimizationSpec("eager-counting", "", "", _always),
    OptimizationSpec(
        "pre-counting",
        "non-positional (per column)",
        "",
        # Per-query-positional schemes (Lucene) qualify: the rewrite only
        # ever forgets columns the scheme's refinement reports
        # non-positional for the query at hand.
        lambda p: not p.positional or p.positional_per_query,
    ),
    OptimizationSpec(
        "rank-join",
        "conj monotonically increasing",
        "diagonal",
        lambda p: p.conj_monotonic_increasing and p.diagonal,
    ),
    OptimizationSpec(
        "rank-union",
        "disj monotonically increasing",
        "diagonal",
        lambda p: p.disj_monotonic_increasing and p.diagonal,
    ),
)

_BY_NAME = {spec.name: spec for spec in OPTIMIZATIONS}


def optimization_allowed(name: str, props: SchemeProperties) -> bool:
    """Is the named optimization score-consistent for a scheme with these
    properties?  (Per-query refinements — e.g. Lucene's per-column
    positionality — are applied by the individual rewrite rules.)"""
    spec = _BY_NAME.get(name)
    if spec is None:
        raise OptimizationError(
            f"unknown optimization {name!r}; known: {sorted(_BY_NAME)}"
        )
    return spec.check(props)


def require_allowed(name: str, props: SchemeProperties) -> None:
    """Raise :class:`OptimizationError` when the optimization is invalid."""
    if not optimization_allowed(name, props):
        spec = _BY_NAME[name]
        requirement = spec.operator_requirement or "-"
        direction = spec.direction_requirement or "-"
        raise OptimizationError(
            f"{name} is not score-consistent for this scheme "
            f"(requires: {requirement}; direction: {direction})"
        )


def requirement_text(name: str) -> str:
    """The Table-1 requirement for an optimization, as one phrase.

    Used verbatim as the rewrite-log verdict when the validity gate
    rejects a rule, so EXPLAIN output cites the same requirement the
    paper's table does.
    """
    spec = _BY_NAME.get(name)
    if spec is None:
        raise OptimizationError(
            f"unknown optimization {name!r}; known: {sorted(_BY_NAME)}"
        )
    parts = []
    if spec.operator_requirement:
        parts.append(f"requires {spec.operator_requirement}")
    if spec.direction_requirement:
        parts.append(f"direction {spec.direction_requirement}")
    return "; ".join(parts) if parts else "unrestricted"


def allowed_optimizations(props: SchemeProperties) -> list[str]:
    """All optimizations valid for a scheme — one column of Table 3."""
    return [spec.name for spec in OPTIMIZATIONS if spec.check(props)]


def table1_rows() -> list[dict[str, str]]:
    """Render Table 1 for reports: one dict per optimization."""
    return [
        {
            "optimization": spec.name,
            "operator requirement": spec.operator_requirement or "-",
            "direction requirement": spec.direction_requirement or "-",
        }
        for spec in OPTIMIZATIONS
    ]
