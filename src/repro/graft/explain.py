"""Plan pretty-printing, in the style of the paper's Plan figures."""

from __future__ import annotations

from repro.index.index import Index
from repro.ma.nodes import PlanNode


def explain(plan: PlanNode, indent: str = "  ", index: Index | None = None) -> str:
    """Render a plan as an indented operator tree, root first.

    With an ``index``, every line is padded to a common width and
    annotated with the cost model's per-node estimates
    (``[est docs~D rows~R cost~C]``, see :mod:`repro.graft.cost`); nodes
    the model cannot estimate are annotated ``[est n/a]``.  Without an
    index the output is the bare tree, byte-identical to earlier
    releases (structural plan comparisons rely on this form).
    """
    entries: list[tuple[str, PlanNode]] = []

    def visit(node: PlanNode, depth: int) -> None:
        entries.append((f"{indent * depth}{node.label()}", node))
        for child in node.children():
            visit(child, depth + 1)

    visit(plan, 0)
    if index is None:
        return "\n".join(line for line, _ in entries)

    from repro.graft.cost import estimate

    width = max(len(line) for line, _ in entries)
    lines = []
    for line, node in entries:
        try:
            est = estimate(node, index)
            note = f"[est docs~{est.docs:.0f} rows~{est.rows:.0f} cost~{est.cost:.0f}]"
        except Exception:
            note = "[est n/a]"
        lines.append(f"{line.ljust(width)}  {note}")
    return "\n".join(lines)
