"""Plan pretty-printing, in the style of the paper's Plan figures."""

from __future__ import annotations

from repro.ma.nodes import PlanNode


def explain(plan: PlanNode, indent: str = "  ") -> str:
    """Render a plan as an indented operator tree, root first."""
    lines: list[str] = []

    def visit(node: PlanNode, depth: int) -> None:
        lines.append(f"{indent * depth}{node.label()}")
        for child in node.children():
            visit(child, depth + 1)

    visit(plan, 0)
    return "\n".join(lines)
