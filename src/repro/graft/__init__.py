"""GRAFT: the Generic Ranking Algebra for Full Text (Sections 4.3, 5).

GRAFT integrates the Matching Algebra and the Scoring Algebra: SA operators
are *hosted* by projection and group-by plan nodes.  This package holds the
integrated plan model, the canonical score-isolated plan builders, the
Table-1 validity matrix, the rewrite rules (classical and novel), and the
property-gated heuristic optimizer of Section 8.
"""

from repro.graft.canonical import QueryInfo, canonical_plan, make_query_info
from repro.graft.cost import estimate, explain_with_costs
from repro.graft.explain import explain
from repro.graft.optimizer import OptimizedResult, Optimizer, OptimizerOptions
from repro.graft.plan import (
    AlternateElim,
    CombinePhi,
    Finalize,
    GroupScore,
    ScoreInit,
)
from repro.graft.validity import (
    OPTIMIZATIONS,
    allowed_optimizations,
    optimization_allowed,
    table1_rows,
)

__all__ = [
    "QueryInfo",
    "make_query_info",
    "canonical_plan",
    "ScoreInit",
    "CombinePhi",
    "GroupScore",
    "Finalize",
    "AlternateElim",
    "Optimizer",
    "OptimizerOptions",
    "OptimizedResult",
    "OPTIMIZATIONS",
    "optimization_allowed",
    "allowed_optimizations",
    "table1_rows",
    "explain",
    "estimate",
    "explain_with_costs",
]
