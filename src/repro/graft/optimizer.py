"""The property-gated heuristic optimizer (Section 8, "Plans and
Optimizer").

"Starting with a canonical plan, first the selection pushing rewrite is
applied iteratively until the plan converges.  Then either the eager
aggregation or eager counting rewrite is applied similarly.  Eager
counting is used when the scoring scheme is constant (in this case eager
counting always performs better) or if the scoring scheme does not support
eager aggregation."  We reproduce that pipeline, extended with the novel
rewrites (alternate elimination, pre-counting), sort elimination, join
reordering and (optionally) forward-scan joins — each gated by the
Table-1 validity matrix against the scheme's declared properties.

Every gate goes through :func:`repro.graft.validity.optimization_allowed`:
the optimizer never needs to know *why* a scheme allows or forbids a
rewrite, which is precisely the isolation the paper's desideratum (4)
demands.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graft.canonical import QueryInfo, canonical_plan, make_query_info
from repro.graft.plan import CombinePhi, Finalize, GroupScore, ScoreInit
from repro.graft.rules import (
    apply_alternate_elimination,
    apply_eager_aggregation,
    apply_eager_counting,
    apply_forward_scan_joins,
    apply_join_reordering,
    apply_pre_counting,
    apply_selection_pushing,
    apply_sort_elimination,
    countable_vars,
)
from repro.graft.validity import optimization_allowed
from repro.index.index import Index
from repro.ma.nodes import PlanNode, Sort
from repro.ma.translate import matching_subplan
from repro.mcalc.ast import Query
from repro.sa.scheme import ScoringScheme


@dataclass
class OptimizerOptions:
    """Which rewrites the optimizer may attempt.

    Validity gating still applies on top: enabling a rewrite here only
    matters when the scheme's properties allow it.  Benchmarks toggle
    these to isolate individual optimizations (Figure 3).
    """

    selection_pushing: bool = True
    join_reordering: bool = True
    eager_counting: bool = True
    pre_counting: bool = True
    eager_aggregation: bool = True
    alternate_elimination: bool = True
    sort_elimination: bool = True
    forward_scan: bool = False
    # Extension: order join chains by exhaustive cost estimation instead
    # of the rarest-first heuristic (see repro.graft.cost).
    cost_based_join_order: bool = False


@dataclass
class OptimizedResult:
    """An optimized plan plus its provenance."""

    plan: PlanNode
    info: QueryInfo
    applied: list[str] = field(default_factory=list)


class Optimizer:
    """Rewrites canonical score-isolated plans for a plug-in scheme."""

    def __init__(
        self,
        scheme: ScoringScheme,
        index: Index | None = None,
        options: OptimizerOptions | None = None,
    ):
        self.scheme = scheme
        self.index = index
        self.options = options if options is not None else OptimizerOptions()

    # -- gates ---------------------------------------------------------------

    def _allowed(self, name: str) -> bool:
        return optimization_allowed(name, self.scheme.properties)

    # -- pipeline ------------------------------------------------------------

    def optimize(self, query: Query) -> OptimizedResult:
        """Produce an optimized, score-consistent plan for ``query``."""
        opts = self.options
        scheme = self.scheme
        info = make_query_info(query, scheme)
        applied: list[str] = []

        matching = matching_subplan(query)

        if opts.selection_pushing and self._allowed("selection-pushing"):
            matching = apply_selection_pushing(matching)
            applied.append("selection-pushing")

        if (
            opts.join_reordering
            and self.index is not None
            and self._allowed("join-reordering")
        ):
            matching = apply_join_reordering(
                matching, self.index, cost_based=opts.cost_based_join_order
            )
            applied.append(
                "join-reordering(cost)" if opts.cost_based_join_order
                else "join-reordering"
            )

        counting_applied = False
        if opts.eager_counting and countable_vars(info, scheme):
            # Table 1 leaves eager counting unrestricted; the position
            # forgetting that precedes it is the per-column non-positional
            # check inside countable_vars.
            matching = apply_eager_counting(matching, info, scheme)
            applied.append("eager-counting")
            counting_applied = True

        if (
            counting_applied
            and opts.pre_counting
            and self._allowed("pre-counting")
        ):
            matching = apply_pre_counting(matching, info, scheme)
            applied.append("pre-counting")

        if opts.forward_scan and self._allowed("forward-scan-join"):
            forward = apply_forward_scan_joins(matching)
            if forward is not matching or _has_forward(forward):
                matching = forward
                applied.append("forward-scan-join")

        use_eager_agg = (
            opts.eager_aggregation
            and self._allowed("eager-aggregation")
            and not scheme.properties.constant
        )

        if use_eager_agg:
            plan = apply_eager_aggregation(matching, info)
            applied.append("eager-aggregation")
            applied.append("sort-elimination")
            return OptimizedResult(plan, info, applied)

        sort_eliminated = False
        if opts.sort_elimination and self._allowed("sort-elimination"):
            matching = apply_sort_elimination(matching)
            applied.append("sort-elimination")
            sort_eliminated = True
        elif not _has_sort(matching):
            # The canonical sort must survive for non-commutative schemes.
            matching = Sort(matching, query.free_vars)

        plan = self._attach_canonical_scoring(matching, info)

        if (
            opts.alternate_elimination
            and self._allowed("alternate-elimination")
            and sort_eliminated
        ):
            plan = apply_alternate_elimination(plan)
            applied.append("alternate-elimination")

        return OptimizedResult(plan, info, applied)

    def canonical(self, query: Query) -> OptimizedResult:
        """The unoptimized canonical score-isolated plan."""
        plan, info = canonical_plan(query, self.scheme)
        return OptimizedResult(plan, info, [])

    # -- helpers ---------------------------------------------------------------

    def _attach_canonical_scoring(
        self, matching: PlanNode, info: QueryInfo
    ) -> PlanNode:
        initialized = ScoreInit(matching, info.free_vars)
        if info.direction == "row":
            return Finalize(GroupScore(CombinePhi(initialized)))
        return Finalize(CombinePhi(GroupScore(initialized)))


def _has_sort(plan: PlanNode) -> bool:
    return any(isinstance(n, Sort) for n in plan.walk())


def _has_forward(plan: PlanNode) -> bool:
    from repro.ma.nodes import Join

    return any(
        isinstance(n, Join) and n.algorithm == "forward" for n in plan.walk()
    )
