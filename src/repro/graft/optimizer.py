"""The property-gated heuristic optimizer (Section 8, "Plans and
Optimizer").

"Starting with a canonical plan, first the selection pushing rewrite is
applied iteratively until the plan converges.  Then either the eager
aggregation or eager counting rewrite is applied similarly.  Eager
counting is used when the scoring scheme is constant (in this case eager
counting always performs better) or if the scoring scheme does not support
eager aggregation."  We reproduce that pipeline, extended with the novel
rewrites (alternate elimination, pre-counting), sort elimination, join
reordering and (optionally) forward-scan joins — each gated by the
Table-1 validity matrix against the scheme's declared properties.

Every gate goes through :func:`repro.graft.validity.optimization_allowed`:
the optimizer never needs to know *why* a scheme allows or forbids a
rewrite, which is precisely the isolation the paper's desideratum (4)
demands.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graft.canonical import QueryInfo, canonical_plan, make_query_info
from repro.graft.plan import CombinePhi, Finalize, GroupScore, ScoreInit
from repro.graft.rules import (
    RULE_SUMMARIES,
    apply_alternate_elimination,
    apply_eager_aggregation,
    apply_eager_counting,
    apply_forward_scan_joins,
    apply_join_reordering,
    apply_pre_counting,
    apply_selection_pushing,
    apply_sort_elimination,
    countable_vars,
)
from repro.graft.validity import optimization_allowed, requirement_text
from repro.index.index import Index
from repro.ma.nodes import PlanNode, Sort
from repro.ma.translate import matching_subplan
from repro.mcalc.ast import Query
from repro.obs.rewrite import RewriteEvent
from repro.obs.telemetry import span as _telemetry_span
from repro.sa.scheme import ScoringScheme


@dataclass
class OptimizerOptions:
    """Which rewrites the optimizer may attempt.

    Validity gating still applies on top: enabling a rewrite here only
    matters when the scheme's properties allow it.  Benchmarks toggle
    these to isolate individual optimizations (Figure 3).
    """

    selection_pushing: bool = True
    join_reordering: bool = True
    eager_counting: bool = True
    pre_counting: bool = True
    eager_aggregation: bool = True
    alternate_elimination: bool = True
    sort_elimination: bool = True
    forward_scan: bool = False
    # Extension: order join chains by exhaustive cost estimation instead
    # of the rarest-first heuristic (see repro.graft.cost).
    cost_based_join_order: bool = False


@dataclass
class OptimizedResult:
    """An optimized plan plus its provenance.

    ``applied`` is the flat list of fired rule names (kept for
    benchmarks and reports); ``rewrites`` is the structured log — one
    :class:`repro.obs.rewrite.RewriteEvent` per rule the optimizer
    *considered*, including rules the validity matrix or the options
    gated off, with cost-model estimates bracketing each fired rule
    when the optimizer holds an index.
    """

    plan: PlanNode
    info: QueryInfo
    applied: list[str] = field(default_factory=list)
    rewrites: list[RewriteEvent] = field(default_factory=list)


class Optimizer:
    """Rewrites canonical score-isolated plans for a plug-in scheme."""

    def __init__(
        self,
        scheme: ScoringScheme,
        index: Index | None = None,
        options: OptimizerOptions | None = None,
    ):
        self.scheme = scheme
        self.index = index
        self.options = options if options is not None else OptimizerOptions()

    # -- gates ---------------------------------------------------------------

    def _allowed(self, name: str) -> bool:
        return optimization_allowed(name, self.scheme.properties)

    # -- pipeline ------------------------------------------------------------

    def _estimated_cost(self, plan: PlanNode) -> float | None:
        """Cost-model estimate for the rewrite log; None without an index
        (or for plan shapes the model does not cover)."""
        if self.index is None:
            return None
        try:
            from repro.graft.cost import estimate

            return estimate(plan, self.index).cost
        except Exception:
            return None

    def optimize(self, query: Query) -> OptimizedResult:
        """Produce an optimized, score-consistent plan for ``query``."""
        opts = self.options
        scheme = self.scheme
        # "canonicalize" covers building the query info and the matching
        # subplan (the paper's canonical form); the rule pipeline below
        # is the surrounding "optimize" phase.  The span reads the
        # request-telemetry contextvar and is a shared no-op when no
        # request is being traced.
        with _telemetry_span("canonicalize"):
            info = make_query_info(query, scheme)
            matching = matching_subplan(query)
        applied: list[str] = []
        rewrites: list[RewriteEvent] = []

        def skip(name: str, verdict: str, *, allowed: bool) -> None:
            rewrites.append(
                RewriteEvent(rule=name, allowed=allowed, applied=False, verdict=verdict)
            )

        def gate(name: str, enabled: bool) -> bool:
            """Record the event for a rule that will not run; True = run it."""
            if not enabled:
                skip(name, "disabled", allowed=self._allowed(name))
                return False
            if not self._allowed(name):
                skip(name, requirement_text(name), allowed=False)
                return False
            return True

        def fire(
            name: str, before: PlanNode, after: PlanNode, note: str = ""
        ) -> None:
            summary = RULE_SUMMARIES[name](before, after)
            if note:
                summary = f"{summary}; {note}" if summary else note
            rewrites.append(
                RewriteEvent(
                    rule=name,
                    allowed=True,
                    applied=True,
                    verdict="allowed",
                    summary=summary,
                    cost_before=self._estimated_cost(before),
                    cost_after=self._estimated_cost(after),
                )
            )

        if gate("selection-pushing", opts.selection_pushing):
            before = matching
            matching = apply_selection_pushing(matching)
            applied.append("selection-pushing")
            fire("selection-pushing", before, matching)

        if gate("join-reordering", opts.join_reordering):
            if self.index is None:
                skip("join-reordering", "no index statistics", allowed=True)
            else:
                before = matching
                matching = apply_join_reordering(
                    matching, self.index, cost_based=opts.cost_based_join_order
                )
                applied.append(
                    "join-reordering(cost)" if opts.cost_based_join_order
                    else "join-reordering"
                )
                fire(
                    "join-reordering",
                    before,
                    matching,
                    "cost-based" if opts.cost_based_join_order else "rarest-first",
                )

        counting_applied = False
        if not opts.eager_counting:
            skip("eager-counting", "disabled", allowed=True)
        elif not countable_vars(info, scheme):
            # Table 1 leaves eager counting unrestricted; the position
            # forgetting that precedes it is the per-column non-positional
            # check inside countable_vars.
            skip(
                "eager-counting",
                "no countable variables (every column positional for this query)",
                allowed=True,
            )
        else:
            before = matching
            matching = apply_eager_counting(matching, info, scheme)
            applied.append("eager-counting")
            counting_applied = True
            fire("eager-counting", before, matching)

        if gate("pre-counting", opts.pre_counting):
            if not counting_applied:
                skip("pre-counting", "eager counting did not fire", allowed=True)
            else:
                before = matching
                matching = apply_pre_counting(matching, info, scheme)
                applied.append("pre-counting")
                fire("pre-counting", before, matching)

        if gate("forward-scan-join", opts.forward_scan):
            forward = apply_forward_scan_joins(matching)
            if forward is not matching or _has_forward(forward):
                before = matching
                matching = forward
                applied.append("forward-scan-join")
                fire("forward-scan-join", before, matching)
            else:
                skip("forward-scan-join", "matched no joins", allowed=True)

        use_eager_agg = (
            opts.eager_aggregation
            and self._allowed("eager-aggregation")
            and not scheme.properties.constant
        )

        if use_eager_agg:
            plan = apply_eager_aggregation(matching, info)
            applied.append("eager-aggregation")
            applied.append("sort-elimination")
            fire("eager-aggregation", matching, plan)
            fire("sort-elimination", matching, plan, "subsumed by eager aggregation")
            skip(
                "alternate-elimination",
                "nothing to eliminate: eager aggregation already avoids "
                "materializing alternates",
                allowed=self._allowed("alternate-elimination"),
            )
            return OptimizedResult(plan, info, applied, rewrites)
        if opts.eager_aggregation and self._allowed("eager-aggregation"):
            skip(
                "eager-aggregation",
                "constant scheme: eager counting always performs better",
                allowed=True,
            )
        else:
            gate("eager-aggregation", opts.eager_aggregation)

        sort_eliminated = False
        if gate("sort-elimination", opts.sort_elimination):
            before = matching
            matching = apply_sort_elimination(matching)
            applied.append("sort-elimination")
            sort_eliminated = True
            fire("sort-elimination", before, matching)
        if not sort_eliminated and not _has_sort(matching):
            # The canonical sort must survive for non-commutative schemes.
            matching = Sort(matching, query.free_vars)

        plan = self._attach_canonical_scoring(matching, info)

        if gate("alternate-elimination", opts.alternate_elimination):
            if not sort_eliminated:
                skip(
                    "alternate-elimination",
                    "canonical sort retained (alternates meet in table order)",
                    allowed=True,
                )
            else:
                before = plan
                plan = apply_alternate_elimination(plan)
                applied.append("alternate-elimination")
                fire("alternate-elimination", before, plan)

        return OptimizedResult(plan, info, applied, rewrites)

    def canonical(self, query: Query) -> OptimizedResult:
        """The unoptimized canonical score-isolated plan."""
        with _telemetry_span("canonicalize"):
            plan, info = canonical_plan(query, self.scheme)
        return OptimizedResult(plan, info, [])

    # -- helpers ---------------------------------------------------------------

    def _attach_canonical_scoring(
        self, matching: PlanNode, info: QueryInfo
    ) -> PlanNode:
        initialized = ScoreInit(matching, info.free_vars)
        if info.direction == "row":
            return Finalize(GroupScore(CombinePhi(initialized)))
        return Finalize(CombinePhi(GroupScore(initialized)))


def _has_sort(plan: PlanNode) -> bool:
    return any(isinstance(n, Sort) for n in plan.walk())


def _has_forward(plan: PlanNode) -> bool:
    from repro.ma.nodes import Join

    return any(
        isinstance(n, Join) and n.algorithm == "forward" for n in plan.walk()
    )
