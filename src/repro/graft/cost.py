"""Plan cardinality and cost estimation (future-work extension).

The paper optimizes heuristically and notes "we expect a cost-based
optimizer to outperform the heuristic optimization we used.  Cost-based
optimization is beyond the scope of this work" (Section 8).  This module
supplies the missing estimator: index-statistics-driven cardinality and
cost estimates for every logical operator, an annotated plan printer, and
an exhaustive cost-based join orderer usable in place of the heuristic
one for small queries.

The model is deliberately simple (independence assumptions, uniform
position distributions) — the classic System-R starting point:

* an Atom scan costs its positions; a pre-count scan its documents;
* a join's document count multiplies selectivities
  (``docs_l * docs_r / N``); its per-document rows multiply;
* a positional predicate keeps a fraction of combinations proportional
  to the window it allows over the average document length;
* sorts cost ``rows * log(rows per doc)``; scoring costs one alpha per
  cell plus one combinator per row.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.graft.plan import (
    AlternateElim,
    CombinePhi,
    Finalize,
    GroupScore,
    ScoreInit,
)
from repro.index.index import Index
from repro.ma.nodes import (
    AntiJoin,
    Atom,
    GroupCount,
    Join,
    PlanNode,
    PositionProject,
    PreCountAtom,
    Select,
    Sort,
    Union,
)
from repro.mcalc.ast import Pred


@dataclass(frozen=True)
class PlanEstimate:
    """Estimated output size and cumulative cost of a subplan.

    Attributes:
        docs: Documents with at least one output row.
        rows: Total output rows across all documents.
        cost: Abstract work units to produce them (index entries touched,
            rows combined, cells scored).
    """

    docs: float
    rows: float
    cost: float

    @property
    def rows_per_doc(self) -> float:
        return self.rows / self.docs if self.docs else 0.0


def predicate_selectivity(pred: Pred, avg_doc_length: float) -> float:
    """Fraction of position combinations a predicate keeps."""
    length = max(avg_doc_length, 1.0)
    if pred.name == "DISTANCE":
        return min(1.0, 1.0 / length)
    if pred.name in ("PROXIMITY", "WINDOW"):
        span = pred.constants[0] if pred.constants else 1
        return min(1.0, (2.0 * span) / length)
    if pred.name == "ORDER":
        return 0.5
    # Unknown / plug-in predicates: assume moderately selective.
    return 0.2


def estimate(node: PlanNode, index: Index) -> PlanEstimate:
    """Estimate output size and cost of ``node`` over ``index``."""
    n_docs = max(index.num_docs, 1)
    avg_len = index.stats.avg_doc_length

    if isinstance(node, Atom):
        docs = index.document_frequency(node.keyword)
        rows = index.total_positions(node.keyword)
        return PlanEstimate(docs, rows, cost=rows)

    if isinstance(node, PreCountAtom):
        docs = index.document_frequency(node.keyword)
        return PlanEstimate(docs, docs, cost=docs)

    if isinstance(node, PositionProject):
        child = estimate(node.child, index)
        return PlanEstimate(child.docs, child.rows, child.cost + child.rows)

    if isinstance(node, GroupCount):
        child = estimate(node.child, index)
        # Identical-row groups collapse to one row per doc per distinct
        # cell combination; after forgetting, one per doc.
        return PlanEstimate(child.docs, child.docs, child.cost + child.rows)

    if isinstance(node, Join):
        left = estimate(node.left, index)
        right = estimate(node.right, index)
        docs = left.docs * right.docs / n_docs
        rows = docs * left.rows_per_doc * right.rows_per_doc
        cost = left.cost + right.cost + rows
        selectivity = 1.0
        for pred in node.predicates:
            selectivity *= predicate_selectivity(pred, avg_len)
        return PlanEstimate(
            docs * min(1.0, selectivity * 4 + 1e-9),
            rows * selectivity,
            cost,
        )

    if isinstance(node, Union):
        left = estimate(node.left, index)
        right = estimate(node.right, index)
        docs = min(float(n_docs), left.docs + right.docs)
        rows = left.rows + right.rows
        return PlanEstimate(docs, rows, left.cost + right.cost + rows)

    if isinstance(node, Select):
        child = estimate(node.child, index)
        selectivity = 1.0
        for pred in node.predicates:
            selectivity *= predicate_selectivity(pred, avg_len)
        return PlanEstimate(
            child.docs * min(1.0, selectivity * 4 + 1e-9),
            child.rows * selectivity,
            child.cost + child.rows,
        )

    if isinstance(node, Sort):
        child = estimate(node.child, index)
        per_doc = max(child.rows_per_doc, 1.0)
        return PlanEstimate(
            child.docs, child.rows,
            child.cost + child.rows * max(1.0, math.log2(per_doc)),
        )

    if isinstance(node, AntiJoin):
        left = estimate(node.left, index)
        right = estimate(node.right, index)
        keep = max(0.0, 1.0 - right.docs / n_docs)
        return PlanEstimate(
            left.docs * keep, left.rows * keep,
            left.cost + right.cost,
        )

    if isinstance(node, ScoreInit):
        child = estimate(node.child, index)
        cells = child.rows * len(node.vars)
        return PlanEstimate(child.docs, child.rows, child.cost + cells)

    if isinstance(node, CombinePhi):
        child = estimate(node.child, index)
        return PlanEstimate(child.docs, child.rows, child.cost + child.rows)

    if isinstance(node, GroupScore):
        child = estimate(node.child, index)
        return PlanEstimate(child.docs, child.docs, child.cost + child.rows)

    if isinstance(node, AlternateElim):
        child = estimate(node.child, index)
        # Emits the first row per doc; the skip signal saves (on average)
        # the rest of each group's production, modeled as one row's worth
        # of work per document instead of the full group.
        return PlanEstimate(child.docs, child.docs,
                            child.cost - child.rows + 2 * child.docs)

    if isinstance(node, Finalize):
        child = estimate(node.child, index)
        return PlanEstimate(child.docs, child.docs, child.cost + child.docs)

    raise TypeError(f"cannot estimate {type(node).__name__}")


def explain_with_costs(plan: PlanNode, index: Index, indent: str = "  ") -> str:
    """The plan tree annotated with per-subplan estimates."""
    lines: list[str] = []

    def visit(node: PlanNode, depth: int) -> None:
        e = estimate(node, index)
        lines.append(
            f"{indent * depth}{node.label()}  "
            f"[docs~{e.docs:.0f} rows~{e.rows:.0f} cost~{e.cost:.0f}]"
        )
        for child in node.children():
            visit(child, depth + 1)

    visit(plan, 0)
    return "\n".join(lines)


def best_join_order(
    parts: list[PlanNode], index: Index, max_exhaustive: int = 6
) -> list[PlanNode]:
    """Cost-based ordering of a predicate-free join chain.

    Exhaustive over left-deep orders for small chains; falls back to the
    greedy cheapest-first heuristic beyond ``max_exhaustive`` inputs.
    """
    from itertools import permutations

    def chain_cost(order: tuple[PlanNode, ...]) -> float:
        tree: PlanNode = order[0]
        for part in order[1:]:
            tree = Join(tree, part)
        return estimate(tree, index).cost

    if len(parts) <= 1:
        return list(parts)
    if len(parts) > max_exhaustive:
        return sorted(parts, key=lambda p: estimate(p, index).cost)
    best = min(permutations(parts), key=chain_cost)
    return list(best)
