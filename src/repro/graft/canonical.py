"""Canonical score-isolated plans (Section 4.3).

"There are two canonical score-isolated plans for any MCalc query which
compute scores in a row-first (column-first) manner.  Which one is used
depends on the directionality of the selected scoring scheme.  Both plans
share the same matching subplan."

* Row-first (Plan 6): alpha and Phi evaluated per match row in projections,
  then the alternate combinator in a group-by, then omega.
* Column-first (Plan 5): alpha in a projection, the alternate combinator
  per column in a group-by, then Phi over the column scores, then omega.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlanError
from repro.ma.nodes import PlanNode
from repro.ma.translate import matching_subplan
from repro.mcalc.ast import Pred, Query
from repro.mcalc.scoring_plan import PhiNode, derive_scoring_plan
from repro.graft.plan import CombinePhi, Finalize, GroupScore, ScoreInit
from repro.sa.scheme import ScoringScheme


@dataclass
class QueryInfo:
    """Everything the scoring side of a plan needs to know about a query.

    Shared by every scoring node of a plan, carried alongside the plan
    rather than inside each node so rewrites stay cheap.
    """

    query: Query
    phi: PhiNode
    direction: str
    predicates: tuple[Pred, ...] = field(default=())

    @property
    def free_vars(self) -> tuple[str, ...]:
        return self.query.free_vars

    @property
    def var_keywords(self) -> dict[str, str]:
        return self.query.var_keywords


def make_query_info(query: Query, scheme: ScoringScheme, direction: str | None = None) -> QueryInfo:
    """Build the :class:`QueryInfo` for (query, scheme).

    ``direction`` defaults to the scheme's declared directionality;
    diagonal schemes default to column-first, where aggregation shrinks
    rows earliest.
    """
    if direction is None:
        direction = scheme.properties.directional or "col"
    if direction not in ("row", "col"):
        raise PlanError(f"direction must be 'row' or 'col', got {direction!r}")
    if scheme.properties.directional and direction != scheme.properties.directional:
        raise PlanError(
            f"scheme {scheme.name} is {scheme.properties.directional}-first; "
            f"cannot score it {direction}-first"
        )
    return QueryInfo(
        query=query,
        phi=derive_scoring_plan(query),
        direction=direction,
        predicates=tuple(query.predicates()),
    )


def canonical_plan(
    query: Query,
    scheme: ScoringScheme,
    direction: str | None = None,
) -> tuple[PlanNode, QueryInfo]:
    """The canonical score-isolated plan for ``query`` under ``scheme``.

    Returns the plan root (a :class:`Finalize`) and the shared
    :class:`QueryInfo`.  The matching subplan below the scoring portion is
    exactly :func:`repro.ma.translate.matching_subplan`: right-deep joins
    in keyword order, one top selection, one top sort.
    """
    info = make_query_info(query, scheme, direction)
    matching = matching_subplan(query)
    initialized = ScoreInit(matching, query.free_vars)
    if info.direction == "row":
        plan = GroupScore(CombinePhi(initialized))
    else:
        plan = CombinePhi(GroupScore(initialized))
    return Finalize(plan), info
