"""The public facade: index a collection, pick a scoring scheme, search.

Example:
    >>> from repro import SearchEngine
    >>> engine = SearchEngine()
    >>> engine.add("a quick brown fox")
    >>> engine.add("the fox jumped over the quick dog")
    >>> results = engine.search('"quick brown fox"', scheme="sumbest")
    >>> [r.doc_id for r in results]
    [0]
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.corpus.analyzer import Analyzer
from repro.corpus.collection import DocumentCollection
from repro.errors import (
    ConfigError,
    GraftError,
    IndexError_,
    ResourceExhaustedError,
)
from repro.exec.cache import CacheConfig, LRUCache
from repro.exec.engine import execute, make_runtime, validate_top_k
from repro.exec.iterator import ExecutionMetrics, pull_doc
from repro.exec.limits import QueryGuard, QueryLimits
from repro.exec.topk import rank_join_applicable, rank_topk
from repro.obs.telemetry import current as _telemetry_current
from repro.obs.telemetry import maybe_span as _maybe_span

if TYPE_CHECKING:
    import pathlib

    from repro.exec.faults import FaultInjector
    from repro.index.shard import ShardedIndex
    from repro.index.store import IndexStore, StoreFaultInjector, StoreLock
    from repro.obs.audit import AuditConfig, AuditEvent, Auditor
    from repro.obs.qlog import QueryLog
    from repro.obs.rewrite import RewriteEvent
    from repro.obs.trace import TraceNode
from repro.graft.canonical import make_query_info
from repro.graft.explain import explain as explain_plan
from repro.graft.optimizer import Optimizer, OptimizerOptions
from repro.index.builder import build_index
from repro.index.index import Index
from repro.ma.match_table import MatchTable
from repro.ma.translate import matching_subplan
from repro.mcalc.ast import Query
from repro.mcalc.parser import parse_query
from repro.sa.context import IndexScoringContext, ScoringContext
from repro.sa.registry import get_scheme
from repro.sa.scheme import ScoringScheme


@dataclass(frozen=True)
class SearchResult:
    """One ranked answer."""

    doc_id: int
    score: float
    title: str = ""


@dataclass
class SearchOutcome:
    """Results plus execution provenance (plan, rewrites, work counters).

    ``degraded`` is True when a resource limit tripped under
    ``on_limit="partial"`` and the results are the correctly-ranked
    prefix of the documents scored before the trip; the tripped limit is
    recorded in ``metrics.limit_tripped`` and echoed in
    ``applied_optimizations`` as ``limit:<name>``.  ``limit_hit`` names
    that limit machine-readably (``"deadline_ms"``, ``"max_rows"``,
    ``"max_matches_per_doc"``; None when no limit tripped).

    ``rewrite_log`` is the optimizer's structured trace — one
    :class:`repro.obs.rewrite.RewriteEvent` per rule considered (empty
    on the rank-join path and for unoptimized searches).  ``stats`` is
    the per-operator execution trace tree
    (:class:`repro.obs.trace.TraceNode`), populated only for
    ``search(..., profile=True)``; ``wall_ms`` is the traced
    execution's wall-clock time.

    ``audit`` is the shadow-execution score-consistency verdict
    (:class:`repro.obs.audit.AuditEvent`) when this query was sampled by
    an engine-level audit config — ``audit.ok`` False means the
    optimized plan diverged from the canonical plan; None when auditing
    is off or this query was not sampled.

    ``shard_count``/``shards_pruned`` describe parallel execution: how
    many index shards the engine was configured with and how many of
    them partition pruning skipped (1 and 0 for serial execution).
    ``executor`` names the execution driver that actually ran this
    query — ``"serial"``, ``"thread"``, or ``"process"`` — which can
    differ from the engine's configured executor when the process path
    fell back to threads (docs/PERFORMANCE.md).  ``plan_cached`` is
    True when parse+optimize was skipped via the plan cache;
    ``result_cached`` is True when the whole outcome was answered from
    the result cache (no execution happened at all).
    """

    results: list[SearchResult]
    applied_optimizations: list[str]
    metrics: ExecutionMetrics
    plan_text: str = ""
    degraded: bool = False
    limit_hit: str | None = None
    rewrite_log: "list[RewriteEvent]" = field(default_factory=list)
    stats: "TraceNode | None" = None
    wall_ms: float | None = None
    audit: "AuditEvent | None" = None
    shard_count: int = 1
    shards_pruned: int = 0
    executor: str = "serial"
    plan_cached: bool = False
    result_cached: bool = False

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, i: int) -> SearchResult:
        return self.results[i]


class SearchEngine:
    """Full-text search engine with generic, plug-in scoring.

    The engine owns a document collection and (lazily built) index.  Every
    ``search`` call picks a scoring scheme — by registry name or as a
    :class:`repro.sa.ScoringScheme` instance — and the optimizer tailors
    the plan to that scheme's declared properties, guaranteeing the scores
    of the canonical score-isolated plan (Definition 1).
    """

    def __init__(
        self,
        collection: DocumentCollection | None = None,
        analyzer: Analyzer | None = None,
        scoring_context: ScoringContext | None = None,
        audit: "AuditConfig | None" = None,
        qlog: "QueryLog | None" = None,
        shards: int | None = None,
        cache: CacheConfig | None = None,
        executor: str | None = None,
    ):
        """Args (observability; both default off with a zero-cost path):
            audit: Shadow-execution score-consistency auditing config
                (:class:`repro.obs.audit.AuditConfig`).  Sampled queries
                are re-executed on the canonical plan (and, for small
                collections, the MCalc oracle) and diffed; divergences
                surface on ``SearchOutcome.audit`` and, under
                ``mode="strict"``, raise
                :class:`repro.errors.ScoreConsistencyError`.
            qlog: A structured query log
                (:class:`repro.obs.qlog.QueryLog`); every search is
                offered to it (sampling and the slow-query override are
                the log's own policy).
            shards: Partition the index into this many contiguous
                doc-id ranges and execute plans shard-parallel with a
                score-consistent top-k merge (docs/PERFORMANCE.md).
                ``None`` reads the ``REPRO_SHARDS`` environment variable
                (default 1 = serial).  Fault-injected searches always
                run serially (deterministic fault counters).
            cache: Two-tier query cache capacities
                (:class:`repro.exec.cache.CacheConfig`).  ``None``
                enables the default plan cache with the result cache
                off; pass :meth:`CacheConfig.off` to disable both.
            executor: Parallel execution driver for sharded plans:
                ``"thread"`` (in-process pool), ``"process"`` (worker
                processes attached to a shared-memory packed index —
                the only driver that escapes the GIL;
                docs/PERFORMANCE.md), or ``"serial"`` (pin execution
                serial even when ``shards > 1``).  ``None`` reads the
                ``REPRO_EXEC`` environment variable (default thread).
                The process driver falls back to threads — recorded on
                the ``graft_proc_fallbacks_total`` metric — for
                profiled searches, engines with a scoring-context
                override, and environments where shared memory or
                worker processes are unavailable.
        """
        self.collection = (
            collection if collection is not None else DocumentCollection(analyzer)
        )
        self._index: Index | None = None
        self._ctx_override = scoring_context
        self._store: "IndexStore | None" = None
        self._lock: "StoreLock | None" = None
        #: Store generation this engine's state was loaded from (None
        #: for purely in-memory engines); updated by checkpoint().
        self._loaded_generation: str | None = None
        self._qlog = qlog
        self._auditor: "Auditor | None" = None
        if audit is not None and audit.rate > 0:
            from repro.obs.audit import Auditor

            self._auditor = Auditor(audit)
        self._shards = _resolve_shards(shards)
        self._sharded: "ShardedIndex | None" = None
        self._executor = _resolve_executor(executor)
        #: Process worker pool bound to the current sealed index (built
        #: lazily by the first process-path query; invalidated like
        #: ``_sharded``).  ``_proc_unavailable`` latches a failed pool
        #: start so unavailable environments pay the probe only once.
        self._procpool = None
        self._procpool_base: Index | None = None
        self._proc_unavailable = False
        self.cache_config = cache if cache is not None else CacheConfig()
        self._plan_cache = LRUCache(self.cache_config.plan_capacity)
        self._result_cache = LRUCache(self.cache_config.result_capacity)
        #: Monotone index version: bumped by every mutation, part of
        #: every cache key, so stale entries are unreachable by design.
        self._generation = 0

    # -- corpus management ---------------------------------------------------

    def add(self, text: str, title: str = "") -> int:
        """Analyze and add one document; returns its id.

        On an engine opened on a durable store (:meth:`open`), the
        analyzed document is also appended to the store's write-ahead
        log before this returns, so it survives a crash that happens
        before the next :meth:`checkpoint`.
        """
        doc = self.collection.add_text(text, title)
        self._index = None
        self._sharded = None
        self._close_procpool()
        self._generation += 1
        if self._store is not None:
            from repro.corpus.io import document_record

            self._store.append_wal(
                {"seq": doc.doc_id, **document_record(doc)}
            )
        return doc.doc_id

    def add_many(self, texts: Iterable[str]) -> list[int]:
        """Analyze and add many documents; returns their assigned ids.

        Accepts any iterable of strings (generator, tuple, ...),
        mirroring :meth:`add`.
        """
        return [self.add(text) for text in texts]

    @property
    def index(self) -> Index:
        """The index, built on first use and after any mutation."""
        if self._index is None:
            self._index = build_index(self.collection)
        return self._index

    @property
    def shards(self) -> int:
        """Shard count used for plan execution (1 = serial)."""
        return self._shards

    @shards.setter
    def shards(self, value: int) -> None:
        self._shards = _resolve_shards(value)
        self._sharded = None
        # A pool built for the old shard count is useless; let the next
        # process-path query rebuild one sized to the new layout.
        self._close_procpool()

    @property
    def executor(self) -> str:
        """Parallel execution driver: serial, thread, or process."""
        return self._executor

    @executor.setter
    def executor(self, value: str) -> None:
        self._executor = _resolve_executor(value)
        self._proc_unavailable = False
        if self._executor != "process":
            self._close_procpool()

    def _sharded_index(self) -> "ShardedIndex":
        """The sharded view of the current index (rebuilt after
        mutations — `base is` comparison catches lazy index rebuilds)."""
        index = self.index
        if (
            self._sharded is None
            or self._sharded.base is not index
            or self._sharded.num_shards != self._shards
        ):
            from repro.index.shard import ShardedIndex

            self._sharded = ShardedIndex(index, self._shards)
        return self._sharded

    def _close_procpool(self) -> None:
        """Shut the process pool down and unlink its shared segment.

        Idempotent; called on every invalidation point (mutation, shard
        or executor change, :meth:`close`).  A pool that is never
        explicitly closed is still reclaimed by its GC finalizer, so
        this is about promptness, not correctness.
        """
        if self._procpool is not None:
            self._procpool.close()
            self._procpool = None
            self._procpool_base = None

    def _process_pool(self):
        """The worker pool bound to the current sealed index, or None.

        Built lazily by the first process-path query: the object index
        is packed (:func:`repro.index.packed.pack_index`), published
        once in shared memory, and the workers attach zero-copy.  A
        rebuilt index or changed shard count invalidates the pool the
        same way it invalidates ``_sharded``.  Returns None — caller
        falls back to the thread driver — when packing or worker
        startup fails; the failure is latched so the probe runs once.
        """
        index = self.index
        if self._procpool is not None and (
            self._procpool_base is not index
            or self._procpool.num_shards != self._shards
            or self._procpool.closed
        ):
            self._close_procpool()
        if self._procpool is None:
            if self._proc_unavailable:
                return None
            from repro.exec.procpool import (
                ProcessShardPool,
                ProcPoolUnavailableError,
                default_worker_count,
            )
            from repro.index.packed import pack_index

            try:
                blob = pack_index(index)
                self._procpool = ProcessShardPool(
                    blob,
                    self._shards,
                    max_workers=default_worker_count(self._shards),
                )
            except (ProcPoolUnavailableError, GraftError) as exc:
                self._proc_unavailable = True
                _note_proc_fallback("pool_unavailable")
                import warnings

                warnings.warn(
                    f"process executor unavailable ({exc}); "
                    f"falling back to threads",
                    RuntimeWarning,
                    stacklevel=3,
                )
                return None
            self._procpool_base = index
        return self._procpool

    def _execute_process(self, plan, scheme, info, top_k, limits):
        """Attempt one query on the process driver; None = use threads.

        Limit trips and other :class:`GraftError`\\ s propagate (they
        are query outcomes, not infrastructure failures).  Submission
        failures (unpicklable plan) and broken worker pools degrade to
        the thread path — same scores, just slower.
        """
        pool = self._process_pool()
        if pool is None:
            return None
        from concurrent.futures.process import BrokenProcessPool

        from repro.exec.procpool import (
            ProcPoolUnavailableError,
            execute_sharded_process,
        )

        try:
            return execute_sharded_process(
                pool, self._sharded_index(), plan, scheme, info,
                top_k=top_k, limits=limits,
            )
        except ProcPoolUnavailableError:
            _note_proc_fallback("submit")
            return None
        except BrokenProcessPool:
            # Workers died (OOM-kill, signal).  The publication may be
            # gone with them; drop the pool so the next process-path
            # query rebuilds it from the still-good object index.
            self._close_procpool()
            _note_proc_fallback("broken_pool")
            return None

    def cache_stats(self) -> dict:
        """Hit/miss/size counters of both cache tiers (JSON-ready)."""
        return {
            "plan": self._plan_cache.stats(),
            "result": self._result_cache.stats(),
        }

    @property
    def qlog(self):
        """The attached structured query log (``None`` when unset).

        Settable after construction so serving layers can attach a log
        to engines they load themselves (``QueryService`` wires its
        ``--qlog`` path through here on every generation swap)."""
        return self._qlog

    @qlog.setter
    def qlog(self, value) -> None:
        self._qlog = value

    def scoring_context(self) -> ScoringContext:
        if self._ctx_override is not None:
            return self._ctx_override
        return IndexScoringContext(self.index)

    # -- querying --------------------------------------------------------------

    def parse(self, text: str) -> Query:
        """Parse shorthand query text with this engine's analyzer."""
        return parse_query(text, self.collection.analyzer)

    def search(
        self,
        query: str | Query,
        scheme: str | ScoringScheme = "sumbest",
        top_k: int | None = None,
        optimize: bool = True,
        options: OptimizerOptions | None = None,
        use_rank_join: bool = False,
        limits: QueryLimits | None = None,
        faults: "FaultInjector | None" = None,
        profile: bool = False,
    ) -> SearchOutcome:
        """Rank the collection for ``query`` under ``scheme``.

        Args:
            query: Shorthand text or a pre-built :class:`Query`.
            scheme: Scoring scheme name or instance.
            top_k: Truncate to the k best documents (must be >= 1).
            optimize: False executes the canonical score-isolated plan
                (useful for verification; potentially very slow).
            options: Optimizer toggles (benchmarking individual rewrites).
            use_rank_join: Attempt the rank-join/rank-union top-k path;
                silently falls back to full evaluation when the query or
                scheme does not qualify.
            limits: Resource limits (deadline, row budget, per-document
                match cap).  With ``on_limit="error"`` a tripped limit
                raises :class:`repro.errors.ResourceExhaustedError` (or
                its :class:`repro.errors.QueryTimeoutError` subclass);
                with ``on_limit="partial"`` the outcome carries the
                correctly-ranked prefix with ``degraded=True``.
            faults: Deterministic fault injector (robustness testing).
            profile: Attach the execution tracer: the outcome's
                ``stats`` carries the per-operator trace tree (with
                cost-model estimates annotated) and ``wall_ms`` the
                traced wall time.  Adds per-row timing overhead; off by
                default.  The rank-join path does not trace (its
                operators bypass plan compilation) and leaves ``stats``
                None.
        """
        validate_top_k(top_k)
        # Request telemetry (docs/OBSERVABILITY.md Layer 6): one
        # contextvar read per search; every span below is a no-op
        # singleton when no request context is bound.
        rt = _telemetry_current()
        raw_query = query
        scheme_by_name = isinstance(scheme, str)
        scheme = self._resolve_scheme(scheme)

        # Cache keys exist only for (text, registry-scheme) searches —
        # pre-built Query objects and ad-hoc scheme instances have no
        # stable identity to key on.  The index generation is part of
        # every key: mutations invalidate by making old keys unreachable.
        plan_key = None
        if scheme_by_name and isinstance(raw_query, str) and self._plan_cache.capacity:
            plan_key = (
                raw_query,
                scheme.name,
                _options_key(options),
                bool(optimize),
                self._generation,
            )

        plain = (
            not use_rank_join
            and limits is None
            and faults is None
            and not profile
            and self._auditor is None
        )
        result_key = None
        if plan_key is not None and self._result_cache.capacity and plain:
            result_key = plan_key + (top_k,)
            with _maybe_span(rt, "plan_cache"):
                hit = self._result_cache.get(result_key)
            from repro.obs.metrics import (
                REGISTRY,
                result_cache_hits,
                result_cache_misses,
            )

            if hit is not None:
                result_cache_hits(REGISTRY).child().inc()
                if rt is not None:
                    rt.note("result_cached", True)
                started = time.perf_counter()
                outcome = self._cached_outcome(hit)
                self._record_query(
                    raw_query, scheme.name, outcome,
                    time.perf_counter() - started, top_k,
                )
                return outcome
            result_cache_misses(REGISTRY).child().inc()

        with _maybe_span(rt, "plan_cache"):
            cached_plan = (
                self._plan_cache.get(plan_key) if plan_key is not None else None
            )
        if cached_plan is not None:
            from repro.obs.metrics import REGISTRY, plan_cache_hits

            plan_cache_hits(REGISTRY).child().inc()
            query, result = cached_plan
        else:
            with _maybe_span(rt, "parse"):
                query = self._resolve_query(raw_query)
            result = None
        if rt is not None:
            rt.note("plan_cached", cached_plan is not None)
            rt.note("generation", self._generation)
        ctx = self.scoring_context()
        query_text = self._query_text(raw_query, query)

        if use_rank_join and top_k is not None and rank_join_applicable(query, scheme):
            guard = QueryGuard(limits)
            started = time.perf_counter()
            with _maybe_span(rt, "execute"):
                pairs = rank_topk(
                    query, scheme, self.index, top_k, ctx, guard=guard
                )
            elapsed = time.perf_counter() - started
            metrics = ExecutionMetrics(rows_charged=guard.rows_charged)
            outcome = self._outcome(
                pairs, ["rank-join-topk"], metrics, "", guard.tripped
            )
            with _maybe_span(rt, "audit"):
                self._maybe_audit(
                    query, query_text, scheme, ctx, outcome, top_k, faults
                )
            self._record_query(query_text, scheme.name, outcome, elapsed, top_k)
            if outcome.audit is not None:
                self._auditor.raise_if_strict(outcome.audit)
            return outcome

        if result is None:
            optimizer = Optimizer(scheme, self.index, options)
            with _maybe_span(rt, "optimize"):
                result = (
                    optimizer.optimize(query) if optimize
                    else optimizer.canonical(query)
                )
            if plan_key is not None:
                from repro.obs.metrics import REGISTRY, plan_cache_misses

                plan_cache_misses(REGISTRY).child().inc()
                self._plan_cache.put(plan_key, (query, result))

        # Fault injection pins execution to the serial path: its
        # fail-at-Nth-call counters are only deterministic when exactly
        # one plan executes.  An engine configured executor="serial"
        # likewise never shards, whatever REPRO_SHARDS says.
        parallel = (
            self._shards > 1 and faults is None
            and self._executor != "serial"
        )
        started = time.perf_counter()
        if parallel:
            from repro.exec.parallel import execute_sharded

            used_executor = "thread"
            try:
                par = None
                if self._executor == "process":
                    # The process driver cannot trace per-operator (no
                    # trace objects cross the pickle boundary) and
                    # workers rescore from the shared index, so a
                    # scoring-context override must stay in-process.
                    if profile or self._ctx_override is not None:
                        _note_proc_fallback(
                            "profile" if profile else "ctx_override"
                        )
                    else:
                        par = self._execute_process(
                            result.plan, scheme, result.info, top_k, limits
                        )
                        if par is not None:
                            used_executor = "process"
                if par is None:
                    par = execute_sharded(
                        self._sharded_index(), result.plan, scheme,
                        result.info, ctx, top_k=top_k, limits=limits,
                        profile=profile,
                    )
            except GraftError:
                self._record_query(
                    query_text, scheme.name, None,
                    time.perf_counter() - started, top_k,
                )
                raise
            elapsed = time.perf_counter() - started
            outcome = self._outcome(
                par.results,
                list(result.applied),
                par.metrics,
                explain_plan(result.plan),
                par.tripped,
            )
            outcome.shard_count = par.shard_count
            outcome.shards_pruned = par.shards_pruned
            outcome.executor = used_executor
            if profile and par.trace_root is not None:
                from repro.obs.analyze import annotate_estimates

                annotate_estimates(par.trace_root, self.index)
                outcome.stats = par.trace_root
                outcome.wall_ms = elapsed * 1000.0
        else:
            tracer = None
            if profile:
                from repro.obs.trace import Tracer

                tracer = Tracer()
            runtime = make_runtime(
                self.index, scheme, result.info, ctx,
                limits=limits, faults=faults, tracer=tracer,
            )
            try:
                with _maybe_span(rt, "execute"):
                    pairs = execute(result.plan, runtime, top_k=top_k)
            except GraftError:
                self._record_query(
                    query_text, scheme.name, None,
                    time.perf_counter() - started, top_k,
                )
                raise
            elapsed = time.perf_counter() - started
            runtime.metrics.rows_charged = runtime.guard.rows_charged
            outcome = self._outcome(
                pairs,
                list(result.applied),
                runtime.metrics,
                explain_plan(result.plan),
                runtime.guard.tripped,
            )
            if tracer is not None and tracer.root is not None:
                from repro.obs.analyze import annotate_estimates

                annotate_estimates(tracer.root, self.index)
                outcome.stats = tracer.root
                outcome.wall_ms = tracer.total_ns / 1e6
        outcome.rewrite_log = list(result.rewrites)
        outcome.plan_cached = cached_plan is not None
        if rt is not None and outcome.shard_count:
            rt.note("shard_count", outcome.shard_count)
        if rt is not None and outcome.stats is not None:
            # Hand the profiled operator tree to the span exporter so the
            # unified trace can graft it under the execute phase span.
            rt.set_trace(outcome.stats.to_dict())
        with _maybe_span(rt, "audit"):
            self._maybe_audit(
                query, query_text, scheme, ctx, outcome, top_k, faults
            )
        self._record_query(query_text, scheme.name, outcome, elapsed, top_k)
        if outcome.audit is not None:
            self._auditor.raise_if_strict(outcome.audit)
        if result_key is not None and not outcome.degraded:
            self._result_cache.put(result_key, outcome)
        return outcome

    def _cached_outcome(self, cached: SearchOutcome) -> SearchOutcome:
        """A fresh outcome from a result-cache entry.

        Results and provenance are copied from the cached outcome;
        work counters are empty because no execution happened —
        ``result_cached`` tells observers why.
        """
        return SearchOutcome(
            results=list(cached.results),
            applied_optimizations=list(cached.applied_optimizations),
            metrics=ExecutionMetrics(),
            plan_text=cached.plan_text,
            rewrite_log=list(cached.rewrite_log),
            shard_count=cached.shard_count,
            shards_pruned=cached.shards_pruned,
            executor=cached.executor,
            plan_cached=True,
            result_cached=True,
        )

    def _query_text(self, raw: "str | Query", parsed: Query) -> str:
        """Shorthand text for logging/auditing, without re-unparsing on
        the fast path: only computed when an observer is attached."""
        if isinstance(raw, str):
            return raw
        if self._qlog is None and self._auditor is None:
            return ""
        from repro.mcalc.unparse import unparse

        return unparse(parsed)

    def _maybe_audit(
        self,
        query: Query,
        query_text: str,
        scheme: ScoringScheme,
        ctx: ScoringContext,
        outcome: SearchOutcome,
        top_k: int | None,
        faults: "FaultInjector | None",
    ) -> None:
        """Shadow-execute the canonical plan on sampled queries.

        Degraded (limit-tripped) outcomes are a correctly-ranked
        *prefix* by design, and fault-injected runs are deliberately
        wrong — neither is auditable against the canonical plan, so
        they never consume a sampling slot.  The off path is a single
        ``is None`` check.
        """
        if self._auditor is None:
            return
        if outcome.degraded or faults is not None:
            return
        if not self._auditor.should_audit():
            return
        from repro.obs.audit import shadow_audit

        config = self._auditor.config
        outcome.audit = shadow_audit(
            self.index,
            scheme,
            query,
            [(r.doc_id, r.score) for r in outcome.results],
            ctx=ctx,
            top_k=top_k,
            tolerance=config.tolerance,
            rewrite_log=outcome.rewrite_log,
            applied=outcome.applied_optimizations,
            query_text=query_text,
            collection=self.collection,
            oracle_max_docs=config.oracle_max_docs,
        )

    def _record_query(
        self,
        query_text: str,
        scheme_name: str,
        outcome: SearchOutcome | None,
        seconds: float,
        top_k: int | None = None,
    ) -> None:
        """Fold one search into the process-wide metrics registry and
        the engine's structured query log (when attached).

        ``outcome`` is None for queries that raised; those count with
        ``status="error"`` and contribute no work counters.
        """
        from repro.obs.metrics import (
            REGISTRY,
            query_counters,
            query_seconds,
            record_execution_metrics,
        )

        if outcome is None:
            status = "error"
        elif outcome.degraded:
            status = "degraded"
        else:
            status = "ok"
        query_counters(REGISTRY).labels(scheme=scheme_name, status=status).inc()
        query_seconds(REGISTRY).child().observe(seconds)
        if outcome is not None:
            record_execution_metrics(outcome.metrics, REGISTRY)
        if self._qlog is not None:
            rt = _telemetry_current()
            self._qlog.log_query(
                query_text,
                scheme_name,
                status,
                seconds * 1000.0,
                outcome=outcome,
                top_k=top_k,
                request_id=rt.request_id if rt is not None else None,
                phase_ms=rt.phases() if rt is not None else None,
            )

    def _outcome(
        self,
        pairs: list[tuple[int, float]],
        applied: list[str],
        metrics: ExecutionMetrics,
        plan_text: str,
        tripped: str | None,
    ) -> SearchOutcome:
        degraded = tripped is not None
        if degraded:
            metrics.limit_tripped = tripped
            applied.append(f"limit:{tripped}")
        return SearchOutcome(
            results=self._wrap(pairs),
            applied_optimizations=applied,
            metrics=metrics,
            plan_text=plan_text,
            degraded=degraded,
            limit_hit=tripped,
        )

    def match_table(
        self, query: str | Query, limits: QueryLimits | None = None
    ) -> MatchTable:
        """Materialize the full match table of ``query`` (Section 3.2).

        Executes the canonical matching subplan; beware the O(W^Q) worst
        case of Section 6 on large collections — pass ``limits`` to bound
        the work.  With ``on_limit="partial"`` a tripped limit returns
        the rows materialized so far, with ``table.truncated`` set to the
        tripped limit's name.
        """
        query = self._resolve_query(query)
        scheme = get_scheme("sumbest")  # matching needs no scoring; any scheme
        info = make_query_info(query, scheme)
        subplan = matching_subplan(query)
        runtime = make_runtime(
            self.index, scheme, info, self.scoring_context(), limits=limits
        )
        from repro.exec.compile import compile_op

        guard = runtime.guard
        guard.start()
        governed = guard.active
        table = MatchTable(query.free_vars)
        try:
            # Compilation pulls the leaves' first doc groups, so it is
            # already governed work.
            op = compile_op(subplan, runtime)
            order = [op.schema.position_index(v) for v in query.free_vars]
            while True:
                group = pull_doc(op)
                if group is None:
                    break
                if governed:
                    guard.tick()
                doc, rows = group
                for row in rows:
                    table.rows.append((doc,) + tuple(row[i] for i in order))
        except ResourceExhaustedError:
            if guard.on_limit != "partial":
                raise
            table.truncated = guard.tripped
        return table

    def explain(
        self,
        query: str | Query,
        scheme: str | ScoringScheme = "sumbest",
        optimize: bool = True,
        options: OptimizerOptions | None = None,
        analyze: bool = False,
        trace_rules: bool = False,
    ) -> str:
        """The plan ``search`` would run, as a cost-annotated operator tree.

        ``trace_rules`` appends the optimizer's structured rewrite log —
        every rule considered, with its gate verdict and cost-model
        estimates bracketing each fired rule.  ``analyze`` actually
        *executes* the plan (full evaluation, no top-k cutoff) under the
        execution tracer and appends the EXPLAIN ANALYZE view:
        per-operator actual doc/row counts and wall time next to the
        cost model's estimates, misestimates flagged.
        """
        query = self._resolve_query(query)
        scheme = self._resolve_scheme(scheme)
        optimizer = Optimizer(scheme, self.index, options)
        result = optimizer.optimize(query) if optimize else optimizer.canonical(query)
        header = f"-- scheme: {scheme.name}; rewrites: {', '.join(result.applied) or 'none'}\n"
        sections = [header + explain_plan(result.plan, index=self.index)]
        if trace_rules:
            from repro.obs.rewrite import render_rewrite_log

            sections.append(
                "-- rewrite log\n" + render_rewrite_log(result.rewrites)
            )
        if analyze:
            from repro.obs.analyze import annotate_estimates, render_analyze
            from repro.obs.trace import Tracer

            tracer = Tracer()
            runtime = make_runtime(
                self.index, scheme, result.info, self.scoring_context(),
                tracer=tracer,
            )
            execute(result.plan, runtime)
            annotate_estimates(tracer.root, self.index)
            sections.append(
                "-- analyze\n"
                + render_analyze(tracer.root, total_ns=tracer.total_ns)
            )
        return "\n\n".join(sections)

    def matches(
        self,
        query: str | Query,
        doc_id: int,
        limit: int = 5,
        limits: QueryLimits | None = None,
    ) -> list[dict[str, int | None]]:
        """Up to ``limit`` matches of ``query`` inside one document.

        Executes the matching subplan with a seek directly to the
        document, pulling matches lazily — the basis for hit highlighting
        and snippets.  Each match maps variables to offsets (None for the
        empty symbol).  ``limits`` bounds the work; with
        ``on_limit="partial"`` a tripped limit returns the matches found
        so far.
        """
        self._check_doc_id(doc_id)
        if not isinstance(limit, int) or isinstance(limit, bool) or limit < 1:
            raise GraftError(f"limit must be a positive integer, got {limit!r}")
        query = self._resolve_query(query)
        scheme = get_scheme("sumbest")
        info = make_query_info(query, scheme)
        runtime = make_runtime(
            self.index, scheme, info, self.scoring_context(), limits=limits
        )
        from repro.exec.compile import compile_op
        from repro.exec.iterator import seek_op
        from repro.graft.rules import apply_selection_pushing
        from repro.ma.nodes import Sort

        guard = runtime.guard
        guard.start()
        subplan = apply_selection_pushing(matching_subplan(query))
        while isinstance(subplan, Sort):
            subplan = subplan.child
        out: list[dict[str, int | None]] = []
        try:
            op = compile_op(subplan, runtime)
            seek_op(op, doc_id)
            group = pull_doc(op)
            if group is None or group[0] != doc_id:
                return out
            indices = {v: op.schema.position_index(v) for v in query.free_vars}
            for row in group[1]:
                out.append({v: row[i] for v, i in indices.items()})
                if len(out) >= limit:
                    break
        except ResourceExhaustedError:
            if guard.on_limit != "partial":
                raise
        return out

    def _check_doc_id(self, doc_id: int) -> None:
        """Raise a clear error for ids outside the collection instead of
        leaking a raw KeyError/IndexError from the index or collection."""
        size = len(self.collection)
        if not isinstance(doc_id, int) or isinstance(doc_id, bool):
            raise GraftError(
                f"doc_id must be an integer, got {type(doc_id).__name__}"
            )
        if doc_id < 0 or doc_id >= size:
            raise GraftError(
                f"doc_id {doc_id} out of range for a collection of "
                f"{size} documents"
            )

    def snippet(
        self,
        query: str | Query,
        doc_id: int,
        radius: int = 4,
        limits: QueryLimits | None = None,
    ) -> str:
        """A display snippet around the document's first match."""
        found = self.matches(query, doc_id, limit=1, limits=limits)
        if not found:
            return ""
        offsets = [o for o in found[0].values() if o is not None and o >= 0]
        if not offsets:
            return ""
        return self.collection[doc_id].snippet(min(offsets), radius=radius)

    # -- persistence -------------------------------------------------------------
    #
    # Durable state lives in a crash-safe generational store
    # (repro.index.store; format spec in docs/STORAGE.md): every save is
    # an atomic checkpoint, every load verifies checksums, and an engine
    # *opened on* a store WAL-logs each added document.  All store code
    # is imported lazily, so purely in-memory engines never touch it.

    def save(self, directory=None) -> None:
        """Checkpoint the index and collection under ``directory``.

        Writes a new store generation atomically: a crash at any moment
        leaves either the previous checkpoint or the new one on disk,
        never a blend.  With no argument, checkpoints the store this
        engine was :meth:`open`\\ ed on.
        """
        import pathlib

        if directory is None:
            self.checkpoint()
            return
        if (
            self._store is not None
            and pathlib.Path(directory).resolve() == self._store.path.resolve()
        ):
            self.checkpoint()
            return
        from repro.index.store import IndexStore, engine_payload

        store = IndexStore(directory)
        if IndexStore.is_store(directory):
            store.read_manifest()
        with store.lock():
            store.checkpoint(
                engine_payload(self.index, self.collection),
                doc_count=len(self.collection),
            )

    @classmethod
    def load(cls, directory, analyzer: Analyzer | None = None) -> "SearchEngine":
        """Restore an engine saved with :meth:`save` (read-only).

        Verifies every file's checksum against the store manifest and
        replays write-ahead-logged documents added since the last
        checkpoint; damage raises
        :class:`repro.errors.IndexCorruptionError` naming the bad file.
        Legacy (pre-store, v1 layout) directories load via a migration
        shim.  Takes no lock — concurrent readers are always safe.
        """
        from repro.index.store import IndexStore

        if IndexStore.is_store(directory):
            return cls._load_from_store(IndexStore.open(directory), analyzer)
        from repro.corpus.io import load_collection
        from repro.index.io import load_index

        engine = cls(load_collection(directory, analyzer))
        engine._index = load_index(directory)
        return engine

    @classmethod
    def open(
        cls,
        directory,
        analyzer: Analyzer | None = None,
        faults: "StoreFaultInjector | None" = None,
    ) -> "SearchEngine":
        """Open a durable store for writing, creating it if absent.

        The returned engine holds the store's advisory writer lock
        (released by :meth:`close`, or use the engine as a context
        manager); a second concurrent writer raises
        :class:`repro.errors.StoreLockedError`.  Every subsequent
        :meth:`add` is WAL-logged durably, and :meth:`checkpoint`
        compacts the log into a new generation.  Opening repairs crash
        residue: a torn WAL tail is truncated and stale generations are
        garbage-collected.  A legacy v1 directory is migrated to the
        store format in place.

        Args:
            directory: Store directory (created if missing).
            analyzer: Analyzer for a fresh store (stored collections
                re-use their saved tokens).
            faults: Crash-point injector (robustness testing only).
        """
        from repro.index.store import IndexStore, engine_payload

        store = IndexStore(directory, faults=faults)
        lock = store.lock().acquire()
        try:
            if IndexStore.is_store(directory):
                store.read_manifest()
                store.repair_wal()
                store.gc()
                engine = cls._load_from_store(store, analyzer)
            else:
                engine = cls._open_fresh_or_legacy(directory, analyzer)
                store.checkpoint(
                    engine_payload(engine.index, engine.collection),
                    doc_count=len(engine.collection),
                )
        except BaseException:
            lock.release()
            raise
        engine._store = store
        engine._lock = lock
        engine._loaded_generation = store.manifest.generation
        return engine

    def checkpoint(self) -> str:
        """Compact WAL'd documents into a new atomic store generation.

        Requires an engine opened on a store (:meth:`open`); returns the
        new generation name.
        """
        if self._store is None:
            raise GraftError(
                "checkpoint() requires an engine opened on a store; use "
                "SearchEngine.open(directory) or save(directory)"
            )
        from repro.index.store import engine_payload

        generation = self._store.checkpoint(
            engine_payload(self.index, self.collection),
            doc_count=len(self.collection),
        )
        self._generation += 1
        self._loaded_generation = generation
        return generation

    def close(self) -> None:
        """Detach from the store and release the writer lock.

        In-memory state stays usable; WAL'd documents are already
        durable.  No-op for engines not opened on a store.  Also shuts
        down the process worker pool (and unlinks its shared-memory
        segment) when one was built — in-memory searching still works
        afterwards, the process path just rebuilds the pool on demand.
        """
        if self._lock is not None:
            self._lock.release()
            self._lock = None
        self._store = None
        self._close_procpool()

    def __enter__(self) -> "SearchEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def store_path(self) -> "pathlib.Path | None":
        """The attached store directory, or None for in-memory engines."""
        return self._store.path if self._store is not None else None

    @property
    def loaded_generation(self) -> str | None:
        """The store generation this engine's state came from.

        ``None`` for purely in-memory engines.  A reader comparing this
        against :meth:`current_generation` of the same directory can
        tell whether a writer has checkpointed past it — the reopen
        trigger of the query service's hot swap (:mod:`repro.serve`).
        """
        return self._loaded_generation

    @staticmethod
    def current_generation(directory) -> str | None:
        """The generation the store's manifest currently names.

        A cheap manifest read (one small file, self-checksummed), cheap
        enough to poll; returns ``None`` when ``directory`` is not a
        store.  Readers use it to decide whether :meth:`load` would see
        anything newer than what they already hold.
        """
        from repro.index.store import IndexStore

        if not IndexStore.is_store(directory):
            return None
        return IndexStore.open(directory).manifest.generation

    @classmethod
    def _load_from_store(
        cls, store: "IndexStore", analyzer: Analyzer | None
    ) -> "SearchEngine":
        from repro.corpus.io import add_record, collection_from_bytes
        from repro.errors import IndexCorruptionError
        from repro.index.store import DOCS_FILE

        blobs = store.read_all_verified()
        if DOCS_FILE not in blobs:
            raise IndexError_(f"no saved collection under {store.path}")
        docs_source = str(store.generation_dir / DOCS_FILE)
        collection = collection_from_bytes(
            blobs[DOCS_FILE], analyzer, source=docs_source
        )
        if len(collection) != store.manifest.doc_count:
            raise IndexCorruptionError(
                f"generation holds {len(collection)} documents but the "
                f"manifest records {store.manifest.doc_count}",
                path=docs_source,
            )
        index = store.load_index(blobs)
        replayed = store.wal_records()
        for record in replayed:
            add_record(collection, record)
        if replayed:
            from repro.obs.metrics import wal_replayed

            wal_replayed().child().inc(len(replayed))
        engine = cls(collection)
        # WAL'd documents postdate the checkpointed index; rebuild lazily.
        engine._index = index if not replayed else None
        engine._loaded_generation = store.manifest.generation
        return engine

    @classmethod
    def _open_fresh_or_legacy(
        cls, directory, analyzer: Analyzer | None
    ) -> "SearchEngine":
        import pathlib

        from repro.corpus.io import load_collection
        from repro.index.io import load_index

        if (pathlib.Path(directory) / "meta.json").exists():
            engine = cls(load_collection(directory, analyzer))
            engine._index = load_index(directory)
            return engine
        return cls(analyzer=analyzer)

    # -- helpers -----------------------------------------------------------------

    def _resolve_query(self, query: str | Query) -> Query:
        if isinstance(query, Query):
            return query
        if isinstance(query, str):
            return self.parse(query)
        raise GraftError(f"expected query text or Query, got {type(query).__name__}")

    @staticmethod
    def _resolve_scheme(scheme: str | ScoringScheme) -> ScoringScheme:
        if isinstance(scheme, ScoringScheme):
            return scheme
        return get_scheme(scheme)

    def _wrap(self, pairs: list[tuple[int, float]]) -> list[SearchResult]:
        out = []
        for doc_id, score in pairs:
            title = self.collection[doc_id].title if doc_id < len(self.collection) else ""
            out.append(SearchResult(doc_id, score, title))
        return out


def _resolve_shards(shards: int | None) -> int:
    """Validate an explicit shard count, or read ``REPRO_SHARDS``.

    Misconfiguration raises a typed :class:`repro.errors.ConfigError` at
    engine construction — a non-integer or negative environment value
    must never surface as an unhandled ``ValueError`` from deep inside
    ``_sharded_index`` on the first query.
    """
    option = "shards"
    if shards is None:
        raw = os.environ.get("REPRO_SHARDS", "").strip()
        if not raw:
            return 1
        option = "REPRO_SHARDS"
        try:
            shards = int(raw)
        except ValueError:
            raise ConfigError(
                f"must be a positive integer, got {raw!r}", option=option
            ) from None
    if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
        raise ConfigError(
            f"must be a positive integer, got {shards!r}", option=option
        )
    return shards


_EXECUTORS = ("serial", "thread", "process")


def _resolve_executor(executor: str | None) -> str:
    """Validate an explicit executor name, or read ``REPRO_EXEC``.

    Mirrors :func:`_resolve_shards`: misconfiguration is a typed
    :class:`repro.errors.ConfigError` at engine construction, not a
    surprise deep inside the first sharded query.
    """
    option = "executor"
    if executor is None:
        raw = os.environ.get("REPRO_EXEC", "").strip().lower()
        if not raw:
            return "thread"
        option = "REPRO_EXEC"
        executor = raw
    if not isinstance(executor, str) or executor not in _EXECUTORS:
        raise ConfigError(
            f"must be one of {', '.join(_EXECUTORS)}, got {executor!r}",
            option=option,
        )
    return executor


def _note_proc_fallback(reason: str) -> None:
    """Count one process-to-thread fallback, labeled by why."""
    from repro.obs.metrics import REGISTRY, proc_fallbacks

    proc_fallbacks(REGISTRY).labels(reason=reason).inc()


def _options_key(options: OptimizerOptions | None) -> tuple | None:
    """Hashable cache-key component for the optimizer toggles."""
    if options is None:
        return None
    return dataclasses.astuple(options)
