"""Command-line interface.

Usage::

    python -m repro index  DOCS_DIR  INDEX_DIR      # index *.txt files
    python -m repro search INDEX_DIR QUERY [options]
    python -m repro explain INDEX_DIR QUERY [options]
    python -m repro verify INDEX_DIR                 # integrity audit
    python -m repro checkpoint INDEX_DIR             # compact the WAL
    python -m repro schemes                          # list scoring schemes
    python -m repro metrics [--format json|prom]     # metrics registry

``index`` builds and persists the inverted index (plus documents and
titles) as a crash-safe generational store (``docs/STORAGE.md``) from a
directory of text files, one document per file; ``search`` runs a
shorthand query against a persisted index under any registered scoring
scheme (``--profile`` attaches the execution tracer and prints EXPLAIN
ANALYZE); ``explain`` prints the cost-annotated optimized plan instead
of executing it (``--analyze`` executes under the tracer, since actuals
require running; ``--trace-rules`` appends the optimizer's rewrite
log); ``verify`` audits every checksum and structural invariant of a
store; ``checkpoint`` compacts write-ahead-logged documents into a new
atomic generation; ``metrics`` exports this process's metrics registry.
``search``/``explain``/``verify`` also accept legacy (v1, pre-store)
index directories.

``search``/``explain``/``verify`` take ``--json``: exactly one JSON
object on stdout (schema for the search trace:
``tests/obs/trace_schema.json``); warnings stay on stderr.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.corpus.analyzer import SentenceAnalyzer, SimpleAnalyzer
from repro.corpus.collection import DocumentCollection
from repro.errors import GraftError
from repro.exec.engine import execute, make_runtime
from repro.exec.limits import QueryLimits
from repro.graft.explain import explain as explain_plan
from repro.graft.optimizer import Optimizer
from repro.index.index import Index
from repro.index.io import load_index
from repro.mcalc.parser import parse_query
from repro.sa.registry import available_schemes, get_scheme

_TITLES = "titles.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GRAFT: full-text search with score-consistent "
                    "algebraic optimization (SIGMOD 2011 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_index = sub.add_parser("index", help="index a directory of .txt files")
    p_index.add_argument("docs_dir", help="directory containing *.txt files")
    p_index.add_argument("index_dir", help="output directory for the index")
    p_index.add_argument(
        "--sentences", action="store_true",
        help="record sentence boundaries (enables the SAMESENTENCE "
             "predicate over real sentences)",
    )

    for name, help_text in (
        ("search", "run a query against a persisted index"),
        ("explain", "show the optimized plan for a query"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("index_dir", help="directory written by 'repro index'")
        p.add_argument("query", help="shorthand query text")
        p.add_argument("--scheme", default="sumbest",
                       help="scoring scheme name (see 'repro schemes')")
        p.add_argument("--top-k", type=int, default=10,
                       help="number of results (search only)")
        p.add_argument("--no-optimize", action="store_true",
                       help="run/show the canonical score-isolated plan")
        p.add_argument("--timeout-ms", type=float, default=None,
                       help="wall-clock deadline for query execution "
                            "(milliseconds)")
        p.add_argument("--max-rows", type=int, default=None,
                       help="budget on rows materialized during execution")
        p.add_argument("--max-matches-per-doc", type=int, default=None,
                       help="cap on match rows produced within one document")
        p.add_argument("--on-limit", choices=("error", "partial"),
                       default="error",
                       help="tripped limit behavior: fail the query "
                            "(error) or return the ranked prefix computed "
                            "so far (partial)")
        p.add_argument("--json", action="store_true",
                       help="emit one JSON object on stdout instead of text")
        if name == "search":
            p.add_argument("--profile", action="store_true",
                           help="trace execution and print EXPLAIN ANALYZE "
                                "(per-operator actuals vs. estimates)")
        else:
            p.add_argument("--analyze", action="store_true",
                           help="execute the plan under the tracer and show "
                                "per-operator actuals next to estimates")
            p.add_argument("--trace-rules", action="store_true",
                           help="show the optimizer's rewrite log: every "
                                "rule considered, its verdict, and costs")

    p_verify = sub.add_parser(
        "verify",
        help="audit a persisted index: checksums, structure, WAL",
    )
    p_verify.add_argument("index_dir", help="directory written by 'repro index'")
    p_verify.add_argument("--json", action="store_true",
                          help="emit the audit report as one JSON object")

    p_ckpt = sub.add_parser(
        "checkpoint",
        help="compact write-ahead-logged documents into a new generation",
    )
    p_ckpt.add_argument("index_dir", help="store directory to checkpoint")

    sub.add_parser("schemes", help="list registered scoring schemes")

    p_metrics = sub.add_parser(
        "metrics",
        help="export the process-wide metrics registry",
    )
    p_metrics.add_argument(
        "--format", choices=("json", "prom"), default="json",
        help="JSON snapshot or Prometheus text exposition format",
    )
    return parser


def _cmd_index(args: argparse.Namespace) -> int:
    from repro.api import SearchEngine

    docs_dir = pathlib.Path(args.docs_dir)
    files = sorted(docs_dir.glob("*.txt"))
    if not files:
        print(f"no .txt files under {docs_dir}", file=sys.stderr)
        return 1
    analyzer = SentenceAnalyzer() if args.sentences else SimpleAnalyzer()
    collection = DocumentCollection(analyzer)
    for path in files:
        collection.add_text(path.read_text(), title=path.stem)
    engine = SearchEngine(collection)
    engine.save(args.index_dir)
    index = engine.index
    print(f"indexed {len(collection)} documents "
          f"({index.stats.total_tokens} tokens, "
          f"{index.vocabulary_size()} terms) -> {args.index_dir}")
    return 0


def _warn(message: str) -> None:
    print(f"warning: {message}", file=sys.stderr)


def _load(args: argparse.Namespace) -> tuple[Index, list[str]]:
    """Load the index and titles from a store or legacy directory.

    A missing title list degrades output (results show bare doc ids), so
    it is warned about explicitly instead of silently substituting [].
    """
    from repro.index.store import TITLES_FILE, IndexStore

    index_dir = pathlib.Path(args.index_dir)
    if IndexStore.is_store(index_dir):
        store = IndexStore.open(index_dir)
        index = store.load_index()
        if store.wal_records():
            _warn(
                f"{index_dir} has write-ahead-logged documents not yet "
                f"checkpointed; run 'repro checkpoint' to include them"
            )
        if store.has_file(TITLES_FILE):
            titles = json.loads(store.read_file(TITLES_FILE))
        else:
            _warn(
                f"no {TITLES_FILE} in {index_dir}; results will show "
                f"bare doc ids instead of titles"
            )
            titles = []
        return index, titles
    index = load_index(index_dir)
    titles_path = index_dir / _TITLES
    if titles_path.exists():
        titles = json.loads(titles_path.read_text())
    else:
        _warn(
            f"no {_TITLES} in {index_dir}; results will show bare doc "
            f"ids instead of titles"
        )
        titles = []
    return index, titles


def _optimize(args: argparse.Namespace, index: Index):
    scheme = get_scheme(args.scheme)
    query = parse_query(args.query, SimpleAnalyzer())
    optimizer = Optimizer(scheme, index)
    result = (
        optimizer.canonical(query) if args.no_optimize
        else optimizer.optimize(query)
    )
    return scheme, result


def _limits_from_args(args: argparse.Namespace) -> QueryLimits | None:
    if (
        args.timeout_ms is None
        and args.max_rows is None
        and args.max_matches_per_doc is None
    ):
        return None
    return QueryLimits(
        deadline_ms=args.timeout_ms,
        max_rows=args.max_rows,
        max_matches_per_doc=args.max_matches_per_doc,
        on_limit=args.on_limit,
    )


def _cmd_search(args: argparse.Namespace) -> int:
    index, titles = _load(args)
    scheme, result = _optimize(args, index)
    tracer = None
    if args.profile:
        from repro.obs.trace import Tracer

        tracer = Tracer()
    runtime = make_runtime(index, scheme, result.info,
                           limits=_limits_from_args(args), tracer=tracer)
    ranked = execute(result.plan, runtime, top_k=args.top_k)
    runtime.metrics.rows_charged = runtime.guard.rows_charged
    limit_hit = runtime.guard.tripped
    if limit_hit is not None:
        print(f"note: partial results — {limit_hit} limit hit",
              file=sys.stderr)
    if tracer is not None and tracer.root is not None:
        from repro.obs.analyze import annotate_estimates

        annotate_estimates(tracer.root, index)

    def title_of(doc: int) -> str:
        return titles[doc] if doc < len(titles) else f"doc{doc}"

    if args.json:
        payload = {
            "query": args.query,
            "scheme": scheme.name,
            "results": [
                {"rank": rank, "doc_id": doc, "score": score,
                 "title": title_of(doc)}
                for rank, (doc, score) in enumerate(ranked, start=1)
            ],
            "applied_optimizations": list(result.applied),
            "degraded": limit_hit is not None,
            "limit_hit": limit_hit,
            "metrics": runtime.metrics.as_dict(),
            "trace": (
                tracer.root.to_dict()
                if tracer is not None and tracer.root is not None else None
            ),
            "wall_ms": (
                tracer.total_ns / 1e6 if tracer is not None else None
            ),
        }
        print(json.dumps(payload))
        return 0
    if not ranked:
        print("no matches")
    for rank, (doc, score) in enumerate(ranked, start=1):
        print(f"{rank:3}. {score:10.4f}  [{doc}] {title_of(doc)}")
    if tracer is not None and tracer.root is not None:
        from repro.obs.analyze import render_analyze

        print()
        print(render_analyze(tracer.root, total_ns=tracer.total_ns))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    index, _ = _load(args)
    scheme, result = _optimize(args, index)
    analyze_root = None
    total_ns = None
    if args.analyze:
        from repro.obs.analyze import annotate_estimates
        from repro.obs.trace import Tracer

        tracer = Tracer()
        runtime = make_runtime(index, scheme, result.info,
                               limits=_limits_from_args(args), tracer=tracer)
        execute(result.plan, runtime)
        annotate_estimates(tracer.root, index)
        analyze_root = tracer.root
        total_ns = tracer.total_ns
    if args.json:
        payload = {
            "query": args.query,
            "scheme": scheme.name,
            "applied_optimizations": list(result.applied),
            "plan": explain_plan(result.plan),
            "rewrite_log": (
                [event.to_dict() for event in result.rewrites]
                if args.trace_rules else None
            ),
            "trace": (
                analyze_root.to_dict() if analyze_root is not None else None
            ),
            "wall_ms": total_ns / 1e6 if total_ns is not None else None,
        }
        print(json.dumps(payload))
        return 0
    rewrites = ", ".join(result.applied) or "none"
    print(f"scheme: {scheme.name}")
    print(f"rewrites: {rewrites}")
    print(explain_plan(result.plan, index=index))
    if args.trace_rules:
        from repro.obs.rewrite import render_rewrite_log

        print()
        print("rewrite log:")
        print(render_rewrite_log(result.rewrites))
    if analyze_root is not None:
        from repro.obs.analyze import render_analyze

        print()
        print("analyze:")
        print(render_analyze(analyze_root, total_ns=total_ns))
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.index.store import IndexStore

    index_dir = pathlib.Path(args.index_dir)
    if IndexStore.is_store(index_dir):
        report = IndexStore.open(index_dir).verify()
        if report["wal_torn_bytes"]:
            _warn("torn WAL tail present (interrupted append); it will "
                  "be truncated on the next writer open")
        if args.json:
            print(json.dumps({"ok": True, "format": "store", **report}))
            return 0
        print(f"store OK: generation {report['generation']}, "
              f"{report['doc_count']} documents")
        for name, size in sorted(report["files"].items()):
            print(f"  {name:20} {size:10d} bytes  sha256 verified")
        print(f"  WAL: {report['wal_records']} records "
              f"({report['wal_pending']} pending checkpoint, "
              f"{report['wal_torn_bytes']} torn bytes)")
        return 0
    # Legacy v1 layout: no checksums to audit, but a full decode still
    # proves structural integrity.
    load_index(index_dir)
    if args.json:
        print(json.dumps({"ok": True, "format": "legacy-v1",
                          "path": str(index_dir)}))
        return 0
    print(f"legacy (v1) index OK under {index_dir} — no checksums; "
          f"re-save to upgrade to the crash-safe store format")
    return 0


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    from repro.api import SearchEngine

    with SearchEngine.open(args.index_dir) as engine:
        pending = len(engine.collection)
        generation = engine.checkpoint()
    print(f"checkpointed {pending} documents into {generation} "
          f"under {args.index_dir}")
    return 0


def _cmd_schemes(args: argparse.Namespace) -> int:
    for name in available_schemes():
        props = get_scheme(name).properties
        direction = props.directional or "diagonal"
        tags = [direction]
        if props.constant:
            tags.append("constant")
        if props.positional:
            tags.append("positional")
        print(f"{name:20} {', '.join(tags)}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs.metrics import REGISTRY

    if args.format == "prom":
        sys.stdout.write(REGISTRY.to_prometheus_text())
    else:
        print(REGISTRY.to_json())
    return 0


_COMMANDS = {
    "index": _cmd_index,
    "search": _cmd_search,
    "explain": _cmd_explain,
    "verify": _cmd_verify,
    "checkpoint": _cmd_checkpoint,
    "schemes": _cmd_schemes,
    "metrics": _cmd_metrics,
}


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except GraftError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
