"""Command-line interface.

Usage::

    python -m repro index  DOCS_DIR  INDEX_DIR      # index *.txt files
    python -m repro search INDEX_DIR QUERY [options]
    python -m repro explain INDEX_DIR QUERY [options]
    python -m repro verify INDEX_DIR                 # integrity audit
    python -m repro checkpoint INDEX_DIR             # compact the WAL
    python -m repro schemes                          # list scoring schemes
    python -m repro metrics [--format json|prom]     # metrics registry
    python -m repro qlog tail|stats LOG_PATH         # read a query log
    python -m repro bench [--check] [--write-baseline]  # regression gate
    python -m repro serve INDEX_DIR [--port N]       # async query service
    python -m repro loadgen URL [options]            # drive a service
    python -m repro slow URL|FILE [-n N]             # tail-latency report
    python -m repro top URL [--once --json]          # live ops console

``index`` builds and persists the inverted index (plus documents and
titles) as a crash-safe generational store (``docs/STORAGE.md``) from a
directory of text files, one document per file; ``search`` runs a
shorthand query against a persisted index under any registered scoring
scheme (``--profile`` attaches the execution tracer and prints EXPLAIN
ANALYZE); ``explain`` prints the cost-annotated optimized plan instead
of executing it (``--analyze`` executes under the tracer, since actuals
require running; ``--trace-rules`` appends the optimizer's rewrite
log); ``verify`` audits every checksum and structural invariant of a
store; ``checkpoint`` compacts write-ahead-logged documents into a new
atomic generation; ``metrics`` exports this process's metrics registry.
``search``/``explain``/``verify`` also accept legacy (v1, pre-store)
index directories.  ``search --audit`` shadow-executes the canonical
score-isolated plan and exits 3 on a score-consistency divergence;
``qlog`` tails or aggregates a structured query log written by
:class:`repro.obs.qlog.QueryLog`; ``bench`` runs the paper workload,
appends to ``benchmarks/results/history.jsonl``, and with ``--check``
exits 1 when the run regresses against the checked-in baseline.

``search``/``explain``/``verify`` take ``--json``: exactly one JSON
object on stdout (schema for the search trace:
``tests/obs/trace_schema.json``); warnings stay on stderr.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.corpus.analyzer import SentenceAnalyzer, SimpleAnalyzer
from repro.corpus.collection import DocumentCollection
from repro.errors import GraftError
from repro.exec.engine import execute, make_runtime
from repro.exec.limits import QueryLimits
from repro.graft.explain import explain as explain_plan
from repro.graft.optimizer import Optimizer
from repro.index.index import Index
from repro.index.io import load_index
from repro.mcalc.parser import parse_query
from repro.sa.registry import available_schemes, get_scheme

_TITLES = "titles.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GRAFT: full-text search with score-consistent "
                    "algebraic optimization (SIGMOD 2011 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_index = sub.add_parser("index", help="index a directory of .txt files")
    p_index.add_argument("docs_dir", help="directory containing *.txt files")
    p_index.add_argument("index_dir", help="output directory for the index")
    p_index.add_argument(
        "--sentences", action="store_true",
        help="record sentence boundaries (enables the SAMESENTENCE "
             "predicate over real sentences)",
    )

    for name, help_text in (
        ("search", "run a query against a persisted index"),
        ("explain", "show the optimized plan for a query"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("index_dir", help="directory written by 'repro index'")
        p.add_argument("query", help="shorthand query text")
        p.add_argument("--scheme", default="sumbest",
                       help="scoring scheme name (see 'repro schemes')")
        p.add_argument("--top-k", type=int, default=10,
                       help="number of results (search only)")
        p.add_argument("--no-optimize", action="store_true",
                       help="run/show the canonical score-isolated plan")
        p.add_argument("--timeout-ms", type=float, default=None,
                       help="wall-clock deadline for query execution "
                            "(milliseconds)")
        p.add_argument("--max-rows", type=int, default=None,
                       help="budget on rows materialized during execution")
        p.add_argument("--max-matches-per-doc", type=int, default=None,
                       help="cap on match rows produced within one document")
        p.add_argument("--on-limit", choices=("error", "partial"),
                       default="error",
                       help="tripped limit behavior: fail the query "
                            "(error) or return the ranked prefix computed "
                            "so far (partial)")
        p.add_argument("--json", action="store_true",
                       help="emit one JSON object on stdout instead of text")
        if name == "search":
            p.add_argument("--shards", type=int, default=None,
                           help="execute the plan across N contiguous "
                                "doc-id shards with a score-consistent "
                                "top-k merge (default: REPRO_SHARDS or "
                                "1 = serial)")
            p.add_argument("--executor",
                           choices=("serial", "thread", "process"),
                           default=None,
                           help="parallel driver for sharded execution: "
                                "thread pool, worker processes over a "
                                "shared-memory packed index, or pinned "
                                "serial (default: REPRO_EXEC or thread)")
            p.add_argument("--profile", action="store_true",
                           help="trace execution and print EXPLAIN ANALYZE "
                                "(per-operator actuals vs. estimates)")
            p.add_argument("--audit", action="store_true",
                           help="shadow-execute the unoptimized canonical "
                                "plan and diff matches and scores "
                                "(score-consistency audit; exit code 3 on "
                                "divergence)")
        else:
            p.add_argument("--analyze", action="store_true",
                           help="execute the plan under the tracer and show "
                                "per-operator actuals next to estimates")
            p.add_argument("--trace-rules", action="store_true",
                           help="show the optimizer's rewrite log: every "
                                "rule considered, its verdict, and costs")

    p_verify = sub.add_parser(
        "verify",
        help="audit a persisted index: checksums, structure, WAL",
    )
    p_verify.add_argument("index_dir", help="directory written by 'repro index'")
    p_verify.add_argument("--json", action="store_true",
                          help="emit the audit report as one JSON object")

    p_ckpt = sub.add_parser(
        "checkpoint",
        help="compact write-ahead-logged documents into a new generation",
    )
    p_ckpt.add_argument("index_dir", help="store directory to checkpoint")

    sub.add_parser("schemes", help="list registered scoring schemes")

    p_metrics = sub.add_parser(
        "metrics",
        help="export the process-wide metrics registry",
    )
    p_metrics.add_argument(
        "--format", choices=("json", "prom"), default="json",
        help="JSON snapshot or Prometheus text exposition format",
    )

    p_qlog = sub.add_parser(
        "qlog",
        help="read a structured query log (JSONL) back",
    )
    qsub = p_qlog.add_subparsers(dest="qlog_command", required=True)
    p_tail = qsub.add_parser("tail", help="show the most recent records")
    p_tail.add_argument("log_path", help="query log file (qlog.jsonl)")
    p_tail.add_argument("-n", "--lines", type=int, default=10,
                        help="number of records to show (default 10)")
    p_tail.add_argument("--json", action="store_true",
                        help="emit one JSON object with the records")
    p_stats = qsub.add_parser(
        "stats", help="aggregate a query log (counts, latencies, slow/audit)"
    )
    p_stats.add_argument("log_path", help="query log file (qlog.jsonl)")
    p_stats.add_argument("--active-only", action="store_true",
                         help="ignore rotated siblings (qlog.jsonl.N)")
    p_stats.add_argument("--json", action="store_true",
                         help="emit the aggregate as one JSON object")

    p_bench = sub.add_parser(
        "bench",
        help="run the paper-workload benchmark, append to the history "
             "trajectory, and optionally gate against a baseline",
    )
    p_bench.add_argument("--check", action="store_true",
                         help="compare this run against the baseline and "
                              "exit non-zero on any regression")
    p_bench.add_argument("--baseline", default="benchmarks/baseline.json",
                         help="checked-in baseline file "
                              "(default benchmarks/baseline.json)")
    p_bench.add_argument("--history",
                         default="benchmarks/results/history.jsonl",
                         help="append-only run trajectory "
                              "(default benchmarks/results/history.jsonl)")
    p_bench.add_argument("--docs", type=int, default=None,
                         help="benchmark corpus size (default: the "
                              "baseline's, else 600)")
    p_bench.add_argument("--scheme", default=None,
                         help="scoring scheme (default: the baseline's, "
                              "else sumbest)")
    p_bench.add_argument("--repeats", type=int, default=5,
                         help="measurement repetitions per query (default 5)")
    p_bench.add_argument("--no-cache", action="store_true",
                         help="run the repeated-query leg with the "
                              "engine's plan cache disabled (measures "
                              "what caching is worth)")
    p_bench.add_argument("--no-parallel", action="store_true",
                         help="skip the sharded-throughput sweep (only "
                              "the per-query workload records)")
    p_bench.add_argument("--no-service", action="store_true",
                         help="skip the end-to-end service-load leg "
                              "(HTTP service + load generator)")
    p_bench.add_argument("--no-telemetry-overhead", action="store_true",
                         help="skip the telemetry on/off overhead leg "
                              "(gates the zero-overhead-when-off "
                              "contract)")
    p_bench.add_argument("--no-span-overhead", action="store_true",
                         help="skip the span-export on/off overhead leg "
                              "(gates the export-off hot path)")
    p_bench.add_argument("--max-slowdown", type=float, default=None,
                         help="wall-time regression tolerance as a ratio "
                              "(default 1.5; raise on noisy shared runners)")
    p_bench.add_argument("--write-baseline", action="store_true",
                         help="pin this run as the new baseline file")
    p_bench.add_argument("--json", action="store_true",
                         help="emit one JSON object (records, regressions)")

    p_serve = sub.add_parser(
        "serve",
        help="serve a store over HTTP: /search /explain /healthz /readyz "
             "/metrics, with admission control, load shedding, and live "
             "generation hot-swap (docs/SERVICE.md)",
    )
    p_serve.add_argument("index_dir", help="store directory to serve "
                                           "(created if missing)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8321,
                         help="listen port (0 = ephemeral; default 8321)")
    p_serve.add_argument("--max-inflight", type=int, default=8,
                         help="concurrent search executions (default 8)")
    p_serve.add_argument("--max-queue", type=int, default=16,
                         help="waiting requests before load shedding "
                              "(default 16)")
    p_serve.add_argument("--deadline-ms", type=float, default=1000.0,
                         help="default per-request budget, queue wait "
                              "included (default 1000)")
    p_serve.add_argument("--shards", type=int, default=None,
                         help="shard count for reader engines "
                              "(default REPRO_SHARDS or serial)")
    p_serve.add_argument("--executor",
                         choices=("serial", "thread", "process"),
                         default=None,
                         help="parallel driver for reader engines: thread "
                              "pool, worker processes over a shared-memory "
                              "packed index, or pinned serial (default "
                              "REPRO_EXEC or thread)")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="search executor width: threads serving "
                              "requests (default --max-inflight); the "
                              "process driver additionally sizes its "
                              "worker-process pool to min(shards, cores)")
    p_serve.add_argument("--checkpoint-every", type=int, default=0,
                         help="auto checkpoint+swap after N added "
                              "documents (0 = only via POST "
                              "/admin/checkpoint)")
    p_serve.add_argument("--drain-timeout-s", type=float, default=5.0,
                         help="graceful-shutdown budget on SIGTERM "
                              "(default 5)")
    p_serve.add_argument("--no-telemetry", action="store_true",
                         help="disable request telemetry (correlation "
                              "ids, phase spans, /debug/requests and "
                              "/debug/slow)")
    p_serve.add_argument("--slow-capacity", type=int, default=32,
                         help="worst wide events retained by the "
                              "slow-request capture (default 32)")
    p_serve.add_argument("--slow-window-s", type=float, default=600.0,
                         help="rolling window of the slow-request "
                              "capture in seconds (default 600)")
    p_serve.add_argument("--qlog", default=None, metavar="PATH",
                         help="attach a structured query log at PATH "
                              "(records carry the request id; joinable "
                              "with /debug/slow)")
    p_serve.add_argument("--qlog-sample-rate", type=float, default=1.0,
                         help="fraction of ordinary queries the attached "
                              "qlog keeps (default 1.0; slow/failed "
                              "always logged)")
    p_serve.add_argument("--enable-profile", action="store_true",
                         help="enable GET /debug/profile?seconds=N (the "
                              "stdlib sampling profiler; off by default)")
    p_serve.add_argument("--slo", action="append", default=[],
                         metavar="SPEC", dest="slos",
                         help="declare an objective for the SLO engine, "
                              "repeatable; e.g. latency:p99:50ms:0.99 or "
                              "availability:0.999 (serves /debug/slo and "
                              "graft_slo_* metrics)")
    p_serve.add_argument("--slo-shed", action="store_true",
                         help="arm early admission shedding (half the "
                              "queue watermark) while a fast-window "
                              "burn-rate breach is in progress")
    p_serve.add_argument("--spans", action="store_true",
                         help="export one unified OTLP-shaped span tree "
                              "per request, served at "
                              "/debug/trace/<request-id>")
    p_serve.add_argument("--spans-path", default=None, metavar="PATH",
                         help="also append exported traces to this "
                              "rotating JSONL file (implies --spans "
                              "semantics; one payload per line)")
    p_serve.add_argument("--spans-capacity", type=int, default=256,
                         help="traces retained by the in-memory ring "
                              "(default 256)")

    p_slow = sub.add_parser(
        "slow",
        help="aggregate captured slow-request wide events into a "
             "'where does p99 go' per-phase attribution report",
    )
    p_slow.add_argument(
        "source",
        help="a running service base URL (fetches /debug/slow) or a "
             "JSON/JSONL file of wide events (e.g. a saved /debug/slow "
             "response)",
    )
    p_slow.add_argument("-n", type=int, default=64,
                        help="events to fetch from /debug/slow "
                             "(default 64)")
    p_slow.add_argument("--tail-q", type=float, default=0.99,
                        help="tail quantile to attribute (default 0.99)")
    p_slow.add_argument("--json", action="store_true",
                        help="emit the report as one JSON object")

    p_top = sub.add_parser(
        "top",
        help="live ops console for a running service: rolling latency, "
             "admission counters, cache hit ratios, SLO budget bars "
             "(polls /status + /debug/slo + /metrics)",
    )
    p_top.add_argument("url", help="service base URL, e.g. "
                                   "http://127.0.0.1:8321")
    p_top.add_argument("--interval", type=float, default=2.0,
                       help="seconds between repaints (default 2)")
    p_top.add_argument("--once", action="store_true",
                       help="render a single snapshot and exit (no "
                            "screen clearing)")
    p_top.add_argument("--json", action="store_true",
                       help="emit the raw polled snapshot as JSON "
                            "(pairs with --once for scripting/CI)")
    p_top.add_argument("--no-color", action="store_true",
                       help="disable ANSI colors")

    p_loadgen = sub.add_parser(
        "loadgen",
        help="drive a running query service and report qps/p50/p99, "
             "shed and timeout counts, and generations observed",
    )
    p_loadgen.add_argument("url", help="service base URL, e.g. "
                                       "http://127.0.0.1:8321")
    p_loadgen.add_argument("-n", "--requests", type=int, default=200)
    p_loadgen.add_argument("-c", "--concurrency", type=int, default=8)
    p_loadgen.add_argument("--scheme", default="sumbest")
    p_loadgen.add_argument("--top-k", type=int, default=10)
    p_loadgen.add_argument("--deadline-ms", type=float, default=None,
                           help="per-request deadline to request")
    p_loadgen.add_argument("--swap-at", type=int, default=None,
                           help="POST /admin/checkpoint after this many "
                                "responses (mid-run hot swap)")
    p_loadgen.add_argument("--respect-retry-after", action="store_true",
                           help="on 503, honor the Retry-After hint and "
                                "retry instead of moving on")
    p_loadgen.add_argument("--json", action="store_true",
                           help="emit the report as one JSON object")
    return parser


def _cmd_index(args: argparse.Namespace) -> int:
    from repro.api import SearchEngine

    docs_dir = pathlib.Path(args.docs_dir)
    files = sorted(docs_dir.glob("*.txt"))
    if not files:
        print(f"no .txt files under {docs_dir}", file=sys.stderr)
        return 1
    analyzer = SentenceAnalyzer() if args.sentences else SimpleAnalyzer()
    collection = DocumentCollection(analyzer)
    for path in files:
        collection.add_text(path.read_text(), title=path.stem)
    engine = SearchEngine(collection)
    engine.save(args.index_dir)
    index = engine.index
    print(f"indexed {len(collection)} documents "
          f"({index.stats.total_tokens} tokens, "
          f"{index.vocabulary_size()} terms) -> {args.index_dir}")
    return 0


def _warn(message: str) -> None:
    print(f"warning: {message}", file=sys.stderr)


def _load(args: argparse.Namespace) -> tuple[Index, list[str]]:
    """Load the index and titles from a store or legacy directory.

    A missing title list degrades output (results show bare doc ids), so
    it is warned about explicitly instead of silently substituting [].
    """
    from repro.index.store import TITLES_FILE, IndexStore

    index_dir = pathlib.Path(args.index_dir)
    if IndexStore.is_store(index_dir):
        store = IndexStore.open(index_dir)
        index = store.load_index()
        if store.wal_records():
            _warn(
                f"{index_dir} has write-ahead-logged documents not yet "
                f"checkpointed; run 'repro checkpoint' to include them"
            )
        if store.has_file(TITLES_FILE):
            titles = json.loads(store.read_file(TITLES_FILE))
        else:
            _warn(
                f"no {TITLES_FILE} in {index_dir}; results will show "
                f"bare doc ids instead of titles"
            )
            titles = []
        return index, titles
    index = load_index(index_dir)
    titles_path = index_dir / _TITLES
    if titles_path.exists():
        titles = json.loads(titles_path.read_text())
    else:
        _warn(
            f"no {_TITLES} in {index_dir}; results will show bare doc "
            f"ids instead of titles"
        )
        titles = []
    return index, titles


def _optimize(args: argparse.Namespace, index: Index):
    scheme = get_scheme(args.scheme)
    query = parse_query(args.query, SimpleAnalyzer())
    optimizer = Optimizer(scheme, index)
    result = (
        optimizer.canonical(query) if args.no_optimize
        else optimizer.optimize(query)
    )
    return scheme, result


def _limits_from_args(args: argparse.Namespace) -> QueryLimits | None:
    if (
        args.timeout_ms is None
        and args.max_rows is None
        and args.max_matches_per_doc is None
    ):
        return None
    return QueryLimits(
        deadline_ms=args.timeout_ms,
        max_rows=args.max_rows,
        max_matches_per_doc=args.max_matches_per_doc,
        on_limit=args.on_limit,
    )


def _search_process(sharded, scheme, result, args, limits):
    """One-shot process-pool execution for ``search --executor process``.

    Packs the loaded index, publishes it in shared memory, runs the
    query on worker processes, and tears the pool down.  Returns None —
    the caller falls back to the thread driver — when the environment
    cannot run worker processes or the plan cannot cross the pickle
    boundary; scores are identical either way.
    """
    from repro.errors import IndexError_
    from repro.exec.procpool import (
        ProcessShardPool,
        ProcPoolUnavailableError,
        default_worker_count,
        execute_sharded_process,
    )
    from repro.index.packed import pack_index

    try:
        pool = ProcessShardPool(
            pack_index(sharded.base),
            sharded.num_shards,
            max_workers=default_worker_count(sharded.num_shards),
        )
    except (ProcPoolUnavailableError, IndexError_) as exc:
        _warn(f"process executor unavailable ({exc}); "
              f"falling back to threads")
        return None
    try:
        return execute_sharded_process(
            pool, sharded, result.plan, scheme, result.info,
            top_k=args.top_k, limits=limits,
        )
    except ProcPoolUnavailableError as exc:
        _warn(f"process submission failed ({exc}); "
              f"falling back to threads")
        return None
    finally:
        pool.close()


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.api import _resolve_executor, _resolve_shards

    index, titles = _load(args)
    scheme, result = _optimize(args, index)
    shards = _resolve_shards(args.shards)
    executor = _resolve_executor(args.executor)
    limits = _limits_from_args(args)
    trace_root = None
    total_ns = None
    shard_note = None
    if shards > 1 and executor != "serial":
        import time

        from repro.exec.parallel import execute_sharded
        from repro.index.shard import ShardedIndex
        from repro.sa.context import IndexScoringContext

        sharded = ShardedIndex(index, shards)
        started = time.perf_counter_ns()
        par = None
        used_executor = "thread"
        if executor == "process" and not args.profile:
            par = _search_process(sharded, scheme, result, args, limits)
            if par is not None:
                used_executor = "process"
        if par is None:
            par = execute_sharded(
                sharded, result.plan, scheme, result.info,
                IndexScoringContext(index), top_k=args.top_k,
                limits=limits, profile=args.profile,
            )
        if args.profile:  # the contract: no --profile, no wall time
            total_ns = time.perf_counter_ns() - started
        ranked = par.results
        metrics = par.metrics
        limit_hit = par.tripped
        trace_root = par.trace_root
        shard_note = {"shards": par.shard_count,
                      "shards_pruned": par.shards_pruned,
                      "executor": used_executor}
    else:
        tracer = None
        if args.profile:
            from repro.obs.trace import Tracer

            tracer = Tracer()
        runtime = make_runtime(index, scheme, result.info,
                               limits=limits, tracer=tracer)
        ranked = execute(result.plan, runtime, top_k=args.top_k)
        runtime.metrics.rows_charged = runtime.guard.rows_charged
        metrics = runtime.metrics
        limit_hit = runtime.guard.tripped
        if tracer is not None:
            trace_root = tracer.root
            total_ns = tracer.total_ns
    if limit_hit is not None:
        print(f"note: partial results — {limit_hit} limit hit",
              file=sys.stderr)
    if trace_root is not None:
        from repro.obs.analyze import annotate_estimates

        annotate_estimates(trace_root, index)

    audit_event = None
    if args.audit and limit_hit is None:
        from repro.obs.audit import shadow_audit

        query = parse_query(args.query, SimpleAnalyzer())
        audit_event = shadow_audit(
            index, scheme, query, ranked,
            top_k=args.top_k,
            rewrite_log=result.rewrites,
            applied=result.applied,
            query_text=args.query,
        )
    elif args.audit:
        _warn("audit skipped: partial (limit-degraded) results cannot be "
              "compared against the canonical plan")

    def title_of(doc: int) -> str:
        return titles[doc] if doc < len(titles) else f"doc{doc}"

    if args.json:
        payload = {
            "query": args.query,
            "scheme": scheme.name,
            "results": [
                {"rank": rank, "doc_id": doc, "score": score,
                 "title": title_of(doc)}
                for rank, (doc, score) in enumerate(ranked, start=1)
            ],
            "applied_optimizations": list(result.applied),
            "degraded": limit_hit is not None,
            "limit_hit": limit_hit,
            "metrics": metrics.as_dict(),
            "trace": (
                trace_root.to_dict() if trace_root is not None else None
            ),
            "wall_ms": (
                total_ns / 1e6 if total_ns is not None else None
            ),
            "audit": (
                audit_event.to_dict() if audit_event is not None else None
            ),
        }
        if shard_note is not None:
            payload.update(shard_note)
        print(json.dumps(payload))
        if audit_event is not None and not audit_event.ok:
            print(f"error: {audit_event.describe()}", file=sys.stderr)
            return 3
        return 0
    if not ranked:
        print("no matches")
    for rank, (doc, score) in enumerate(ranked, start=1):
        print(f"{rank:3}. {score:10.4f}  [{doc}] {title_of(doc)}")
    if shard_note is not None:
        print(f"({shard_note['shards']} shards, "
              f"{shard_note['shards_pruned']} pruned, "
              f"{shard_note['executor']} executor)", file=sys.stderr)
    if trace_root is not None:
        from repro.obs.analyze import render_analyze

        print()
        print(render_analyze(trace_root, total_ns=total_ns))
    if audit_event is not None:
        print()
        print(audit_event.describe())
        if not audit_event.ok:
            print(f"error: {audit_event.describe()}", file=sys.stderr)
            return 3
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    index, _ = _load(args)
    scheme, result = _optimize(args, index)
    analyze_root = None
    total_ns = None
    if args.analyze:
        from repro.obs.analyze import annotate_estimates
        from repro.obs.trace import Tracer

        tracer = Tracer()
        runtime = make_runtime(index, scheme, result.info,
                               limits=_limits_from_args(args), tracer=tracer)
        execute(result.plan, runtime)
        annotate_estimates(tracer.root, index)
        analyze_root = tracer.root
        total_ns = tracer.total_ns
    if args.json:
        payload = {
            "query": args.query,
            "scheme": scheme.name,
            "applied_optimizations": list(result.applied),
            "plan": explain_plan(result.plan),
            "rewrite_log": (
                [event.to_dict() for event in result.rewrites]
                if args.trace_rules else None
            ),
            "trace": (
                analyze_root.to_dict() if analyze_root is not None else None
            ),
            "wall_ms": total_ns / 1e6 if total_ns is not None else None,
        }
        print(json.dumps(payload))
        return 0
    rewrites = ", ".join(result.applied) or "none"
    print(f"scheme: {scheme.name}")
    print(f"rewrites: {rewrites}")
    print(explain_plan(result.plan, index=index))
    if args.trace_rules:
        from repro.obs.rewrite import render_rewrite_log

        print()
        print("rewrite log:")
        print(render_rewrite_log(result.rewrites))
    if analyze_root is not None:
        from repro.obs.analyze import render_analyze

        print()
        print("analyze:")
        print(render_analyze(analyze_root, total_ns=total_ns))
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.index.store import IndexStore

    index_dir = pathlib.Path(args.index_dir)
    if IndexStore.is_store(index_dir):
        report = IndexStore.open(index_dir).verify()
        if report["wal_torn_bytes"]:
            _warn("torn WAL tail present (interrupted append); it will "
                  "be truncated on the next writer open")
        if args.json:
            print(json.dumps({"ok": True, "format": "store", **report}))
            return 0
        print(f"store OK: generation {report['generation']}, "
              f"{report['doc_count']} documents")
        for name, size in sorted(report["files"].items()):
            print(f"  {name:20} {size:10d} bytes  sha256 verified")
        print(f"  WAL: {report['wal_records']} records "
              f"({report['wal_pending']} pending checkpoint, "
              f"{report['wal_torn_bytes']} torn bytes)")
        return 0
    # Legacy v1 layout: no checksums to audit, but a full decode still
    # proves structural integrity.
    load_index(index_dir)
    if args.json:
        print(json.dumps({"ok": True, "format": "legacy-v1",
                          "path": str(index_dir)}))
        return 0
    print(f"legacy (v1) index OK under {index_dir} — no checksums; "
          f"re-save to upgrade to the crash-safe store format")
    return 0


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    from repro.api import SearchEngine

    with SearchEngine.open(args.index_dir) as engine:
        pending = len(engine.collection)
        generation = engine.checkpoint()
    print(f"checkpointed {pending} documents into {generation} "
          f"under {args.index_dir}")
    return 0


def _cmd_schemes(args: argparse.Namespace) -> int:
    for name in available_schemes():
        props = get_scheme(name).properties
        direction = props.directional or "diagonal"
        tags = [direction]
        if props.constant:
            tags.append("constant")
        if props.positional:
            tags.append("positional")
        print(f"{name:20} {', '.join(tags)}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs.metrics import REGISTRY

    if args.format == "prom":
        sys.stdout.write(REGISTRY.to_prometheus_text())
    else:
        print(REGISTRY.to_json())
    return 0


def _cmd_qlog(args: argparse.Namespace) -> int:
    from repro.obs.qlog import log_stats, render_record, tail_records

    if args.qlog_command == "tail":
        records = tail_records(args.log_path, n=args.lines)
        if args.json:
            print(json.dumps({"path": args.log_path, "records": records}))
            return 0
        if not records:
            print("(empty query log)")
        for record in records:
            print(render_record(record))
        return 0
    stats = log_stats(args.log_path, include_rotated=not args.active_only)
    if args.json:
        print(json.dumps({"path": args.log_path, **stats}))
        return 0
    print(f"{stats['records']} records "
          f"({stats['forced']} force-logged, {stats['slow']} slow, "
          f"{stats['audit_failures']} audit failures)")
    for status, n in stats["by_status"].items():
        print(f"  status {status:10} {n}")
    for scheme, n in stats["by_scheme"].items():
        print(f"  scheme {scheme:10} {n}")
    wall = stats["wall_ms"]
    print(f"  wall ms: p50 {wall['p50']:.3f}  p95 {wall['p95']:.3f}  "
          f"max {wall['max']:.3f}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.history import (
        DEFAULT_MAX_SLOWDOWN,
        append_history,
        compare_to_baseline,
        load_baseline,
        scaling_gate,
        write_baseline,
    )
    from repro.bench.runner import (
        DEFAULT_DOCS,
        DEFAULT_SCHEME,
        run_parallel_throughput,
        run_service_load,
        run_span_overhead,
        run_telemetry_overhead,
        run_workload,
    )

    baseline = None
    if args.check:
        baseline = load_baseline(args.baseline)
    # Default corpus size and scheme from the baseline so rows are
    # comparable; explicit flags override (and will flag row drift).
    base_params = (baseline or {}).get("params", {})
    docs = args.docs if args.docs is not None else \
        base_params.get("docs", DEFAULT_DOCS)
    scheme = args.scheme if args.scheme is not None else \
        base_params.get("scheme", DEFAULT_SCHEME)

    run_id, records = run_workload(
        num_docs=docs, scheme_name=scheme, repeats=args.repeats
    )
    if not args.no_parallel:
        _, parallel_records = run_parallel_throughput(
            num_docs=docs, scheme_name=scheme, repeats=args.repeats,
            run_id=run_id, use_cache=not args.no_cache,
        )
        records.update(parallel_records)
    if not args.no_service:
        _, service_records = run_service_load(
            num_docs=docs, scheme_name=scheme, run_id=run_id
        )
        records.update(service_records)
    if not args.no_telemetry_overhead:
        _, overhead_records = run_telemetry_overhead(
            num_docs=docs, scheme_name=scheme, repeats=args.repeats,
            run_id=run_id,
        )
        records.update(overhead_records)
    if not args.no_span_overhead:
        _, span_records = run_span_overhead(
            num_docs=docs, scheme_name=scheme, repeats=args.repeats,
            run_id=run_id,
        )
        records.update(span_records)
    append_history(list(records.values()), args.history)

    if args.write_baseline:
        write_baseline(
            args.baseline, records, params={"docs": docs, "scheme": scheme}
        )

    regressions = []
    scaling_notes: list[str] = []
    if baseline is not None:
        tolerance = (
            args.max_slowdown if args.max_slowdown is not None
            else DEFAULT_MAX_SLOWDOWN
        )
        regressions = compare_to_baseline(
            records, baseline, max_slowdown=tolerance
        )
        if not args.no_parallel:
            scaling_regressions, scaling_notes = scaling_gate(records)
            regressions = regressions + scaling_regressions

    if args.json:
        print(json.dumps({
            "run_id": run_id,
            "history": args.history,
            "records": {name: rec for name, rec in sorted(records.items())},
            "checked": args.check,
            "scaling": scaling_notes,
            "regressions": [r.to_dict() for r in regressions],
        }))
        return 1 if regressions else 0

    print(f"run {run_id} ({len(records)} benchmarks, {docs} docs, "
          f"scheme {scheme}) -> {args.history}")
    for name, rec in sorted(records.items()):
        print(f"  {name:24} {rec['wall_ms']:9.3f} ms  {rec['rows']:6d} rows")
    if args.write_baseline:
        print(f"baseline pinned -> {args.baseline}")
    for note in scaling_notes:
        print(f"  {note}")
    if args.check:
        if regressions:
            print(f"{len(regressions)} regression(s) vs {args.baseline}:",
                  file=sys.stderr)
            for reg in regressions:
                print(f"  REGRESSION: {reg.message}", file=sys.stderr)
            return 1
        print(f"gate OK vs {args.baseline}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import ServiceConfig, run_server

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        deadline_ms=args.deadline_ms,
        shards=args.shards,
        executor=args.executor,
        executor_workers=args.workers,
        checkpoint_every=args.checkpoint_every,
        drain_timeout_s=args.drain_timeout_s,
        telemetry=not args.no_telemetry,
        slow_capacity=args.slow_capacity,
        slow_window_s=args.slow_window_s,
        qlog_path=args.qlog,
        qlog_sample_rate=args.qlog_sample_rate,
        profile_endpoint=args.enable_profile,
        slos=tuple(args.slos),
        slo_shed=args.slo_shed,
        # A spans file implies span export; the flag alone keeps the
        # in-memory ring only.
        spans=args.spans or args.spans_path is not None,
        spans_path=args.spans_path,
        spans_capacity=args.spans_capacity,
    )
    asyncio.run(run_server(args.index_dir, config))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.serve.console import run_top

    return run_top(
        args.url,
        interval_s=args.interval,
        once=args.once,
        as_json=args.json,
        color=not args.no_color and sys.stdout.isatty(),
    )


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio
    from urllib.parse import urlsplit

    from repro.serve import run_loadgen

    split = urlsplit(
        args.url if "//" in args.url else f"http://{args.url}"
    )
    if split.hostname is None or split.port is None:
        print(f"error: cannot parse host:port from {args.url!r}",
              file=sys.stderr)
        return 2
    report = asyncio.run(
        run_loadgen(
            split.hostname,
            split.port,
            requests=args.requests,
            concurrency=args.concurrency,
            scheme=args.scheme,
            top_k=args.top_k,
            deadline_ms=args.deadline_ms,
            swap_at=args.swap_at,
            respect_retry_after=args.respect_retry_after,
        )
    )
    summary = report.summary()
    if args.json:
        print(json.dumps(summary))
        return 0 if report.errors == 0 else 1
    print(f"{summary['requests']} requests in {summary['wall_s']:.3f}s "
          f"({summary['qps']:.1f} qps, concurrency {args.concurrency})")
    print(f"  ok {summary['ok']}  shed {summary['shed']}  "
          f"timeouts {summary['timeouts']}  errors {summary['errors']}  "
          f"degraded {summary['degraded']}")
    print(f"  latency ms (accepted): p50 {summary['p50_ms']:.3f}  "
          f"p95 {summary['p95_ms']:.3f}  p99 {summary['p99_ms']:.3f}")
    print(f"  generations observed: "
          f"{', '.join(summary['generations']) or '(none)'}  "
          f"epochs: {summary['epochs']}")
    if summary["id_mismatches"]:
        print(f"  WARNING: {summary['id_mismatches']} responses did not "
              f"echo X-Request-Id", file=sys.stderr)
    return 0 if report.errors == 0 and report.id_mismatches == 0 else 1


def _cmd_slow(args: argparse.Namespace) -> int:
    from repro.obs.telemetry import attribute_phases, render_attribution

    events: list[dict] = []
    source = args.source
    looks_like_url = "://" in source or (
        not pathlib.Path(source).exists() and ":" in source
    )
    if looks_like_url:
        import urllib.error
        import urllib.request

        base = source if "://" in source else f"http://{source}"
        url = f"{base.rstrip('/')}/debug/slow?n={args.n}"
        try:
            with urllib.request.urlopen(url, timeout=10.0) as resp:
                payload = json.loads(resp.read().decode("utf-8"))
        except (urllib.error.URLError, OSError, ValueError) as exc:
            print(f"error: cannot fetch {url}: {exc}", file=sys.stderr)
            return 2
        events = payload.get("events", [])
    else:
        path = pathlib.Path(source)
        if not path.exists():
            print(f"error: no such file {source!r}", file=sys.stderr)
            return 2
        text = path.read_text(encoding="utf-8").strip()
        if text.startswith("{") and "\n{" not in text:
            payload = json.loads(text)
            # A saved /debug/slow response, a single wide event, or a
            # {"events": [...]} envelope.
            events = payload.get("events", [payload] if "phase_ms" in payload else [])
        else:
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                if isinstance(record, dict):
                    events.append(record)
    # Graceful degradation on pre-telemetry records: qlog schema v1 has
    # neither request_id nor phase_ms, so those records cannot be
    # attributed — skip them with a count instead of erroring out.
    usable = [
        e for e in events
        if isinstance(e.get("phase_ms"), dict) and e.get("request_id")
    ]
    skipped = len(events) - len(usable)
    if skipped:
        _warn(
            f"skipped {skipped} record(s) without request_id/phase_ms "
            f"(qlog schema v1 or non-telemetry records)"
        )
    report = attribute_phases(usable, tail_q=args.tail_q)
    report["skipped"] = skipped
    if args.json:
        print(json.dumps(report))
        return 0
    print(render_attribution(report))
    if skipped:
        print(f"({skipped} unattributable record(s) skipped)")
    return 0


_COMMANDS = {
    "index": _cmd_index,
    "search": _cmd_search,
    "explain": _cmd_explain,
    "verify": _cmd_verify,
    "checkpoint": _cmd_checkpoint,
    "schemes": _cmd_schemes,
    "metrics": _cmd_metrics,
    "qlog": _cmd_qlog,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
    "top": _cmd_top,
    "loadgen": _cmd_loadgen,
    "slow": _cmd_slow,
}


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except GraftError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
