"""Command-line interface.

Usage::

    python -m repro index  DOCS_DIR  INDEX_DIR      # index *.txt files
    python -m repro search INDEX_DIR QUERY [options]
    python -m repro explain INDEX_DIR QUERY [options]
    python -m repro schemes                          # list scoring schemes

``index`` builds and persists the inverted index (plus document titles)
from a directory of text files, one document per file; ``search`` runs a
shorthand query against a persisted index under any registered scoring
scheme; ``explain`` prints the optimized plan instead of executing it.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.corpus.analyzer import SentenceAnalyzer, SimpleAnalyzer
from repro.errors import GraftError
from repro.exec.engine import execute, make_runtime
from repro.exec.limits import QueryLimits
from repro.graft.explain import explain as explain_plan
from repro.graft.optimizer import Optimizer
from repro.index.builder import IndexBuilder
from repro.index.index import Index
from repro.index.io import load_index, save_index
from repro.mcalc.parser import parse_query
from repro.sa.registry import available_schemes, get_scheme

_TITLES = "titles.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GRAFT: full-text search with score-consistent "
                    "algebraic optimization (SIGMOD 2011 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_index = sub.add_parser("index", help="index a directory of .txt files")
    p_index.add_argument("docs_dir", help="directory containing *.txt files")
    p_index.add_argument("index_dir", help="output directory for the index")
    p_index.add_argument(
        "--sentences", action="store_true",
        help="record sentence boundaries (enables the SAMESENTENCE "
             "predicate over real sentences)",
    )

    for name, help_text in (
        ("search", "run a query against a persisted index"),
        ("explain", "show the optimized plan for a query"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("index_dir", help="directory written by 'repro index'")
        p.add_argument("query", help="shorthand query text")
        p.add_argument("--scheme", default="sumbest",
                       help="scoring scheme name (see 'repro schemes')")
        p.add_argument("--top-k", type=int, default=10,
                       help="number of results (search only)")
        p.add_argument("--no-optimize", action="store_true",
                       help="run/show the canonical score-isolated plan")
        p.add_argument("--timeout-ms", type=float, default=None,
                       help="wall-clock deadline for query execution "
                            "(milliseconds)")
        p.add_argument("--max-rows", type=int, default=None,
                       help="budget on rows materialized during execution")
        p.add_argument("--max-matches-per-doc", type=int, default=None,
                       help="cap on match rows produced within one document")
        p.add_argument("--on-limit", choices=("error", "partial"),
                       default="error",
                       help="tripped limit behavior: fail the query "
                            "(error) or return the ranked prefix computed "
                            "so far (partial)")

    sub.add_parser("schemes", help="list registered scoring schemes")
    return parser


def _cmd_index(args: argparse.Namespace) -> int:
    docs_dir = pathlib.Path(args.docs_dir)
    files = sorted(docs_dir.glob("*.txt"))
    if not files:
        print(f"no .txt files under {docs_dir}", file=sys.stderr)
        return 1
    analyzer = SentenceAnalyzer() if args.sentences else SimpleAnalyzer()
    builder = IndexBuilder()
    titles = []
    for doc_id, path in enumerate(files):
        analyzed = analyzer.analyze(path.read_text())
        builder.add_document(
            doc_id, analyzed.tokens, analyzed.sentence_starts
        )
        titles.append(path.stem)
    index = builder.build()
    out = save_index(index, args.index_dir)
    (out / _TITLES).write_text(json.dumps(titles))
    print(f"indexed {len(titles)} documents "
          f"({index.stats.total_tokens} tokens, "
          f"{index.vocabulary_size()} terms) -> {out}")
    return 0


def _load(args: argparse.Namespace) -> tuple[Index, list[str]]:
    index = load_index(args.index_dir)
    titles_path = pathlib.Path(args.index_dir) / _TITLES
    titles = json.loads(titles_path.read_text()) if titles_path.exists() else []
    return index, titles


def _optimize(args: argparse.Namespace, index: Index):
    scheme = get_scheme(args.scheme)
    query = parse_query(args.query, SimpleAnalyzer())
    optimizer = Optimizer(scheme, index)
    result = (
        optimizer.canonical(query) if args.no_optimize
        else optimizer.optimize(query)
    )
    return scheme, result


def _limits_from_args(args: argparse.Namespace) -> QueryLimits | None:
    if (
        args.timeout_ms is None
        and args.max_rows is None
        and args.max_matches_per_doc is None
    ):
        return None
    return QueryLimits(
        deadline_ms=args.timeout_ms,
        max_rows=args.max_rows,
        max_matches_per_doc=args.max_matches_per_doc,
        on_limit=args.on_limit,
    )


def _cmd_search(args: argparse.Namespace) -> int:
    index, titles = _load(args)
    scheme, result = _optimize(args, index)
    runtime = make_runtime(index, scheme, result.info,
                           limits=_limits_from_args(args))
    ranked = execute(result.plan, runtime, top_k=args.top_k)
    if runtime.guard.tripped is not None:
        print(f"note: partial results — {runtime.guard.tripped} limit hit",
              file=sys.stderr)
    if not ranked:
        print("no matches")
        return 0
    for rank, (doc, score) in enumerate(ranked, start=1):
        title = titles[doc] if doc < len(titles) else f"doc{doc}"
        print(f"{rank:3}. {score:10.4f}  [{doc}] {title}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    index, _ = _load(args)
    scheme, result = _optimize(args, index)
    rewrites = ", ".join(result.applied) or "none"
    print(f"scheme: {scheme.name}")
    print(f"rewrites: {rewrites}")
    print(explain_plan(result.plan))
    return 0


def _cmd_schemes(args: argparse.Namespace) -> int:
    for name in available_schemes():
        props = get_scheme(name).properties
        direction = props.directional or "diagonal"
        tags = [direction]
        if props.constant:
            tags.append("constant")
        if props.positional:
            tags.append("positional")
        print(f"{name:20} {', '.join(tags)}")
    return 0


_COMMANDS = {
    "index": _cmd_index,
    "search": _cmd_search,
    "explain": _cmd_explain,
    "schemes": _cmd_schemes,
}


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except GraftError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
