"""Collection persistence: JSON-lines documents alongside a saved index.

One line per document: ``{"title": ..., "tokens": [...],
"sentence_starts": [...]}``.  Tokens are stored post-analysis so a
reloaded collection reproduces positions exactly regardless of analyzer
drift.
"""

from __future__ import annotations

import json
import pathlib

from repro.corpus.analyzer import Analyzer
from repro.corpus.collection import DocumentCollection
from repro.errors import IndexError_

_DOCS = "documents.jsonl"


def save_collection(
    collection: DocumentCollection, directory: str | pathlib.Path
) -> pathlib.Path:
    """Write ``collection`` as JSON lines under ``directory``."""
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    with open(path / _DOCS, "w") as out:
        for doc in collection:
            out.write(json.dumps({
                "title": doc.title,
                "tokens": list(doc.tokens),
                "sentence_starts": list(doc.sentence_starts),
            }))
            out.write("\n")
    return path


def load_collection(
    directory: str | pathlib.Path, analyzer: Analyzer | None = None
) -> DocumentCollection:
    """Load a collection saved by :func:`save_collection`.

    ``analyzer`` is attached for future queries/additions; stored tokens
    are used verbatim.
    """
    path = pathlib.Path(directory) / _DOCS
    if not path.exists():
        raise IndexError_(f"no saved collection under {path.parent}")
    collection = DocumentCollection(analyzer)
    with open(path) as lines:
        for line in lines:
            record = json.loads(line)
            collection.add_tokens(
                record["tokens"],
                title=record.get("title", ""),
                sentence_starts=tuple(record.get("sentence_starts", ())),
            )
    return collection
