"""Collection persistence: JSON-lines documents alongside a saved index.

One line per document: ``{"title": ..., "tokens": [...],
"sentence_starts": [...]}``.  Tokens are stored post-analysis so a
reloaded collection reproduces positions exactly regardless of analyzer
drift.
"""

from __future__ import annotations

import json
import pathlib

from repro.corpus.analyzer import Analyzer
from repro.corpus.collection import DocumentCollection
from repro.errors import IndexCorruptionError, IndexError_

_DOCS = "documents.jsonl"


def document_record(doc) -> dict:
    """The JSON-serializable record for one analyzed document."""
    return {
        "title": doc.title,
        "tokens": list(doc.tokens),
        "sentence_starts": list(doc.sentence_starts),
    }


def add_record(collection: DocumentCollection, record: dict):
    """Append one :func:`document_record` to ``collection``."""
    return collection.add_tokens(
        record["tokens"],
        title=record.get("title", ""),
        sentence_starts=tuple(record.get("sentence_starts", ())),
    )


def collection_to_bytes(collection: DocumentCollection) -> bytes:
    """Serialize ``collection`` as JSON-lines bytes."""
    lines = [json.dumps(document_record(doc)) for doc in collection]
    return ("\n".join(lines) + "\n" if lines else "").encode("utf-8")


def collection_from_bytes(
    data: bytes,
    analyzer: Analyzer | None = None,
    source: str = _DOCS,
) -> DocumentCollection:
    """Parse JSON-lines bytes back into a collection.

    Malformed lines raise :class:`IndexCorruptionError` naming
    ``source`` — by the time this runs the bytes have already passed
    their checksum, so damage here means a writer bug, not bit rot.
    """
    collection = DocumentCollection(analyzer)
    for lineno, line in enumerate(data.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            add_record(collection, record)
        except (ValueError, KeyError, TypeError) as exc:
            raise IndexCorruptionError(
                f"malformed document record on line {lineno}: {exc}",
                path=source,
            ) from exc
    return collection


def save_collection(
    collection: DocumentCollection, directory: str | pathlib.Path
) -> pathlib.Path:
    """Write ``collection`` as JSON lines under ``directory``."""
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    with open(path / _DOCS, "w") as out:
        for doc in collection:
            out.write(json.dumps({
                "title": doc.title,
                "tokens": list(doc.tokens),
                "sentence_starts": list(doc.sentence_starts),
            }))
            out.write("\n")
    return path


def load_collection(
    directory: str | pathlib.Path, analyzer: Analyzer | None = None
) -> DocumentCollection:
    """Load a collection saved by :func:`save_collection`.

    ``analyzer`` is attached for future queries/additions; stored tokens
    are used verbatim.
    """
    path = pathlib.Path(directory) / _DOCS
    if not path.exists():
        raise IndexError_(f"no saved collection under {path.parent}")
    return collection_from_bytes(
        path.read_bytes(), analyzer, source=str(path)
    )
