"""A collection of documents: the "library" the paper's queries run over.

The paper assumes "a system has a single library of documents indexed, and
that all queries are applied to the entire library" (Section 3.2).
``DocumentCollection`` is that library.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.corpus.analyzer import Analyzer, SimpleAnalyzer
from repro.corpus.document import Document


class DocumentCollection:
    """An ordered, densely-identified set of documents.

    Documents receive consecutive integer ids in insertion order.  The
    collection owns the analyzer so every document is tokenized the same
    way, and so query keywords can be analyzed consistently.
    """

    def __init__(self, analyzer: Analyzer | None = None):
        self.analyzer = analyzer if analyzer is not None else SimpleAnalyzer()
        self._docs: list[Document] = []

    def add_text(self, text: str, title: str = "") -> Document:
        """Analyze ``text`` and append it as a new document."""
        analyzed = self.analyzer.analyze(text)
        doc = Document(
            len(self._docs),
            analyzed.tokens,
            title,
            sentence_starts=analyzed.sentence_starts,
        )
        self._docs.append(doc)
        return doc

    def add_tokens(
        self,
        tokens: Iterable[str],
        title: str = "",
        sentence_starts: tuple[int, ...] = (),
    ) -> Document:
        """Append a pre-tokenized document (tokens are used verbatim)."""
        doc = Document(
            len(self._docs), tuple(tokens), title,
            sentence_starts=tuple(sentence_starts),
        )
        self._docs.append(doc)
        return doc

    def extend_texts(self, texts: Iterable[str]) -> None:
        for text in texts:
            self.add_text(text)

    def __len__(self) -> int:
        return len(self._docs)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._docs)

    def __getitem__(self, doc_id: int) -> Document:
        return self._docs[doc_id]

    @property
    def total_tokens(self) -> int:
        """Total number of token occurrences (``W`` in Section 6)."""
        return sum(d.length for d in self._docs)

    def vocabulary(self) -> set[str]:
        """The set of distinct terms across all documents."""
        vocab: set[str] = set()
        for doc in self._docs:
            vocab.update(doc.tokens)
        return vocab
