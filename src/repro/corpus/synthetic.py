"""Deterministic synthetic corpus generator.

The paper evaluates over a 2010 English Wikipedia snapshot (2.4B words,
5.2M documents).  That dataset is not available here, so this module builds
the closest laptop-scale equivalent that exercises the same code paths:

* a Zipf-distributed background vocabulary — real text is Zipfian, and the
  Zipf shape determines postings-list skew, which determines join input
  sizes and optimization payoffs;
* **themes**: real text is topically correlated (an article about the San
  Andreas fault mentions both "san francisco" and "fault line"), so each
  document draws a theme, and themes plant their words and phrases with
  high probability.  One theme exists per evaluation query topic
  (Q4..Q11), which gives every paper query non-trivial answers;
* **background planting**: every topic also appears at a low rate in all
  documents, scaled so common words ('free', 'list', 'line') get long
  postings lists and rare words ('foss', 'emulator') short ones —
  mirroring Figure 1's #DOCS column.

Generation is fully deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.corpus.collection import DocumentCollection


@dataclass(frozen=True)
class PlantedTopic:
    """A word or phrase planted into documents.

    Attributes:
        tokens: The word (length 1) or phrase (length > 1).  Phrases are
            planted contiguously so PHRASE/DISTANCE predicates can match.
        doc_probability: Probability that a document contains the topic
            (within its context: a theme, or the background).
        mean_occurrences: Mean occurrence count (geometric) per containing
            document.
    """

    tokens: tuple[str, ...]
    doc_probability: float
    mean_occurrences: float = 1.5


def _topic(text: str, p: float, mean: float = 1.5) -> PlantedTopic:
    return PlantedTopic(tuple(text.split()), p, mean)


@dataclass(frozen=True)
class Theme:
    """A document topic: a bundle of correlated planted topics."""

    name: str
    weight: float
    topics: tuple[PlantedTopic, ...]


def paper_themes() -> list[Theme]:
    """One theme per evaluation-query topic (Section 8's Q4..Q11)."""
    return [
        Theme("san-francisco-geology", 0.030, (
            _topic("san francisco", 0.90, 2.0),
            _topic("fault line", 0.50, 1.5),
            _topic("san", 0.30),
            _topic("fault", 0.35, 1.5),
            _topic("line", 0.50, 2.0),
        )),
        Theme("dinosaurs", 0.030, (
            _topic("dinosaur", 0.80, 2.5),
            _topic("species", 0.90, 3.0),
            _topic("list", 0.70, 2.0),
            _topic("image", 0.50, 2.0),
            _topic("picture", 0.30),
            _topic("drawing", 0.20),
            _topic("illustration", 0.15),
        )),
        Theme("orlando-conventions", 0.020, (
            _topic("orange county convention center", 0.60, 1.2),
            _topic("orlando", 0.70, 1.5),
            _topic("orange", 0.40),
            _topic("county", 0.50, 2.0),
            _topic("convention", 0.40),
            _topic("center", 0.60, 2.0),
        )),
        Theme("windows-emulation", 0.025, (
            _topic("windows", 0.85, 2.5),
            _topic("emulator", 0.60, 1.5),
            _topic("windows emulator", 0.35, 1.2),
            _topic("foss", 0.25),
            _topic("free software", 0.60, 1.5),
            _topic("free", 0.70, 2.0),
            _topic("software", 0.90, 2.5),
        )),
        Theme("municipal-wifi", 0.025, (
            _topic("free wireless internet", 0.50, 1.2),
            _topic("wireless", 0.80, 2.0),
            _topic("internet", 0.90, 2.0),
            _topic("free", 0.70, 2.0),
            _topic("service", 0.80, 2.0),
        )),
        Theme("arizona-outdoors", 0.025, (
            _topic("arizona", 0.80, 2.0),
            _topic("fishing", 0.60, 2.0),
            _topic("hunting", 0.60, 2.0),
            _topic("fishing rules", 0.20),
            _topic("hunting regulations", 0.20),
            _topic("rules", 0.60, 2.0),
            _topic("regulations", 0.50, 2.0),
        )),
        Theme("warren-inauguration", 0.020, (
            _topic("rick warren", 0.70, 1.5),
            _topic("obama", 0.80, 2.0),
            _topic("inauguration", 0.70, 1.5),
            _topic("obama inauguration", 0.50, 1.2),
            _topic("controversy", 0.60),
            _topic("invocation", 0.50),
            _topic("controversy invocation", 0.20),
        )),
    ]


def background_topics() -> list[PlantedTopic]:
    """Low-rate planting applied to every document, sized to mirror the
    #DOCS skew of Figure 1 (common words common, rare words rare)."""
    return [
        # Very common words.
        _topic("free", 0.150, 2.0),
        _topic("list", 0.120, 2.0),
        _topic("line", 0.100, 2.0),
        _topic("service", 0.100, 2.0),
        _topic("image", 0.060, 1.5),
        _topic("center", 0.060, 1.5),
        _topic("software", 0.050, 1.5),
        _topic("county", 0.050, 1.5),
        _topic("rules", 0.050, 1.5),
        _topic("internet", 0.040, 1.5),
        _topic("windows", 0.030, 1.5),
        _topic("species", 0.030, 1.5),
        _topic("picture", 0.030),
        _topic("controversy", 0.020),
        _topic("obama", 0.015),
        _topic("orange", 0.020),
        _topic("san", 0.015),
        _topic("free software", 0.010),
        _topic("drawing", 0.010),
        _topic("regulations", 0.010),
        _topic("fishing", 0.010),
        _topic("hunting", 0.010),
        _topic("san francisco", 0.008),
        _topic("convention", 0.008),
        _topic("wireless", 0.006),
        _topic("fault", 0.006),
        _topic("fault line", 0.004),
        _topic("illustration", 0.005),
        _topic("arizona", 0.005),
        _topic("orlando", 0.004),
        _topic("francisco", 0.004),
        _topic("rick", 0.004),
        _topic("warren", 0.004),
        _topic("inauguration", 0.003),
        _topic("dinosaur", 0.003),
        _topic("emulator", 0.002),
        _topic("invocation", 0.002),
        _topic("foss", 0.001),
    ]


@dataclass
class SyntheticCorpusConfig:
    """Parameters of the synthetic corpus.

    Attributes:
        num_docs: Number of documents to generate.
        mean_doc_length: Mean document length in tokens (the paper's d_w
            has 207; we default near it).
        vocab_size: Background vocabulary size.
        zipf_exponent: Skew of the background Zipf distribution.
        seed: RNG seed; the corpus is a pure function of this config.
        themes: Theme set; remaining probability mass is theme-less.
        background: Topics planted at low rate in every document.
    """

    num_docs: int = 2000
    mean_doc_length: int = 150
    vocab_size: int = 20_000
    zipf_exponent: float = 1.1
    seed: int = 20110612  # SIGMOD'11 opened June 12, 2011.
    themes: list[Theme] = field(default_factory=paper_themes)
    background: list[PlantedTopic] = field(default_factory=background_topics)


def _zipf_probabilities(vocab_size: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def generate_corpus(config: SyntheticCorpusConfig | None = None) -> DocumentCollection:
    """Generate the synthetic collection described by ``config``.

    Background tokens are drawn from a Zipf distribution over a synthetic
    vocabulary (``w000000`` ...); each document then draws at most one
    theme and overwrites contiguous token runs with its planted topics
    (plus the low-rate background topics), keeping document lengths fixed
    and planted phrases contiguous.
    """
    config = config if config is not None else SyntheticCorpusConfig()
    rng = np.random.default_rng(config.seed)

    vocab = [f"w{i:06d}" for i in range(config.vocab_size)]
    probs = _zipf_probabilities(config.vocab_size, config.zipf_exponent)

    lengths = np.maximum(
        rng.poisson(config.mean_doc_length, size=config.num_docs), 20
    )
    background_draw = rng.choice(
        config.vocab_size, size=int(lengths.sum()), p=probs
    )

    theme_weights = [t.weight for t in config.themes]
    leftover = 1.0 - sum(theme_weights)
    if leftover < 0:
        raise ValueError("theme weights exceed 1.0")
    theme_choice = rng.choice(
        len(config.themes) + 1,
        size=config.num_docs,
        p=theme_weights + [leftover],
    )

    collection = DocumentCollection()
    offset = 0
    for doc_id in range(config.num_docs):
        length = int(lengths[doc_id])
        tokens = [vocab[background_draw[offset + j]] for j in range(length)]
        offset += length
        choice = int(theme_choice[doc_id])
        if choice < len(config.themes):
            _plant_topics(tokens, config.themes[choice].topics, rng)
        _plant_topics(tokens, config.background, rng)
        collection.add_tokens(tokens, title=f"doc{doc_id}")
    return collection


def _plant_topics(tokens: list[str], topics, rng: np.random.Generator) -> None:
    length = len(tokens)
    for t in topics:
        if rng.random() >= t.doc_probability:
            continue
        occurrences = int(rng.geometric(1.0 / t.mean_occurrences))
        span = len(t.tokens)
        if span >= length:
            continue
        for _ in range(occurrences):
            start = int(rng.integers(0, length - span))
            tokens[start:start + span] = t.tokens
