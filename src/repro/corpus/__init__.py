"""Document model, analyzers, collections and corpus generators.

This subpackage is the data substrate of the reproduction: the paper
evaluates over a Wikipedia snapshot; we provide the document model plus a
deterministic synthetic generator (:mod:`repro.corpus.synthetic`) that plants
the paper's query topics into a Zipf-distributed background vocabulary.
"""

from repro.corpus.analyzer import Analyzer, SimpleAnalyzer
from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.corpus.synthetic import SyntheticCorpusConfig, generate_corpus
from repro.corpus.wine import wine_document, wine_collection

__all__ = [
    "Analyzer",
    "SimpleAnalyzer",
    "Document",
    "DocumentCollection",
    "SyntheticCorpusConfig",
    "generate_corpus",
    "wine_document",
    "wine_collection",
]
