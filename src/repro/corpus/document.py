"""The full-text document model.

Full-text search (as opposed to bag-of-words keyword search) models a
document as a *sequence* of words: every token occurrence has a position
(offset).  ``Document`` stores the analyzed token sequence so that the
indexer can record term positions, and so that the brute-force MCalc oracle
used in tests can re-derive them.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Document:
    """A document: an identifier plus an ordered sequence of tokens.

    Attributes:
        doc_id: Dense integer identifier assigned by the collection.
        tokens: Analyzed tokens in document order.  ``tokens[i]`` occupies
            position (offset) ``i``, matching the paper's term-position
            index of Figure 1.
        title: Optional human-readable name, used only for display.
        sentence_starts: Token offsets at which sentences begin, when the
            analyzer detects them; empty means "no sentence structure".
    """

    doc_id: int
    tokens: tuple[str, ...]
    title: str = ""
    sentence_starts: tuple[int, ...] = ()

    def sentence_of(self, offset: int) -> int:
        """Index of the sentence containing ``offset``.

        With no recorded boundaries the whole document is sentence 0.
        """
        if not self.sentence_starts:
            return 0
        return bisect_right(self.sentence_starts, offset) - 1

    @property
    def length(self) -> int:
        """Document length in tokens (``d.length`` in the paper)."""
        return len(self.tokens)

    def positions_of(self, term: str) -> list[int]:
        """All offsets at which ``term`` occurs, in ascending order."""
        return [i for i, tok in enumerate(self.tokens) if tok == term]

    def term_frequency(self, term: str) -> int:
        """Number of occurrences of ``term`` (``#INDOC`` in Figure 1)."""
        return sum(1 for tok in self.tokens if tok == term)

    def snippet(self, center: int, radius: int = 5) -> str:
        """A display snippet of tokens around offset ``center``."""
        lo = max(0, center - radius)
        hi = min(len(self.tokens), center + radius + 1)
        return " ".join(self.tokens[lo:hi])


@dataclass
class DocumentBuilder:
    """Incrementally assemble a :class:`Document` from text fragments."""

    doc_id: int
    title: str = ""
    _tokens: list[str] = field(default_factory=list)

    def add_tokens(self, tokens: list[str]) -> "DocumentBuilder":
        self._tokens.extend(tokens)
        return self

    def build(self) -> Document:
        return Document(self.doc_id, tuple(self._tokens), self.title)
