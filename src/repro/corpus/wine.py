"""The paper's running example document ``d_w`` (Figure 1 / Figure 2).

``d_w`` is "the abstract portion of the Wikipedia article Wine_(software)";
we cannot reproduce the exact text, but the paper's worked examples depend
only on the statistics of Figure 1:

=========== ======= ======== ====================
Token       #INDOC  #DOCS    OFFSETS in d_w
=========== ======= ======== ====================
'emulator'  1       2768     [64]
'free'      1       332335   [3]
'foss'      1       2044     [179]
'software'  4       71735    [4, 32, 180, 189]
'windows'   4       43949    [27, 42, 144, 187]
=========== ======= ======== ====================

plus ``d_w.length = 207`` and ``collectionSize = 4,638,535``.  This module
builds a 207-token document with exactly those offsets, and exposes the
collection-level statistics as an override so the worked examples
(Example 5's MEANSUM score of 0.660, Section 2's 1/4-score inconsistency)
can be reproduced to the digit without indexing 4.6M documents.
"""

from __future__ import annotations

from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document

#: Offsets of each example keyword inside d_w (Figure 1).
WINE_OFFSETS: dict[str, list[int]] = {
    "emulator": [64],
    "free": [3],
    "foss": [179],
    "software": [4, 32, 180, 189],
    "windows": [27, 42, 144, 187],
}

#: d_w.length (Example 5).
WINE_DOC_LENGTH = 207

#: Collection-level statistics from Figure 1 / Example 5.
WINE_COLLECTION_SIZE = 4_638_535
WINE_DOC_FREQUENCIES: dict[str, int] = {
    "emulator": 2768,
    "free": 332_335,
    "foss": 2044,
    "software": 71_735,
    "windows": 43_949,
}


def wine_tokens() -> list[str]:
    """The 207-token sequence of d_w, with filler tokens elsewhere."""
    tokens = [f"filler{i:03d}" for i in range(WINE_DOC_LENGTH)]
    for term, offsets in WINE_OFFSETS.items():
        for off in offsets:
            tokens[off] = term
    return tokens


def wine_document(doc_id: int = 0) -> Document:
    """Build d_w as a standalone :class:`Document`."""
    return Document(doc_id, tuple(wine_tokens()), title="Wine_(software)")


def wine_collection() -> DocumentCollection:
    """A one-document collection containing only d_w.

    Combine with :func:`wine_stats_overrides` to reproduce the paper's
    collection-level numbers.
    """
    collection = DocumentCollection()
    collection.add_tokens(wine_tokens(), title="Wine_(software)")
    return collection


def wine_stats_overrides() -> dict:
    """Statistic overrides matching Figure 1 / Example 5.

    Returns a dict suitable for
    :class:`repro.sa.context.OverrideScoringContext`: document frequencies
    per term and the collection size of the paper's Wikipedia snapshot.
    """
    return {
        "collection_size": WINE_COLLECTION_SIZE,
        "document_frequency": dict(WINE_DOC_FREQUENCIES),
    }
