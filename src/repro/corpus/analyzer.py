"""Text analysis: turning raw text into the token sequence that is indexed.

The paper indexes "the text from all articles" of Wikipedia; the exact
analyzer is unspecified, so we provide the conventional pipeline (lowercase,
split on non-alphanumerics) plus an extension point for custom pipelines.
The same analyzer must be applied to indexed text and to query keywords so
that ``HAS`` predicates compare like with like.
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod
from dataclasses import dataclass


@dataclass(frozen=True)
class AnalyzedText:
    """The analyzer's full output: tokens plus structural offsets.

    ``sentence_starts`` lists the token offsets at which sentences begin
    (always starting with 0 when non-empty); analyzers that do not detect
    sentences leave it empty.  Sentence offsets feed the index so
    structural predicates like SAMESENTENCE can consult real boundaries
    (Section 8: "assuming the index supports sentence and paragraph
    offsets").
    """

    tokens: tuple[str, ...]
    sentence_starts: tuple[int, ...] = ()


class Analyzer(ABC):
    """Turns raw text into a list of tokens with implicit positions."""

    @abstractmethod
    def tokens(self, text: str) -> list[str]:
        """Analyze ``text`` into its token sequence."""

    def analyze(self, text: str) -> AnalyzedText:
        """Full analysis; the default detects no sentence structure."""
        return AnalyzedText(tuple(self.tokens(text)))

    def token(self, word: str) -> str:
        """Analyze a single query keyword.

        Raises:
            ValueError: if the keyword does not analyze to exactly one token
                (a phrase must be expressed with the PHRASE predicate, not as
                a single keyword).
        """
        toks = self.tokens(word)
        if len(toks) != 1:
            raise ValueError(
                f"keyword {word!r} analyzes to {len(toks)} tokens; "
                "use a phrase query for multi-token keywords"
            )
        return toks[0]


class SimpleAnalyzer(Analyzer):
    """Lowercase + split on non-alphanumeric runs.

    Tokens shorter than ``min_token_length`` are dropped (position numbering
    still advances over kept tokens only, which mirrors how postings-based
    engines number the tokens they keep).
    """

    _SPLIT = re.compile(r"[^0-9a-z]+")

    def __init__(self, min_token_length: int = 1):
        if min_token_length < 1:
            raise ValueError("min_token_length must be >= 1")
        self.min_token_length = min_token_length

    def tokens(self, text: str) -> list[str]:
        raw = self._SPLIT.split(text.lower())
        return [t for t in raw if len(t) >= self.min_token_length]


class SentenceAnalyzer(SimpleAnalyzer):
    """SimpleAnalyzer that additionally records sentence boundaries.

    Sentences are split on ``.``, ``!``, ``?`` and newlines; each
    sentence's tokens are concatenated into one position space, with the
    starting offsets recorded for the index.
    """

    _SENTENCES = re.compile(r"[.!?\n]+")

    def analyze(self, text: str):
        tokens: list[str] = []
        starts: list[int] = []
        for sentence in self._SENTENCES.split(text):
            sentence_tokens = self.tokens(sentence)
            if not sentence_tokens:
                continue
            starts.append(len(tokens))
            tokens.extend(sentence_tokens)
        return AnalyzedText(tuple(tokens), tuple(starts))


class WhitespaceAnalyzer(Analyzer):
    """Split on whitespace only, preserving case.

    Useful in tests where token identity must be exact.
    """

    def tokens(self, text: str) -> list[str]:
        return text.split()
