"""SA: the Scoring Algebra (Section 4).

SA comprises six operators: the initializer ``alpha`` scores individual
match-table cells; three binary combinators aggregate cell scores — the
conjunctive combinator, the disjunctive combinator, and the alternate
combinator — and the finalizer ``omega`` post-processes the aggregate into
the final floating-point document score.

A *scoring scheme* implements the six operators and declares the
optimization-relevant properties of Section 5.1.  Seven schemes from the
literature are provided in :mod:`repro.sa.schemes`.
"""

from repro.sa.context import (
    IndexScoringContext,
    OverrideScoringContext,
    ScoringContext,
)
from repro.sa.properties import Associativity, SchemeProperties
from repro.sa.reference import rank_with_oracle, score_match_table
from repro.sa.registry import available_schemes, get_scheme, register_scheme
from repro.sa.scheme import ScoringScheme

__all__ = [
    "ScoringScheme",
    "SchemeProperties",
    "Associativity",
    "ScoringContext",
    "IndexScoringContext",
    "OverrideScoringContext",
    "get_scheme",
    "register_scheme",
    "available_schemes",
    "score_match_table",
    "rank_with_oracle",
]
