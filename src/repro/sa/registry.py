"""Scoring scheme registry.

User-defined schemes register here and become first-class citizens of the
optimizer — exactly the paper's "plug-in ranking" desideratum.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import UnknownSchemeError
from repro.sa.scheme import ScoringScheme

_REGISTRY: dict[str, Callable[[], ScoringScheme]] = {}


def register_scheme(factory: Callable[[], ScoringScheme], name: str | None = None) -> None:
    """Register a scheme factory under ``name`` (default: the scheme's
    declared name)."""
    key = name if name is not None else factory().name
    _REGISTRY[key] = factory


def get_scheme(name: str) -> ScoringScheme:
    """Instantiate the scheme registered under ``name``."""
    factory = _REGISTRY.get(name)
    if factory is None:
        raise UnknownSchemeError(
            f"unknown scoring scheme {name!r}; available: {sorted(_REGISTRY)}"
        )
    return factory()


def available_schemes() -> list[str]:
    """Names of all registered schemes, sorted."""
    return sorted(_REGISTRY)


def _register_builtins() -> None:
    """Register the seven schemes of Section 7 plus the extra instances
    the section mentions (import-cycle-safe)."""
    from repro.sa.schemes import (
        AnySum,
        BestSumMinDist,
        EventModel,
        JoinNormalized,
        Lucene,
        MeanSum,
        SumBest,
    )
    from repro.sa.schemes.extras import AnyProd, KLSum

    for cls in (AnySum, SumBest, Lucene, JoinNormalized, EventModel, MeanSum,
                BestSumMinDist, AnyProd, KLSum):
        register_scheme(cls)


_register_builtins()
