"""Term-weighting functions used by scoring initializers (Section 4.1).

"The initializer function typically implements a term weighting function
such as TF-IDF, BM25, KL Divergence" — all three are provided, in the
standard textbook formulations of Manning, Raghavan & Schuetze (the
paper's reference [18]).  :func:`tfidf_meansum` is the paper's own variant
used by the MEANSUM worked example (Example 3/5).
"""

from __future__ import annotations

import math

from repro.sa.context import ScoringContext

#: BM25 defaults (Manning et al., Chapter 11).
BM25_K1 = 1.2
BM25_B = 0.75


def tfidf_meansum(ctx: ScoringContext, doc_id: int, term: str) -> float:
    """The MEANSUM tf-idf of Example 3:
    ``(#InDoc / d.length) * (d.collectionSize / #Docs)``.

    Returns 0.0 when the term does not occur in the document or nowhere in
    the collection.
    """
    tf = ctx.term_frequency(doc_id, term)
    df = ctx.document_frequency(term)
    length = ctx.doc_length(doc_id)
    if tf == 0 or df == 0 or length == 0:
        return 0.0
    return (tf / length) * (ctx.collection_size() / df)


def tfidf(ctx: ScoringContext, doc_id: int, term: str) -> float:
    """Classic log-scaled tf-idf: ``(1 + ln tf) * ln(N / df)``."""
    tf = ctx.term_frequency(doc_id, term)
    df = ctx.document_frequency(term)
    if tf == 0 or df == 0:
        return 0.0
    return (1.0 + math.log(tf)) * math.log(ctx.collection_size() / df)


def bm25(
    ctx: ScoringContext,
    doc_id: int,
    term: str,
    k1: float = BM25_K1,
    b: float = BM25_B,
) -> float:
    """Okapi BM25 term weight with the standard smoothed idf."""
    tf = ctx.term_frequency(doc_id, term)
    if tf == 0:
        return 0.0
    df = ctx.document_frequency(term)
    n = ctx.collection_size()
    idf = math.log(1.0 + (n - df + 0.5) / (df + 0.5))
    avg = ctx.avg_doc_length() or 1.0
    norm = tf + k1 * (1.0 - b + b * ctx.doc_length(doc_id) / avg)
    return idf * tf * (k1 + 1.0) / norm


def kl_divergence(
    ctx: ScoringContext,
    doc_id: int,
    term: str,
    mu: float = 2000.0,
    collection_total_tokens: int | None = None,
) -> float:
    """Dirichlet-smoothed language-model (KL divergence) term weight.

    ``log(1 + tf / (mu * p_coll)) + log(mu / (dl + mu))`` per query-term
    occurrence; the second (document-constant) part is omitted here since
    initializers score terms independently and finalizers may normalize.
    """
    tf = ctx.term_frequency(doc_id, term)
    if tf == 0:
        return 0.0
    total = collection_total_tokens
    if total is None:
        total = max(1, ctx.collection_size() * int(ctx.avg_doc_length() or 1))
    df = max(1, ctx.document_frequency(term))
    # Collection language model estimated from document frequency when raw
    # collection term counts are unavailable.
    p_coll = df / total
    return math.log(1.0 + tf / (mu * p_coll))
