"""MEANSUM: the paper's worked-example scheme (Example 3 / Example 5).

"MEANSUM defines the score of a document as the average score of all its
alternate matches, and the score of a match as the total score of the
individual positions in the match.  Term positions in MEANSUM are scored
by tfidf."

Internal score: ``(sum, count)`` pairs — "the two components of a mean
computation"; the finalizer normalizes the mean into [0, 1] with
``1 - 1/ln(mean + e)``.
"""

from __future__ import annotations

import math

from repro.sa.context import ScoringContext
from repro.sa.properties import Associativity, SchemeProperties
from repro.sa.scheme import ScoringScheme
from repro.sa.weighting import tfidf_meansum


class MeanSum(ScoringScheme):
    """Exactly the Example 3 pseudocode."""

    name = "meansum"
    properties = SchemeProperties(
        # (sum, count) aggregation satisfies Definition 3 (diagonal):
        # conjuncted scores of a table always share row counts, so
        # combining sums before or after the alternate fold is identical.
        directional=None,
        positional=False,
        constant=False,
        alt_associates=Associativity.FULL,
        alt_commutes=True,
        # Adding a low-scoring match can lower the mean: not monotonic,
        # so rank joins are not applicable to MEANSUM.
        alt_monotonic_increasing=False,
        alt_idempotent=False,
        alt_multiplies=True,
        conj_associates=Associativity.FULL,
        conj_commutes=True,
        conj_monotonic_increasing=True,
        disj_associates=Associativity.FULL,
        disj_commutes=True,
        disj_monotonic_increasing=True,
    )

    def alpha(
        self,
        ctx: ScoringContext,
        doc_id: int,
        var: str,
        keyword: str,
        offset: int | None,
    ) -> tuple[float, int]:
        if offset is None:
            return (0.0, 1)
        return (tfidf_meansum(ctx, doc_id, keyword), 1)

    def conj(self, left: tuple, right: tuple) -> tuple:
        # Conjuncted scores refer to the same set of matches, so they have
        # the same counts, which are preserved.
        return (left[0] + right[0], left[1])

    def disj(self, left: tuple, right: tuple) -> tuple:
        return (left[0] + right[0], left[1])

    def alt(self, left: tuple, right: tuple) -> tuple:
        # Alternate match sets are disjoint by definition: sums and counts
        # both add.
        return (left[0] + right[0], left[1] + right[1])

    def omega(self, ctx: ScoringContext, doc_id: int, score: tuple) -> float:
        mean = score[0] / score[1]
        return 1.0 - 1.0 / math.log(mean + math.e)

    def times(self, score: tuple, k: int) -> tuple:
        return (score[0] * k, score[1] * k)
