"""BestSum+MinDist: proximity-aware scoring after Tao & Zhai [25].

"MinDist gives a high score to matches where two matching terms are very
close ...  BestSum+MinDist computes the score of an individual match as
the sum of the BM25 score of each term position in the match, [combined
with] the MinDist metric.  The score of a document is the score of its
highest-scoring match.  MinDist concerns term position so BestSum+MinDist
is positional" (Section 7).

Internal score: ``(scr, dist, positions)`` during row aggregation; the
alternate combinator drops the position list, keeping ``(scr, dist)``.
The finalizer is the paper's ``scr + log(1 + e^{-dist})``.
"""

from __future__ import annotations

import math

from repro.sa.context import ScoringContext
from repro.sa.properties import Associativity, SchemeProperties
from repro.sa.scheme import ScoringScheme
from repro.sa.weighting import bm25

_INF = math.inf


def min_dist(positions: tuple[int, ...]) -> float:
    """Tao & Zhai's MinDist: smallest pairwise distance among the match's
    positions (infinite when fewer than two positions exist)."""
    if len(positions) < 2:
        return _INF
    ordered = sorted(positions)
    return float(min(b - a for a, b in zip(ordered, ordered[1:])))


class BestSumMinDist(ScoringScheme):
    """Row-first, positional: best match's BM25 sum plus proximity bonus."""

    name = "bestsum-mindist"
    properties = SchemeProperties(
        directional="row",
        positional=True,
        constant=False,
        alt_associates=Associativity.FULL,
        alt_commutes=True,
        alt_monotonic_increasing=True,
        alt_idempotent=True,
        alt_multiplies=True,
        conj_associates=Associativity.FULL,
        conj_commutes=True,
        conj_monotonic_increasing=True,
        disj_associates=Associativity.FULL,
        disj_commutes=True,
        disj_monotonic_increasing=True,
    )

    def alpha(
        self,
        ctx: ScoringContext,
        doc_id: int,
        var: str,
        keyword: str,
        offset: int | None,
    ) -> tuple:
        if offset is None:
            return (0.0, _INF, ())
        self._reject_any(offset)
        return (bm25(ctx, doc_id, keyword), _INF, (offset,))

    def conj(self, left: tuple, right: tuple) -> tuple:
        positions = left[2] + right[2]
        return (left[0] + right[0], min_dist(positions), positions)

    def disj(self, left: tuple, right: tuple) -> tuple:
        return self.conj(left, right)

    def alt(self, left: tuple, right: tuple) -> tuple:
        # Position lists are only meaningful within a single match; across
        # matches keep the best score and tightest distance.
        return (max(left[0], right[0]), min(left[1], right[1]), ())

    def omega(self, ctx: ScoringContext, doc_id: int, score: tuple) -> float:
        bonus = math.log(1.0 + math.exp(-score[1])) if score[1] != _INF else 0.0
        return score[0] + bonus

    def times(self, score: tuple, k: int) -> tuple:
        return (score[0], score[1], ())
