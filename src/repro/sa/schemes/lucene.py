"""Lucene's scoring scheme: SumBest plus sloppy proximity weighting.

"Excluding the special handling of proximity predicates, the Lucene
scoring scheme coincides with SumBest" (Section 7).  The special handling
— which the paper implements but omits presenting, calling it an ad-hoc
solution to the general fuzzy-matching problem — scores matches of a
proximity predicate by their divergence from the proximity parameter.

Our reconstruction follows Lucene's SloppyPhraseScorer: a match whose
positions use ``slop`` more separation than the tightest possible
arrangement is weighted ``1 / (1 + slop)``.  The weight is applied, per
row, to the initial scores of the columns the predicate constrains
(through the :meth:`cell_adjust` extension hook), *before* any
aggregation, so every aggregation order sees the same adjusted cell scores
and score consistency is preserved.

Per Table 2's footnote, "Lucene is positional only for queries with phrase
or proximity predicates": :meth:`positional_vars` reports exactly the
predicate-constrained columns, so pre-counting remains valid for the
query's free keywords.
"""

from __future__ import annotations

from repro.mcalc.ast import Pred, Query
from repro.sa.context import ScoringContext
from repro.sa.properties import Associativity, SchemeProperties
from repro.sa.schemes.sumbest import SumBest

#: Predicates whose matches receive sloppy weighting.  WINDOW and ORDER
#: constrain but do not grade positions in Lucene's model.
_SLOPPY = ("PROXIMITY", "DISTANCE")


class Lucene(SumBest):
    """SumBest + per-row sloppy proximity weights on predicate columns."""

    name = "lucene"
    properties = SchemeProperties(
        directional="col",
        positional=True,
        positional_per_query=True,  # refined by positional_vars()
        constant=False,
        alt_associates=Associativity.FULL,
        alt_commutes=True,
        alt_monotonic_increasing=True,
        alt_idempotent=True,
        alt_multiplies=True,
        conj_associates=Associativity.FULL,
        conj_commutes=True,
        conj_monotonic_increasing=True,
        disj_associates=Associativity.FULL,
        disj_commutes=True,
        disj_monotonic_increasing=True,
    )

    def positional_vars(self, query: Query) -> set[str]:
        """Only phrase/proximity columns are positional (Table 2 note 2)."""
        out: set[str] = set()
        for pred in query.predicates():
            if pred.name in _SLOPPY:
                out.update(pred.vars)
        return out

    def adjusting_predicates(self, predicates: tuple[Pred, ...]) -> tuple[Pred, ...]:
        """Only PROXIMITY grades matches (DISTANCE fixes the span)."""
        return tuple(p for p in predicates if p.name == "PROXIMITY")

    def cell_adjust(
        self,
        ctx: ScoringContext,
        doc_id: int,
        cells: dict[str, int | None],
        predicates: tuple[Pred, ...],
    ) -> dict[str, float] | None:
        factors: dict[str, float] = {}
        for pred in predicates:
            if pred.name != "PROXIMITY":
                # DISTANCE fixes the exact span, so every match of it has
                # slop 0 and weight 1; only PROXIMITY grades matches.
                continue
            concrete = [cells[v] for v in pred.vars if cells.get(v) is not None]
            if len(concrete) < 2:
                continue
            slop = (max(concrete) - min(concrete)) - (len(concrete) - 1)
            weight = 1.0 / (1.0 + max(0, slop))
            for var in pred.vars:
                factors[var] = factors.get(var, 1.0) * weight
        return factors or None
