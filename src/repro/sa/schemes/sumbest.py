"""SumBest: sum over columns of the best occurrence score.

"SumBest is column-first, initializes the score of non-empty positions to
BM25 and the score of the empty symbol to 0.  It defines a column score as
the maximum score in that column, and the document score as the sum of the
column scores" (Section 7).  Excluding proximity handling, Lucene's scheme
coincides with SumBest.
"""

from __future__ import annotations

from repro.sa.context import ScoringContext
from repro.sa.properties import Associativity, SchemeProperties
from repro.sa.scheme import ScoringScheme
from repro.sa.weighting import bm25


class SumBest(ScoringScheme):
    """alpha = BM25 or 0 for empty; alt = max; conj = disj = +;
    column-first."""

    name = "sumbest"
    properties = SchemeProperties(
        # max-then-sum differs from sum-then-max: strictly column-first.
        directional="col",
        positional=False,
        constant=False,
        alt_associates=Associativity.FULL,
        alt_commutes=True,
        alt_monotonic_increasing=True,
        alt_idempotent=True,
        alt_multiplies=True,
        conj_associates=Associativity.FULL,
        conj_commutes=True,
        conj_monotonic_increasing=True,
        disj_associates=Associativity.FULL,
        disj_commutes=True,
        disj_monotonic_increasing=True,
    )

    def alpha(
        self,
        ctx: ScoringContext,
        doc_id: int,
        var: str,
        keyword: str,
        offset: int | None,
    ) -> float:
        if offset is None:
            return 0.0
        return bm25(ctx, doc_id, keyword)

    def conj(self, left: float, right: float) -> float:
        return left + right

    def disj(self, left: float, right: float) -> float:
        return left + right

    def alt(self, left: float, right: float) -> float:
        return max(left, right)

    def omega(self, ctx: ScoringContext, doc_id: int, score: float) -> float:
        return score

    def times(self, score: float, k: int) -> float:
        return score
