"""The seven scoring schemes of the paper's Section 7 study.

Each module implements one scheme from the literature as an SA scoring
scheme, with the Section 5.1 properties declared; the property-based test
suite validates every declaration against the implementation.
"""

from repro.sa.schemes.anysum import AnySum
from repro.sa.schemes.sumbest import SumBest
from repro.sa.schemes.lucene import Lucene
from repro.sa.schemes.join_normalized import JoinNormalized
from repro.sa.schemes.event_model import EventModel
from repro.sa.schemes.meansum import MeanSum
from repro.sa.schemes.bestsum_mindist import BestSumMinDist

__all__ = [
    "AnySum",
    "SumBest",
    "Lucene",
    "JoinNormalized",
    "EventModel",
    "MeanSum",
    "BestSumMinDist",
]
