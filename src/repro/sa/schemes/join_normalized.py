"""Join-Normalized weighting: the scheme of Botev et al. [7] in GRAFT form.

The original formulation distributes a tuple's score across the tuples it
joins with (``SJ(m_L, m_R) = m_L.s/|M_R| + m_R.s/|M_L|``), which depends on
intermediate-result sizes — the very dependency that makes selection
pushing score-inconsistent in score-encapsulated frameworks (Section 2).

"When implemented in the GRAFT framework, the Join-Normalized scoring
scheme does not have access to the size of intermediate results ...  To
overcome this, the scoring scheme maintains the desired statistic in the
``size`` field of the internal score structure ...  we compute the size
intermediate results would have in a canonical, score-isolated plan (i.e.
the intermediate results are subtables of the match table)" (Section 7).
With sizes carried inside scores, the scheme becomes a pure match-table
aggregation and *all* classical rewrites become score-consistent for it
(Table 3) — the paper's headline fix demonstrated.

Internal score: ``(scr, size)`` tuples.
"""

from __future__ import annotations

from repro.sa.context import ScoringContext
from repro.sa.properties import Associativity, SchemeProperties
from repro.sa.scheme import ScoringScheme
from repro.sa.weighting import tfidf_meansum


def _div(num: float, den: float) -> float:
    """Size-normalized share; zero-size subtables contribute nothing."""
    return num / den if den else 0.0


class JoinNormalized(ScoringScheme):
    """Score shares normalized by canonical subtable sizes."""

    name = "join-normalized"
    properties = SchemeProperties(
        # Row-first: the original [7] semantics score matches (rows) as
        # plans build them.  The conjunctive combinator alone would be
        # diagonal (column sizes are constant down a column), but the
        # paper's piecewise zero-score cases in the disjunctive combinator
        # break Definition 3 — folding a column's zeros away before or
        # after the disjunction takes different branches.  The
        # direction-invariance tests exhibit the counterexample.
        directional="row",
        positional=False,
        constant=False,
        alt_associates=Associativity.FULL,
        # (a + b, b.size) vs (b + a, a.size): commutes because alternate
        # scores always share one column and column sizes are constant
        # down a column, so a.size == b.size on the reachable domain.
        alt_commutes=True,
        alt_monotonic_increasing=True,
        alt_idempotent=False,
        alt_multiplies=True,
        conj_associates=Associativity.NONE,
        conj_commutes=True,
        conj_monotonic_increasing=True,
        disj_associates=Associativity.NONE,
        disj_commutes=True,
        disj_monotonic_increasing=True,
    )

    def alpha(
        self,
        ctx: ScoringContext,
        doc_id: int,
        var: str,
        keyword: str,
        offset: int | None,
    ) -> tuple[float, float]:
        occurrences = ctx.term_frequency(doc_id, keyword)
        if offset is None:
            return (0.0, float(occurrences))
        return (tfidf_meansum(ctx, doc_id, keyword), float(occurrences))

    def conj(self, left: tuple, right: tuple) -> tuple:
        scr = _div(left[0], right[1]) + _div(right[0], left[1])
        return (scr, left[1] * right[1])

    def disj(self, left: tuple, right: tuple) -> tuple:
        size = left[1] * right[1] + left[1] + right[1]
        if right[0] == 0.0:
            scr = left[0] / 2.0
        elif left[0] == 0.0:
            scr = right[0] / 2.0
        else:
            scr = _div(left[0], 2.0 * right[1]) + _div(right[0], 2.0 * left[1])
        return (scr, size)

    def alt(self, left: tuple, right: tuple) -> tuple:
        return (left[0] + right[0], right[1])

    def omega(self, ctx: ScoringContext, doc_id: int, score: tuple) -> float:
        return score[0]

    def times(self, score: tuple, k: int) -> tuple:
        return (score[0] * k, score[1])
