"""AnySum: the keyword-search scheme of Terrier's DFR models and Timber.

"AnySum is a scoring scheme typical of keyword-search systems that find a
single match per document, and do not differentiate between different
positions of a term.  Thus all positions (including the empty symbol) for
a keyword have the same term weight, and consequently all matches to a
document have the same score" (Section 7).

The initializer ignores the cell entirely — it scores the (document,
keyword) pair by BM25, so an empty cell for a keyword the document happens
to contain still receives that keyword's weight, and every match of a
document scores identically.  That is what makes AnySum *constant*: one
match suffices, enabling forward-scan joins and alternate elimination
(it is the only built-in scheme with that property, as in the paper's
Figure 3 study).
"""

from __future__ import annotations

from repro.sa.context import ScoringContext
from repro.sa.properties import Associativity, SchemeProperties
from repro.sa.scheme import ScoringScheme
from repro.sa.weighting import bm25


class AnySum(ScoringScheme):
    """alpha = BM25(d, k); conj = disj = +; alt picks either argument."""

    name = "anysum"
    properties = SchemeProperties(
        directional=None,  # diagonal: sum-of-columns == any-row's-sum
        positional=False,
        constant=True,
        alt_associates=Associativity.FULL,
        alt_commutes=True,
        alt_monotonic_increasing=True,
        alt_idempotent=True,
        alt_multiplies=True,
        conj_associates=Associativity.FULL,
        conj_commutes=True,
        conj_monotonic_increasing=True,
        disj_associates=Associativity.FULL,
        disj_commutes=True,
        disj_monotonic_increasing=True,
    )

    def alpha(
        self,
        ctx: ScoringContext,
        doc_id: int,
        var: str,
        keyword: str,
        offset: int | None,
    ) -> float:
        # The cell is deliberately unused: every position of the keyword —
        # and the empty symbol — carries the same (doc, keyword) weight.
        return bm25(ctx, doc_id, keyword)

    def conj(self, left: float, right: float) -> float:
        return left + right

    def disj(self, left: float, right: float) -> float:
        return left + right

    def alt(self, left: float, right: float) -> float:
        # All alternate scores of a document are equal under AnySum, so
        # returning the left argument is idempotent and (on this score
        # domain) commutative.
        return left

    def omega(self, ctx: ScoringContext, doc_id: int, score: float) -> float:
        return score

    def times(self, score: float, k: int) -> float:
        return score
