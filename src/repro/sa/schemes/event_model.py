"""Event Model: the probabilistic scheme of XIRQL [13] and TopX at INEX [29].

"The probabilistic event model treats the initial term weights as
probabilistic events.  The score of a match is the conjunction and/or
disjunction of the term weights according to the scoring plan, using the
standard inclusion-exclusion principle under the independence assumption.
Finally, a document score is a disjunction of the scores to all matches"
(Section 7).

Deviation from the paper's pseudocode: the pseudocode initializes with raw
BM25, but inclusion-exclusion is only meaningful on probabilities, so we
squash BM25 into [0, 1) with ``p = 1 - exp(-bm25)``.  The mapping is
strictly increasing, so term ordering — and every algebraic property — is
unchanged; recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import math

from repro.sa.context import ScoringContext
from repro.sa.properties import Associativity, SchemeProperties
from repro.sa.scheme import ScoringScheme
from repro.sa.weighting import bm25


class EventModel(ScoringScheme):
    """conj = product, disj = alt = probabilistic-or; row-first."""

    name = "event-model"
    properties = SchemeProperties(
        # The row score (product per match, OR over matches) differs from
        # any column-wise aggregation: strictly row-first.
        directional="row",
        positional=False,
        constant=False,
        alt_associates=Associativity.FULL,
        alt_commutes=True,
        alt_monotonic_increasing=True,
        alt_idempotent=False,
        alt_multiplies=True,
        conj_associates=Associativity.FULL,
        conj_commutes=True,
        conj_monotonic_increasing=True,
        disj_associates=Associativity.FULL,
        disj_commutes=True,
        disj_monotonic_increasing=True,
    )

    def alpha(
        self,
        ctx: ScoringContext,
        doc_id: int,
        var: str,
        keyword: str,
        offset: int | None,
    ) -> float:
        if offset is None:
            return 0.0
        return 1.0 - math.exp(-bm25(ctx, doc_id, keyword))

    def conj(self, left: float, right: float) -> float:
        return left * right

    def disj(self, left: float, right: float) -> float:
        return left + right - left * right

    def alt(self, left: float, right: float) -> float:
        return left + right - left * right

    def omega(self, ctx: ScoringContext, doc_id: int, score: float) -> float:
        return score

    def times(self, score: float, k: int) -> float:
        # OR of k independent copies: 1 - (1 - p)^k.
        return 1.0 - (1.0 - score) ** k
