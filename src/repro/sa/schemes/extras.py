"""Additional scheme instances mentioned but not itemized in Section 7.

* :class:`AnyProd` — "Terrier also uses a similar scoring scheme for
  language model scoring where the score of a match is the product (vs
  sum) of the term position scores."  Same constant/diagonal profile as
  AnySum, multiplicative combination.
* :class:`KLSum` — AnySum-profile scheme over Dirichlet-smoothed
  language-model term weights (the KL-divergence weighting of the
  paper's reference [18]), showing term weighting is orthogonal to the
  combinator structure.

Both register under their names on import of :mod:`repro.sa.schemes`.
"""

from __future__ import annotations

from repro.sa.context import ScoringContext
from repro.sa.schemes.anysum import AnySum
from repro.sa.weighting import kl_divergence


class AnyProd(AnySum):
    """AnySum with multiplicative conjunction/disjunction (language-model
    style: scores multiply like probabilities)."""

    name = "anyprod"
    # Same property profile as AnySum: constant, diagonal, idempotent
    # alternate combinator; product is as commutative/associative/monotone
    # (on non-negative weights) as the sum it replaces.
    properties = AnySum.properties

    def conj(self, left: float, right: float) -> float:
        return left * right

    def disj(self, left: float, right: float) -> float:
        return left * right


class KLSum(AnySum):
    """AnySum over Dirichlet-smoothed language-model term weights."""

    name = "klsum"
    properties = AnySum.properties

    def alpha(
        self,
        ctx: ScoringContext,
        doc_id: int,
        var: str,
        keyword: str,
        offset: int | None,
    ) -> float:
        return kl_divergence(ctx, doc_id, keyword)
