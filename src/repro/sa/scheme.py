"""The scoring scheme interface: an implementation of the SA operators.

"A scoring scheme is an implementation of the operators of our scoring
algebra" (Section 4).  Schemes additionally declare the Section 5.1
properties through which the optimizer selects valid rewrites, without the
scheme developer ever needing to know the optimizer's internals.

Internal scores may be any Python value ("the aggregate score is a
structure, called an internal score, composed of one or more values that
are aggregated independently") — floats, tuples, whatever the scheme
needs.  Only the finalizer must produce a float.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterable

from repro.errors import ExecutionError
from repro.ma.match_table import ANY_POSITION
from repro.mcalc.ast import Pred, Query
from repro.sa.context import ScoringContext
from repro.sa.properties import SchemeProperties

#: Type alias for internal scores.
Score = Any


class ScoringScheme(ABC):
    """Abstract scoring scheme: alpha, the three combinators, and omega.

    Subclasses set :attr:`name` and :attr:`properties` as class attributes
    and implement the five operator methods.  Cells passed to
    :meth:`alpha` are an ``int`` offset, ``None`` for the empty symbol, or
    :data:`repro.ma.match_table.ANY_POSITION` for a pre-counted (position
    forgotten) occurrence; non-positional schemes treat ANY_POSITION like
    any real occurrence, positional schemes must never receive it (the
    optimizer guarantees this; :meth:`alpha` implementations may call
    :meth:`_reject_any` defensively).
    """

    name: str = "abstract"
    properties: SchemeProperties = SchemeProperties()

    # -- the six SA operators ----------------------------------------------

    @abstractmethod
    def alpha(
        self,
        ctx: ScoringContext,
        doc_id: int,
        var: str,
        keyword: str,
        offset: int | None,
    ) -> Score:
        """Step 1 (initialization): score one match-table cell."""

    @abstractmethod
    def conj(self, left: Score, right: Score) -> Score:
        """The conjunctive combinator (the paper's circled slash)."""

    @abstractmethod
    def disj(self, left: Score, right: Score) -> Score:
        """The disjunctive combinator (the paper's circled v)."""

    @abstractmethod
    def alt(self, left: Score, right: Score) -> Score:
        """The alternate combinator (the paper's circled plus)."""

    @abstractmethod
    def omega(self, ctx: ScoringContext, doc_id: int, score: Score) -> float:
        """Step 3 (finalization): the final floating-point score."""

    # -- derived operations --------------------------------------------------

    def times(self, score: Score, k: int) -> Score:
        """Aggregate ``k`` equal alternate scores in one step.

        The default folds the alternate combinator ``k - 1`` times, which
        is always score-correct; schemes declaring ``alt_multiplies``
        should override with a constant-time implementation (this is the
        circled-times operator of Section 5.1).
        """
        if k < 1:
            raise ExecutionError(f"cannot aggregate {k} copies of a score")
        acc = score
        for _ in range(k - 1):
            acc = self.alt(acc, score)
        return acc

    def fold_alt(self, scores: Iterable[Score]) -> Score:
        """Left fold of the alternate combinator over ``scores``."""
        it = iter(scores)
        try:
            acc = next(it)
        except StopIteration:
            raise ExecutionError("cannot alternate-fold zero scores") from None
        for s in it:
            acc = self.alt(acc, s)
        return acc

    # -- per-query refinements ------------------------------------------------

    def positional_vars(self, query: Query) -> set[str]:
        """Columns whose positions factor into this scheme's scores for
        ``query``.

        Default: every column for positional schemes, none otherwise.
        Lucene overrides this ("Lucene is positional only for queries with
        phrase or proximity predicates" — Table 2, footnote 2).
        """
        if self.properties.positional:
            return set(query.free_vars)
        return set()

    def cell_adjust(
        self,
        ctx: ScoringContext,
        doc_id: int,
        cells: dict[str, int | None],
        predicates: tuple[Pred, ...],
    ) -> dict[str, float] | None:
        """Optional per-row positional adjustment factors (extension hook).

        Called during score initialization with the row's cells and the
        full-text predicates whose variables are all present.  Returns
        ``{var: factor}`` multipliers applied to those variables' initial
        scores, or None for no adjustment.  This is the mechanism behind
        the paper's ad-hoc Lucene proximity extension (Section 7): scores
        of imperfect proximity matches "reflect the divergence from the
        proximity parameter".
        """
        return None

    def adjusting_predicates(self, predicates: tuple[Pred, ...]) -> tuple[Pred, ...]:
        """The subset of ``predicates`` whose rows :meth:`cell_adjust`
        actually weighs — lets the engine skip the per-row hook when no
        relevant predicate is present.  Default: all of them (schemes
        overriding cell_adjust should narrow this)."""
        return predicates

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _reject_any(offset: int | None) -> None:
        if offset == ANY_POSITION:
            raise ExecutionError(
                "positional scheme received a pre-counted (forgotten) "
                "position; the optimizer should have blocked pre-counting"
            )

    def __repr__(self) -> str:
        return f"<ScoringScheme {self.name}>"
