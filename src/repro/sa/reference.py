"""Reference (top-down) scoring semantics over materialized match tables.

Section 4.2 defines match-table scoring inductively, choosing row-wise or
column-wise subtables per the scheme's directionality.  This module is the
direct, unoptimized implementation of that definition: it materializes the
match table and aggregates it exactly as written.  It defines the scores
that every optimized plan must reproduce (Definition 1, score
consistency), and so serves as the ground truth of the test suite.
"""

from __future__ import annotations

from repro.corpus.collection import DocumentCollection
from repro.errors import PlanError
from repro.mcalc.ast import Query
from repro.mcalc.oracle import document_matches
from repro.mcalc.scoring_plan import PhiNode, derive_scoring_plan, fold_phi
from repro.sa.context import ScoringContext
from repro.sa.scheme import ScoringScheme


def _alpha_rows(
    scheme: ScoringScheme,
    ctx: ScoringContext,
    query: Query,
    doc_id: int,
    rows: list[tuple],
) -> list[dict[str, object]]:
    """Initialize every cell of ``rows``, applying per-row positional
    adjustments (the Lucene extension hook) where declared."""
    columns = query.free_vars
    preds = tuple(query.predicates())
    out: list[dict[str, object]] = []
    for row in rows:
        cells = dict(zip(columns, row[1:]))
        scores = {
            var: scheme.alpha(ctx, doc_id, var, query.var_keywords[var], cell)
            for var, cell in cells.items()
        }
        factors = scheme.cell_adjust(ctx, doc_id, cells, preds)
        if factors:
            for var, factor in factors.items():
                scores[var] = _scale(scores[var], factor)
        out.append(scores)
    return out


def _scale(score, factor: float):
    """Multiply a float-typed internal score by an adjustment factor."""
    if not isinstance(score, (int, float)):
        raise PlanError(
            "cell adjustments require float internal scores; "
            f"got {type(score).__name__}"
        )
    return score * factor


def score_match_table(
    scheme: ScoringScheme,
    ctx: ScoringContext,
    query: Query,
    doc_id: int,
    rows: list[tuple],
    phi: PhiNode | None = None,
    direction: str | None = None,
) -> float:
    """Score one document's match rows per the Section 4 semantics.

    Args:
        rows: The document's matches, in canonical (sorted) table order.
        phi: Scoring plan; derived from the query if omitted.
        direction: Force ``"row"`` or ``"col"`` aggregation; defaults to
            the scheme's declared directionality (column-first for
            diagonal schemes, where the choice is immaterial).

    Raises:
        PlanError: if ``rows`` is empty (documents without matches are not
            scored; they simply are not answers).
    """
    if not rows:
        raise PlanError("cannot score a document with no matches")
    if phi is None:
        phi = derive_scoring_plan(query)
    if direction is None:
        direction = scheme.properties.directional or "col"

    initialized = _alpha_rows(scheme, ctx, query, doc_id, rows)

    if direction == "row":
        row_scores = [
            fold_phi(phi, lambda v, s=s: s[v], scheme.conj, scheme.disj)
            for s in initialized
        ]
        aggregate = scheme.fold_alt(row_scores)
    elif direction == "col":
        col_scores = {
            var: scheme.fold_alt(s[var] for s in initialized)
            for var in query.free_vars
        }
        aggregate = fold_phi(phi, lambda v: col_scores[v], scheme.conj, scheme.disj)
    else:
        raise PlanError(f"unknown scoring direction {direction!r}")
    return scheme.omega(ctx, doc_id, aggregate)


def rank_with_oracle(
    scheme: ScoringScheme,
    ctx: ScoringContext,
    query: Query,
    collection: DocumentCollection,
) -> list[tuple[int, float]]:
    """Rank ``collection`` for ``query`` by brute force.

    Matches come from the MCalc oracle and scores from the reference
    semantics; results are ``(doc_id, score)`` sorted by descending score
    (ties by ascending doc id).  Exponential — use on small collections.
    """
    phi = derive_scoring_plan(query)
    results: list[tuple[int, float]] = []
    for doc in collection:
        rows = document_matches(query, doc)
        if rows:
            results.append(
                (doc.doc_id, score_match_table(scheme, ctx, query, doc.doc_id, rows, phi))
            )
    results.sort(key=lambda r: (-r[1], r[0]))
    return results
