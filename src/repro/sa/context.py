"""Scoring contexts: the statistics interface of initializer functions.

The paper's ``alpha`` receives "not merely an id, but a collection of
relevant statistics" for the document and the position (Example 3).  A
:class:`ScoringContext` supplies those statistics; the live implementation
reads them from an index, and :class:`OverrideScoringContext` lets tests
and worked examples substitute the paper's published numbers (Figure 1's
#DOCS column, the 4.6M-document collection size) without indexing the
actual Wikipedia snapshot.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.index.index import Index


class ScoringContext(ABC):
    """Statistics provider for scoring schemes."""

    @abstractmethod
    def collection_size(self) -> int:
        """Number of documents in the library (``d.collectionSize``)."""

    @abstractmethod
    def doc_length(self, doc_id: int) -> int:
        """Length in tokens of ``doc_id`` (``d.length``)."""

    @abstractmethod
    def avg_doc_length(self) -> float:
        """Mean document length (used by BM25)."""

    @abstractmethod
    def term_frequency(self, doc_id: int, term: str) -> int:
        """#INDOC: occurrences of ``term`` in ``doc_id``."""

    @abstractmethod
    def document_frequency(self, term: str) -> int:
        """#DOCS: documents containing ``term``."""


class IndexScoringContext(ScoringContext):
    """Statistics read from a built :class:`repro.index.Index`."""

    def __init__(self, index: Index):
        self.index = index

    def collection_size(self) -> int:
        return self.index.num_docs

    def doc_length(self, doc_id: int) -> int:
        return self.index.stats.doc_length(doc_id)

    def avg_doc_length(self) -> float:
        return self.index.stats.avg_doc_length

    def term_frequency(self, doc_id: int, term: str) -> int:
        return self.index.term_frequency(doc_id, term)

    def document_frequency(self, term: str) -> int:
        return self.index.document_frequency(term)


class OverrideScoringContext(ScoringContext):
    """A context with selected statistics replaced by fixed values.

    Args:
        base: Context supplying any statistic not overridden.
        collection_size: Replacement for the document count.
        document_frequency: Replacement #DOCS per term (terms not listed
            fall through to ``base``).
        avg_doc_length: Replacement mean document length.
    """

    def __init__(
        self,
        base: ScoringContext,
        collection_size: int | None = None,
        document_frequency: dict[str, int] | None = None,
        avg_doc_length: float | None = None,
    ):
        self.base = base
        self._collection_size = collection_size
        self._document_frequency = document_frequency or {}
        self._avg_doc_length = avg_doc_length

    def collection_size(self) -> int:
        if self._collection_size is not None:
            return self._collection_size
        return self.base.collection_size()

    def doc_length(self, doc_id: int) -> int:
        return self.base.doc_length(doc_id)

    def avg_doc_length(self) -> float:
        if self._avg_doc_length is not None:
            return self._avg_doc_length
        return self.base.avg_doc_length()

    def term_frequency(self, doc_id: int, term: str) -> int:
        return self.base.term_frequency(doc_id, term)

    def document_frequency(self, term: str) -> int:
        if term in self._document_frequency:
            return self._document_frequency[term]
        return self.base.document_frequency(term)
