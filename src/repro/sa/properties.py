"""Optimization-relevant scoring scheme properties (Section 5.1).

The scheme developer declares "a small set of fundamental properties about
her implementation ... and the optimizer infers which optimizations will
preserve score consistency".  The property set mirrors the rows of the
paper's Table 2:

* directionality (row-first / column-first / diagonal);
* positionality (do term positions factor into scores?);
* associativity, commutativity, monotonicity and idempotency of the
  alternate combinator; whether it *multiplies*; whether the scheme is
  *constant*;
* commutativity / monotonicity / associativity of the conjunctive and
  disjunctive combinators.

Properties are declarations about the scheme's behaviour *on the score
domain it produces* — e.g. AnySum's alternate combinator "commutes" because
all alternate scores of a document are equal under AnySum, even though
``lambda a, b: a`` does not commute on arbitrary floats.  The hypothesis
test-suite validates each declaration on scheme-generated scores.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields


class Associativity(enum.Enum):
    """How freely an aggregation may be regrouped.

    FULL: any regrouping yields the same score (Yan-Larson "fully
    associative"); LEFT: only the left-to-right fold order is defined, but
    prefixes may be pre-aggregated when stream order is preserved; NONE: no
    regrouping allowed.
    """

    FULL = "full"
    LEFT = "left"
    NONE = "none"


@dataclass(frozen=True)
class SchemeProperties:
    """Declared properties of one scoring scheme implementation.

    Attributes:
        directional: ``"row"`` for row-first schemes, ``"col"`` for
            column-first, ``None`` for diagonal schemes (Definition 3),
            which score identically under either pattern.
        positional: True when term positions factor into scores
            (Section 5.1).  Schemes may additionally refine positionality
            per query column via
            :meth:`repro.sa.scheme.ScoringScheme.positional_vars`; such
            schemes set ``positional_per_query`` so position-forgetting
            rewrites know to consult the refinement (Table 2's footnote:
            "Lucene is positional only for queries with phrase or
            proximity predicates").
        positional_per_query: Positionality depends on the query; the
            per-column refinement decides which columns may forget
            positions.
        constant: True when all matches of a document score equally and
            the alternate combinator is idempotent, so one match suffices
            to score the document (enables forward-scan joins and
            alternate elimination).
        alt_*: properties of the alternate combinator; ``alt_multiplies``
            asserts a constant-time ``times(s, k)`` equal to folding k
            equal scores.
        conj_* / disj_*: properties of the conjunctive / disjunctive
            combinators.
    """

    directional: str | None = None
    positional: bool = False
    positional_per_query: bool = False
    constant: bool = False

    alt_associates: Associativity = Associativity.FULL
    alt_commutes: bool = True
    alt_monotonic_increasing: bool = False
    alt_idempotent: bool = False
    alt_multiplies: bool = True

    conj_associates: Associativity = Associativity.FULL
    conj_commutes: bool = True
    conj_monotonic_increasing: bool = False

    disj_associates: Associativity = Associativity.FULL
    disj_commutes: bool = True
    disj_monotonic_increasing: bool = False

    def __post_init__(self):
        if self.directional not in (None, "row", "col"):
            raise ValueError(
                f"directional must be 'row', 'col' or None, "
                f"got {self.directional!r}"
            )

    @property
    def diagonal(self) -> bool:
        """Diagonal schemes (Definition 3) aggregate row- or column-first
        interchangeably."""
        return self.directional is None

    def as_table_row(self) -> dict[str, str]:
        """Render the declaration as a Table-2-style row of cells."""
        def mark(value) -> str:
            if isinstance(value, bool):
                return "yes" if value else ""
            if isinstance(value, Associativity):
                return {"full": "yes", "left": "left", "none": ""}[value.value]
            if value is None:
                return ""
            return str(value)

        return {f.name: mark(getattr(self, f.name)) for f in fields(self)}
