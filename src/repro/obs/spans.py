"""Unified span export: one OTLP-shaped trace per request.

The observability stack below this module produces three disjoint
artifacts for one request: the phase timeline (Layer 6 telemetry), the
per-operator :class:`~repro.obs.trace.TraceNode` tree (Layer 3
profiling), and per-shard timings from the parallel driver.  This
module joins them into a single span tree:

* the **request root span** covers the whole wall time;
* each **phase span** (queue_wait, parse, ..., serialize) hangs off the
  root at its real monotonic-clock offset;
* the **operator tree** (when the request was profiled) is grafted
  under the ``execute`` phase span — real durations, sequential
  synthesized offsets (operators interleave in ways one clock cannot
  observe, so the layout is honest about being a reconstruction);
* **per-shard spans** sit as siblings under the ``merge`` phase span.

Span identity is *derived*, not random: ``trace_id`` is a digest of the
request's correlation id, each ``span_id`` a digest of the id plus the
span's position path.  Export is therefore deterministic — the same
request id always yields the same ids — which makes traces joinable
with the query log and the slow capture by the one id the operator
already has, and makes the tests exact.

The serialized form is OTLP-shaped JSON (``resourceSpans`` →
``scopeSpans`` → ``spans``; ids as hex strings, times as stringified
unix nanos): close enough to the OpenTelemetry protobuf-JSON encoding
that standard tooling can ingest it after a trivial relabel, with zero
dependencies here.  Payloads land in an in-memory ring (served at
``/debug/trace/<request_id>``) and optionally a rotating JSONL file,
one trace per line.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from typing import Any

from repro.obs.metrics import REGISTRY, spans_exported, traces_exported

__all__ = [
    "trace_id_for",
    "span_id_for",
    "build_trace",
    "verify_trace",
    "SpanRing",
    "SpanFileWriter",
    "SpanExporter",
]

_SCOPE = {"name": "repro.obs.spans", "version": "1"}
#: OTLP SpanKind: 1 = SPAN_KIND_INTERNAL, 2 = SPAN_KIND_SERVER.
_KIND_SERVER = 2
_KIND_INTERNAL = 1


def trace_id_for(request_id: str) -> str:
    """The 32-hex-char (128-bit) trace id derived from a correlation id."""
    return hashlib.sha256(request_id.encode("utf-8")).hexdigest()[:32]


def span_id_for(request_id: str, path: str) -> str:
    """The 16-hex-char (64-bit) span id for one span *path* in a request.

    The path encodes the span's position in the tree (e.g.
    ``"request/phase:4:execute/op:0:and-group"``), so ids are unique
    within a trace and stable across exports of the same request.
    """
    digest = hashlib.sha256(
        request_id.encode("utf-8") + b"\x00" + path.encode("utf-8")
    )
    return digest.hexdigest()[:16]


def _attr(key: str, value: Any) -> dict[str, Any]:
    if isinstance(value, bool):
        return {"key": key, "value": {"boolValue": value}}
    if isinstance(value, int):
        return {"key": key, "value": {"intValue": str(value)}}
    if isinstance(value, float):
        return {"key": key, "value": {"doubleValue": value}}
    return {"key": key, "value": {"stringValue": str(value)}}


class _TraceBuilder:
    """Accumulates spans for one request; all times in unix nanos."""

    def __init__(self, request_id: str, base_ns: int) -> None:
        self.request_id = request_id
        self.base_ns = base_ns
        self.trace_id = trace_id_for(request_id)
        self.spans: list[dict[str, Any]] = []

    def add(
        self,
        path: str,
        name: str,
        start_off_ms: float,
        dur_ms: float,
        *,
        parent_path: str | None,
        kind: int = _KIND_INTERNAL,
        attributes: list[dict[str, Any]] | None = None,
        status_code: int = 0,
    ) -> str:
        start_ns = self.base_ns + int(start_off_ms * 1e6)
        end_ns = start_ns + max(0, int(dur_ms * 1e6))
        span: dict[str, Any] = {
            "traceId": self.trace_id,
            "spanId": span_id_for(self.request_id, path),
            "parentSpanId": (
                span_id_for(self.request_id, parent_path)
                if parent_path is not None else ""
            ),
            "name": name,
            "kind": kind,
            "startTimeUnixNano": str(start_ns),
            "endTimeUnixNano": str(end_ns),
            "attributes": attributes or [],
            "status": {"code": status_code},
        }
        self.spans.append(span)
        return path


def _graft_operator_tree(
    builder: _TraceBuilder,
    node: dict[str, Any],
    parent_path: str,
    parent_start_ms: float,
    index: int,
) -> None:
    """Recursively add a ``TraceNode.to_dict`` subtree under *parent_path*.

    Durations are the profiler's real inclusive times; start offsets are
    synthesized by laying siblings out sequentially from the parent's
    start — operator execution interleaves pulls in ways the per-node
    aggregate timers cannot place on the wall clock, so the layout
    encodes order and containment, not true concurrency.
    """
    label = str(node.get("label", node.get("op", "op")))
    path = f"{parent_path}/op:{index}:{label}"
    dur_ms = float(node.get("time_ms", 0.0))
    attributes = [_attr("graft.op", str(node.get("op", "")))]
    for key in ("calls", "seeks", "docs_out", "rows_out"):
        if node.get(key) is not None:
            attributes.append(_attr(f"graft.{key}", int(node[key])))
    if node.get("self_time_ms") is not None:
        attributes.append(
            _attr("graft.self_time_ms", float(node["self_time_ms"]))
        )
    if node.get("tripped"):
        attributes.append(_attr("graft.limit_tripped", str(node["tripped"])))
    builder.add(
        path, label, parent_start_ms, dur_ms,
        parent_path=parent_path, attributes=attributes,
    )
    child_start = parent_start_ms
    for i, child in enumerate(node.get("children") or []):
        _graft_operator_tree(builder, child, path, child_start, i)
        child_start += float(child.get("time_ms", 0.0))


def build_trace(rt, *, trace: dict[str, Any] | None = None) -> dict[str, Any]:
    """Synthesize the unified OTLP-shaped payload for one request.

    *rt* is a :class:`repro.obs.telemetry.RequestTelemetry`; *trace* is
    an optional ``TraceNode.to_dict`` operator tree (defaults to the one
    the engine attached via ``rt.set_trace`` when profiling).
    """
    base_ns = int(rt.started_ts * 1e9)
    builder = _TraceBuilder(rt.request_id, base_ns)
    wall_ms = rt.wall_ms if rt.wall_ms is not None else rt.age_ms()
    status = rt.status if rt.status is not None else 0
    root_path = "request"
    builder.add(
        root_path,
        rt.route or "request",
        0.0,
        wall_ms,
        parent_path=None,
        kind=_KIND_SERVER,
        attributes=[
            _attr("graft.request_id", rt.request_id),
            _attr("graft.query", rt.query),
            _attr("graft.scheme", rt.scheme),
            _attr("http.status_code", int(status)),
        ],
        # OTLP status: 0 UNSET, 2 ERROR.
        status_code=2 if status >= 500 else 0,
    )

    if trace is None:
        trace = rt.trace()
    execute_path: str | None = None
    merge_path: str | None = None
    for i, (name, start_off_ms, dur_ms) in enumerate(rt.phase_spans()):
        path = builder.add(
            f"{root_path}/phase:{i}:{name}",
            name,
            start_off_ms,
            dur_ms,
            parent_path=root_path,
            attributes=[_attr("graft.phase", name)],
        )
        # Operators graft under the *last* execute window; shards under
        # the last merge window (re-entered phases accumulate, and the
        # final window is the one that did the work).
        if name == "execute":
            execute_path = path
            execute_start = start_off_ms
        elif name == "merge":
            merge_path = path

    if trace:
        op_parent = execute_path or root_path
        op_start = execute_start if execute_path else 0.0
        _graft_operator_tree(builder, trace, op_parent, op_start, 0)

    shard_parent = merge_path or execute_path or root_path
    for i, (shard, start_off_ms) in enumerate(rt.shard_spans()):
        builder.add(
            f"{shard_parent}/shard:{i}:{shard['shard']}",
            f"shard-{shard['shard']}",
            start_off_ms,
            float(shard["wall_ms"]),
            parent_path=shard_parent,
            attributes=[
                _attr("graft.shard", int(shard["shard"])),
                _attr("graft.rows", int(shard["rows"])),
                _attr("graft.limit_tripped", bool(shard["tripped"])),
            ],
        )

    return {
        "resourceSpans": [
            {
                "resource": {
                    "attributes": [_attr("service.name", "graft-repro")]
                },
                "scopeSpans": [{"scope": dict(_SCOPE),
                                "spans": builder.spans}],
            }
        ]
    }


def _payload_spans(payload: dict[str, Any]) -> list[dict[str, Any]]:
    spans: list[dict[str, Any]] = []
    for rs in payload.get("resourceSpans", []):
        for ss in rs.get("scopeSpans", []):
            spans.extend(ss.get("spans", []))
    return spans


def verify_trace(payload: dict[str, Any]) -> list[dict[str, Any]]:
    """Semantic integrity checks the JSON schema cannot express.

    Raises ``ValueError`` naming the first violation; returns the flat
    span list on success.  Checked: at least one span, exactly one root,
    every ``parentSpanId`` resolves to a span in the same trace, span
    ids are unique, one trace id throughout, and every span's time
    window is well-formed.
    """
    spans = _payload_spans(payload)
    if not spans:
        raise ValueError("trace has no spans")
    ids = [s["spanId"] for s in spans]
    if len(set(ids)) != len(ids):
        raise ValueError("duplicate span ids in trace")
    trace_ids = {s["traceId"] for s in spans}
    if len(trace_ids) != 1:
        raise ValueError(f"trace mixes trace ids: {sorted(trace_ids)}")
    known = set(ids)
    roots = [s for s in spans if not s.get("parentSpanId")]
    if len(roots) != 1:
        raise ValueError(f"expected exactly one root span, got {len(roots)}")
    for s in spans:
        parent = s.get("parentSpanId")
        if parent and parent not in known:
            raise ValueError(
                f"span {s['spanId']} ({s['name']}) has unknown parent "
                f"{parent}"
            )
        if int(s["endTimeUnixNano"]) < int(s["startTimeUnixNano"]):
            raise ValueError(f"span {s['spanId']} ends before it starts")
    return spans


class SpanRing:
    """Bounded in-memory trace store keyed by request id (FIFO eviction)."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._traces: dict[str, dict[str, Any]] = {}

    def put(self, request_id: str, payload: dict[str, Any]) -> None:
        with self._lock:
            self._traces.pop(request_id, None)
            self._traces[request_id] = payload
            while len(self._traces) > self.capacity:
                self._traces.pop(next(iter(self._traces)))

    def get(self, request_id: str) -> dict[str, Any] | None:
        with self._lock:
            return self._traces.get(request_id)

    def ids(self) -> list[str]:
        """Stored request ids, oldest first."""
        with self._lock:
            return list(self._traces)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


class SpanFileWriter:
    """Rotating JSONL trace sink: one complete OTLP payload per line.

    Same rotate-before-write discipline as the query log: when the file
    would exceed ``max_bytes`` the current file is renamed to ``.1``
    (clobbering the previous ``.1``), so a line is never torn by
    rotation and disk use is bounded at ~2x ``max_bytes``.
    """

    def __init__(self, path: str, max_bytes: int = 16 * 1024 * 1024) -> None:
        self.path = path
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self.written = 0

    def append(self, payload: dict[str, Any]) -> None:
        line = json.dumps(payload, separators=(",", ":")) + "\n"
        data = line.encode("utf-8")
        with self._lock:
            try:
                size = os.path.getsize(self.path)
            except OSError:
                size = 0
            if size and size + len(data) > self.max_bytes:
                os.replace(self.path, self.path + ".1")
            with open(self.path, "ab") as fh:
                fh.write(data)
            self.written += 1


class SpanExporter:
    """The hub-facing facade: build, retain, persist, count.

    ``TelemetryHub.finish`` calls :meth:`export` once per finished query
    request; the server's ``/debug/trace/<id>`` handler reads back
    through :meth:`get`.
    """

    def __init__(
        self,
        *,
        ring_capacity: int = 256,
        path: str | None = None,
        max_bytes: int = 16 * 1024 * 1024,
        registry=REGISTRY,
    ) -> None:
        self.ring = SpanRing(ring_capacity)
        self.writer = SpanFileWriter(path, max_bytes) if path else None
        self._registry = registry

    def export(self, rt, *, trace: dict[str, Any] | None = None
               ) -> dict[str, Any]:
        payload = build_trace(rt, trace=trace)
        self.ring.put(rt.request_id, payload)
        if self.writer is not None:
            self.writer.append(payload)
        traces_exported(self._registry).child().inc()
        spans_exported(self._registry).child().inc(
            len(_payload_spans(payload))
        )
        return payload

    def get(self, request_id: str) -> dict[str, Any] | None:
        return self.ring.get(request_id)
