"""EXPLAIN ANALYZE: the trace tree rendered next to the cost model.

The rendering puts, for every operator, the cost model's *predicted*
document/row counts beside the *actual* counts the trace recorded, and
flags nodes where the prediction missed by more than
``MISESTIMATE_RATIO`` in either direction — the relational-engine
workflow for deciding whether a slow plan is the optimizer's fault or
the estimator's.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.trace import TraceNode

if TYPE_CHECKING:
    from repro.index.index import Index

#: actual/estimated rows beyond this ratio (either direction) is flagged.
MISESTIMATE_RATIO = 8.0


def annotate_estimates(root: TraceNode, index: "Index") -> None:
    """Attach cost-model estimates to every trace node that still holds
    its logical plan node.  Nodes the estimator cannot price (e.g. plug-in
    extensions) stay unannotated rather than failing the trace."""
    from repro.graft.cost import estimate

    for node in root.walk():
        if node.plan_node is None or node.estimate is not None:
            continue
        try:
            e = estimate(node.plan_node, index)
        except Exception:
            continue
        node.estimate = {"docs": e.docs, "rows": e.rows, "cost": e.cost}


def misestimate_ratio(node: TraceNode) -> float | None:
    """actual rows / estimated rows, or None when not comparable."""
    if node.estimate is None:
        return None
    est = node.estimate["rows"]
    actual = node.stats.rows_out
    if est <= 0.0:
        return None if actual == 0 else float("inf")
    return actual / est


def _flag(node: TraceNode, threshold: float) -> str:
    ratio = misestimate_ratio(node)
    if ratio is None:
        return ""
    if ratio > threshold:
        return f"  !over x{ratio:.0f}"
    if ratio < 1.0 / threshold:
        inverse = (1.0 / ratio) if ratio > 0 else float("inf")
        return f"  !under x{inverse:.0f}"
    return ""


def render_analyze(
    root: TraceNode,
    indent: str = "  ",
    threshold: float = MISESTIMATE_RATIO,
    total_ns: int | None = None,
) -> str:
    """The EXPLAIN ANALYZE view: estimates vs. actuals, root first.

    Layout is width-stable: operator labels are padded to one column so
    the estimate/actual columns line up for tests and for eyes.
    """
    entries: list[tuple[int, TraceNode]] = []

    def collect(node: TraceNode, depth: int) -> None:
        entries.append((depth, node))
        for child in node.children:
            collect(child, depth + 1)

    collect(root, 0)
    width = max(len(indent * d + n.label) for d, n in entries)
    lines = []
    for depth, node in entries:
        s = node.stats
        label = (indent * depth + node.label).ljust(width)
        if node.estimate is not None:
            e = node.estimate
            est = (f"est docs~{e['docs']:.0f} rows~{e['rows']:.0f} "
                   f"cost~{e['cost']:.0f}")
        else:
            est = "est -"
        actual = (
            f"actual docs={s.docs_out} rows={s.rows_out} "
            f"time={s.time_ns / 1e6:.3f}ms"
        )
        extras = []
        if s.empty_cells:
            extras.append(f"empty={s.empty_cells}")
        if s.seeks:
            extras.append(f"seeks={s.seeks}")
        if s.tripped:
            extras.append("TRIPPED")
        extra = (" " + " ".join(extras)) if extras else ""
        lines.append(
            f"{label}  [{est}]  ({actual}{extra}){_flag(node, threshold)}"
        )
    if total_ns is not None:
        lines.append(f"total: {total_ns / 1e6:.3f} ms")
    return "\n".join(lines)


def trace_totals(root: TraceNode) -> dict:
    """Whole-tree aggregates: what the EXPLAIN ANALYZE footer and the
    consistency tests read."""
    return {
        "operators": sum(1 for _ in root.walk()),
        "rows_out_root": root.stats.rows_out,
        "docs_out_root": root.stats.docs_out,
        "time_ms": root.stats.time_ns / 1e6,
        "tripped": any(n.stats.tripped for n in root.walk()),
    }
