"""A minimal JSON-Schema-subset validator (dependency-free).

The observability contract — the shape of ``search --profile --json``
output — is pinned by a checked-in schema
(``tests/obs/trace_schema.json``) that CI validates on every push.  The
container has no ``jsonschema`` package, so this module implements the
small subset the contract needs:

``type`` (incl. lists), ``properties``, ``required``,
``additionalProperties`` (boolean form), ``items``, ``enum``,
``minimum``, and ``$ref`` into ``#/$defs/...`` (which is what makes the
recursive trace-tree schema expressible).

Validation errors carry a JSON-pointer-style path to the offending
value, so a contract drift names the exact field that moved.
"""

from __future__ import annotations

from repro.errors import GraftError

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


class SchemaError(GraftError):
    """A JSON document does not conform to its schema."""


def _type_ok(value, name: str) -> bool:
    if name == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    expected = _TYPES.get(name)
    if expected is None:
        raise SchemaError(f"unknown schema type {name!r}")
    if expected is bool:
        return isinstance(value, bool)
    if expected is dict or expected is list or expected is type(None):
        return isinstance(value, expected)
    # str: bool is not a str, no special-casing needed.
    return isinstance(value, expected)


def _resolve_ref(ref: str, root: dict) -> dict:
    if not ref.startswith("#/"):
        raise SchemaError(f"only intra-document $refs supported, got {ref!r}")
    node = root
    for part in ref[2:].split("/"):
        if not isinstance(node, dict) or part not in node:
            raise SchemaError(f"unresolvable $ref {ref!r}")
        node = node[part]
    return node


def validate(instance, schema: dict, root: dict | None = None, path: str = "$") -> None:
    """Raise :class:`SchemaError` when ``instance`` violates ``schema``."""
    if root is None:
        root = schema
    if "$ref" in schema:
        validate(instance, _resolve_ref(schema["$ref"], root), root, path)
        return

    declared = schema.get("type")
    if declared is not None:
        names = declared if isinstance(declared, list) else [declared]
        if not any(_type_ok(instance, n) for n in names):
            raise SchemaError(
                f"{path}: expected type {declared}, "
                f"got {type(instance).__name__}"
            )

    if "enum" in schema and instance not in schema["enum"]:
        raise SchemaError(
            f"{path}: {instance!r} not one of {schema['enum']!r}"
        )

    if "minimum" in schema and isinstance(instance, (int, float)) \
            and not isinstance(instance, bool):
        if instance < schema["minimum"]:
            raise SchemaError(
                f"{path}: {instance!r} below minimum {schema['minimum']}"
            )

    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            if name not in instance:
                raise SchemaError(f"{path}: missing required property {name!r}")
        properties = schema.get("properties", {})
        for name, value in instance.items():
            sub = properties.get(name)
            if sub is not None:
                validate(value, sub, root, f"{path}.{name}")
            elif schema.get("additionalProperties") is False:
                raise SchemaError(f"{path}: unexpected property {name!r}")

    if isinstance(instance, list):
        items = schema.get("items")
        if items is not None:
            for i, value in enumerate(instance):
                validate(value, items, root, f"{path}[{i}]")


def is_valid(instance, schema: dict) -> bool:
    try:
        validate(instance, schema)
    except SchemaError:
        return False
    return True
