"""Request-scoped telemetry: correlation IDs, phase spans, slow capture.

This is the per-request layer of the observability stack (Layer 6 in
``docs/OBSERVABILITY.md``).  The per-operator :class:`~repro.obs.trace.
TraceNode` tree answers "what did the *plan* do"; this module answers
"where did *this request* spend its wall time" — a fixed phase timeline
(queue-wait, parse, canonicalize, optimize, plan-cache, execute, merge,
audit, serialize) measured on the monotonic clock, linked to the trace
tree and the query log by a shared correlation id.

Design constraints:

* **Zero overhead when off.**  Instrumented code calls
  :func:`maybe_span` / :func:`current`; with no active request context
  both are a ``ContextVar.get`` returning ``None`` plus an ``is None``
  branch, and :func:`maybe_span` hands back a shared no-op singleton —
  no allocation, no locking, no clock reads.
* **Thread-tolerant.**  The service executes the engine call on a
  worker thread via ``run_in_executor``, which does *not* propagate
  ``contextvars``; callers re-bind explicitly with :func:`bound`.
  Span bookkeeping takes a per-request lock so ``/debug/requests``
  snapshots taken from the event loop never race a worker mid-span.
* **Bounded memory.**  The slow-request capture keeps the N worst wide
  events inside a rolling window; the in-flight table holds only live
  requests; the rolling latency window prunes by age and length.
"""

from __future__ import annotations

import os
import threading
import time
from contextvars import ContextVar
from typing import Any, Callable, Iterable

__all__ = [
    "PHASES",
    "RequestTelemetry",
    "SlowRequestCapture",
    "RollingStats",
    "TelemetryHub",
    "new_request_id",
    "current",
    "activate",
    "deactivate",
    "bound",
    "maybe_span",
    "span",
    "attribute_phases",
    "render_attribution",
]

# The fixed per-request phase timeline, in the order the request moves
# through the stack.  Phases are disjoint wall-time intervals, so their
# sum approximates the request's total wall time; ``unattributed_ms``
# in the wide event is the (clamped) remainder.
PHASES = (
    "queue_wait",
    "parse",
    "canonicalize",
    "optimize",
    "plan_cache",
    "execute",
    "merge",
    "audit",
    "serialize",
)

_MAX_REQUEST_ID_LEN = 128

# ---------------------------------------------------------------------------
# Correlation ids (ULID-style: sortable timestamp prefix + randomness)
# ---------------------------------------------------------------------------

_CROCKFORD = "0123456789ABCDEFGHJKMNPQRSTVWXYZ"


def new_request_id(now_ms: int | None = None) -> str:
    """Return a 26-char ULID-style id: 48-bit ms timestamp + 80-bit random.

    Crockford base32, lexicographically sortable by creation time,
    stdlib-only (no ``uuid`` dependency on the hot path).
    """
    ts = int(time.time() * 1000) if now_ms is None else int(now_ms)
    rand = int.from_bytes(os.urandom(10), "big")
    value = ((ts & (1 << 48) - 1) << 80) | rand
    chars = [""] * 26
    for i in range(25, -1, -1):
        chars[i] = _CROCKFORD[value & 31]
        value >>= 5
    return "".join(chars)


def sanitize_request_id(raw: str | None) -> str | None:
    """Validate a client-supplied ``X-Request-Id``; ``None`` if unusable.

    Accepts printable ASCII (no CR/LF/controls, no quotes) up to 128
    chars — enough for UUIDs, ULIDs, and tracing-system ids — so a
    hostile header can't smuggle bytes into responses or log lines.
    """
    if not raw:
        return None
    rid = raw.strip()
    if not rid or len(rid) > _MAX_REQUEST_ID_LEN:
        return None
    for ch in rid:
        if not ("!" <= ch <= "~") or ch == '"' or ch == "\\":
            return None
    return rid


# ---------------------------------------------------------------------------
# Per-request state + spans
# ---------------------------------------------------------------------------


class _NoopSpan:
    """Shared do-nothing context manager for the telemetry-off path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class _Span:
    """One timed phase.  Cheap on purpose: two clock reads + a dict add."""

    __slots__ = ("_rt", "_name", "_start")

    def __init__(self, rt: "RequestTelemetry", name: str) -> None:
        self._rt = rt
        self._name = name
        self._start = 0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter_ns()
        self._rt._enter_phase(self._name)
        return self

    def __exit__(self, *exc: object) -> None:
        end = time.perf_counter_ns()
        elapsed_ms = (end - self._start) / 1e6
        start_off_ms = (self._start - self._rt._started_ns) / 1e6
        self._rt._exit_phase(self._name, elapsed_ms, start_off_ms)


class RequestTelemetry:
    """Mutable per-request record: id, phase timings, notes, shards.

    Instances are created by :class:`TelemetryHub.begin` (or directly in
    tests), bound to the request's task/thread via :func:`activate` /
    :func:`bound`, and finalized by :class:`TelemetryHub.finish` into an
    immutable *wide event* dict.
    """

    __slots__ = (
        "request_id",
        "route",
        "query",
        "scheme",
        "started_ts",
        "_started_ns",
        "_lock",
        "_phase_ms",
        "_phase_spans",
        "_shards",
        "_shard_offs",
        "_notes",
        "_trace",
        "current_phase",
        "wall_ms",
        "status",
    )

    def __init__(
        self,
        request_id: str | None = None,
        route: str = "",
        query: str = "",
        scheme: str = "",
    ) -> None:
        self.request_id = request_id or new_request_id()
        self.route = route
        self.query = query
        self.scheme = scheme
        self.started_ts = time.time()
        self._started_ns = time.perf_counter_ns()
        self._lock = threading.Lock()
        self._phase_ms: dict[str, float] = {}
        # Real span windows, (name, start_off_ms, dur_ms) relative to the
        # request start — the raw material the unified span exporter
        # (repro.obs.spans) turns into an OTLP-shaped tree.  Kept off the
        # wide event on purpose: its schema is closed.
        self._phase_spans: list[tuple[str, float, float]] = []
        self._shards: list[dict[str, Any]] = []
        # Shard start offsets (ms), parallel to ``_shards``; same
        # closed-schema reasoning as ``_phase_spans``.
        self._shard_offs: list[float] = []
        self._notes: dict[str, Any] = {}
        # Operator trace tree (TraceNode.to_dict) attached by the engine
        # when the request was profiled; consumed by the span exporter.
        self._trace: dict[str, Any] | None = None
        self.current_phase: str | None = None
        self.wall_ms: float | None = None
        self.status: int | None = None

    # -- spans --------------------------------------------------------------

    def span(self, name: str) -> _Span:
        return _Span(self, name)

    def _enter_phase(self, name: str) -> None:
        with self._lock:
            self.current_phase = name

    def _exit_phase(
        self, name: str, elapsed_ms: float, start_off_ms: float | None = None
    ) -> None:
        with self._lock:
            self._phase_ms[name] = self._phase_ms.get(name, 0.0) + elapsed_ms
            if start_off_ms is not None:
                self._phase_spans.append(
                    (name, max(0.0, start_off_ms), elapsed_ms)
                )
            self.current_phase = None

    def add_phase_ms(self, name: str, elapsed_ms: float) -> None:
        """Record a phase measured externally (e.g. admission queue wait).

        The span window is synthesized as ending *now*: external phases
        are reported right after they complete, so "the last elapsed_ms"
        is the honest reconstruction of when they ran.
        """
        start_off_ms = max(0.0, self.age_ms() - elapsed_ms)
        with self._lock:
            self._phase_ms[name] = self._phase_ms.get(name, 0.0) + elapsed_ms
            self._phase_spans.append((name, start_off_ms, elapsed_ms))

    # -- extras -------------------------------------------------------------

    def add_shard(self, shard_id: int, wall_ms: float, *,
                  rows: int = 0, tripped: bool = False) -> None:
        start_off_ms = max(0.0, self.age_ms() - wall_ms)
        with self._lock:
            self._shards.append(
                {"shard": shard_id, "wall_ms": round(wall_ms, 3),
                 "rows": rows, "tripped": tripped}
            )
            self._shard_offs.append(start_off_ms)

    def note(self, key: str, value: Any) -> None:
        with self._lock:
            self._notes[key] = value

    def set_trace(self, tree: dict[str, Any] | None) -> None:
        """Attach a profiled operator tree (``TraceNode.to_dict``)."""
        with self._lock:
            self._trace = tree

    def trace(self) -> dict[str, Any] | None:
        with self._lock:
            return self._trace

    # -- snapshots ----------------------------------------------------------

    def age_ms(self) -> float:
        return (time.perf_counter_ns() - self._started_ns) / 1e6

    def phases(self) -> dict[str, float]:
        with self._lock:
            return dict(self._phase_ms)

    def phase_spans(self) -> list[tuple[str, float, float]]:
        """Real span windows (name, start_off_ms, dur_ms) in close order."""
        with self._lock:
            return list(self._phase_spans)

    def shard_spans(self) -> list[tuple[dict[str, Any], float]]:
        """(shard record, start_off_ms) pairs, in recording order."""
        with self._lock:
            return [
                (dict(s), off)
                for s, off in zip(self._shards, self._shard_offs)
            ]

    def finish(self, status: int) -> float:
        """Freeze wall time + status; returns wall ms."""
        self.wall_ms = (time.perf_counter_ns() - self._started_ns) / 1e6
        self.status = status
        return self.wall_ms

    def inflight_view(self) -> dict[str, Any]:
        with self._lock:
            return {
                "request_id": self.request_id,
                "route": self.route,
                "query": self.query,
                "scheme": self.scheme,
                "age_ms": round(self.age_ms(), 3),
                "current_phase": self.current_phase,
                "phase_ms": {k: round(v, 3) for k, v in self._phase_ms.items()},
            }

    def to_wide_event(self) -> dict[str, Any]:
        """The finalized one-record-per-request event (see trace_schema)."""
        wall = self.wall_ms if self.wall_ms is not None else self.age_ms()
        with self._lock:
            phase_ms = {k: round(v, 3) for k, v in self._phase_ms.items()}
            shards = [dict(s) for s in self._shards]
            notes = dict(self._notes)
        attributed = sum(phase_ms.values())
        return {
            "request_id": self.request_id,
            "route": self.route,
            "query": self.query,
            "scheme": self.scheme,
            "status": self.status if self.status is not None else 0,
            "ts": self.started_ts,
            "wall_ms": round(wall, 3),
            "phase_ms": phase_ms,
            "unattributed_ms": round(max(0.0, wall - attributed), 3),
            "shards": shards,
            "notes": notes,
        }


# ---------------------------------------------------------------------------
# Context propagation
# ---------------------------------------------------------------------------

_ACTIVE: ContextVar[RequestTelemetry | None] = ContextVar(
    "graft_request_telemetry", default=None
)


def current() -> RequestTelemetry | None:
    """The telemetry record bound to this task/thread, or ``None``."""
    return _ACTIVE.get()


def activate(rt: RequestTelemetry):
    """Bind *rt* to the current context; returns a token for deactivate."""
    return _ACTIVE.set(rt)


def deactivate(token) -> None:
    _ACTIVE.reset(token)


class bound:
    """Re-bind a request context inside a worker thread.

    ``loop.run_in_executor`` does **not** carry contextvars across the
    thread hop, so the service wraps the engine call::

        with telemetry.bound(rt):
            outcome = engine.search(...)

    ``bound(None)`` is a no-op, which keeps call sites branch-free.
    """

    __slots__ = ("_rt", "_token")

    def __init__(self, rt: RequestTelemetry | None) -> None:
        self._rt = rt
        self._token = None

    def __enter__(self) -> RequestTelemetry | None:
        if self._rt is not None:
            self._token = _ACTIVE.set(self._rt)
        return self._rt

    def __exit__(self, *exc: object) -> None:
        if self._token is not None:
            _ACTIVE.reset(self._token)
            self._token = None


def maybe_span(rt: RequestTelemetry | None, name: str):
    """Span on *rt* if a request is being traced, else the no-op singleton.

    This is the instrumentation idiom for hot paths: fetch ``rt =
    telemetry.current()`` once per request, then guard each phase with
    ``with telemetry.maybe_span(rt, "parse"): ...``.
    """
    if rt is None:
        return NOOP_SPAN
    return rt.span(name)


def span(name: str):
    """Span on the context-bound request, no-op when none is active."""
    rt = _ACTIVE.get()
    if rt is None:
        return NOOP_SPAN
    return rt.span(name)


# ---------------------------------------------------------------------------
# Slow-request capture + in-flight table + rolling latency window
# ---------------------------------------------------------------------------


class SlowRequestCapture:
    """Bounded ring of the N worst wide events inside a rolling window.

    ``offer`` is O(capacity) under a lock — capacity is small (default
    32) and offers happen once per request, off the engine hot path.
    Events older than ``window_s`` are pruned on every offer/snapshot so
    yesterday's incident can't pin the ring forever.
    """

    def __init__(
        self,
        capacity: int = 32,
        window_s: float = 600.0,
        min_wall_ms: float = 0.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.window_s = window_s
        self.min_wall_ms = min_wall_ms
        self._clock = clock
        self._lock = threading.Lock()
        self._events: list[tuple[float, dict[str, Any]]] = []
        self.offered = 0
        self.captured = 0

    def _prune(self, now: float) -> None:
        horizon = now - self.window_s
        self._events = [(t, e) for (t, e) in self._events if t >= horizon]

    def offer(self, event: dict[str, Any]) -> bool:
        """Consider *event* for capture; True if it entered the ring."""
        wall = float(event.get("wall_ms", 0.0))
        if wall < self.min_wall_ms:
            return False
        now = self._clock()
        with self._lock:
            self.offered += 1
            self._prune(now)
            if len(self._events) < self.capacity:
                self._events.append((now, event))
                self.captured += 1
                return True
            worst_idx = min(
                range(len(self._events)),
                key=lambda i: float(self._events[i][1].get("wall_ms", 0.0)),
            )
            if wall > float(self._events[worst_idx][1].get("wall_ms", 0.0)):
                self._events[worst_idx] = (now, event)
                self.captured += 1
                return True
            return False

    def snapshot(self, n: int | None = None) -> list[dict[str, Any]]:
        """Captured events, slowest first."""
        now = self._clock()
        with self._lock:
            self._prune(now)
            events = [e for (_, e) in self._events]
        events.sort(key=lambda e: float(e.get("wall_ms", 0.0)), reverse=True)
        if n is not None:
            events = events[:n]
        return events

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class RollingStats:
    """Rolling latency/outcome window feeding the ``/status`` summary.

    Keeps (time, wall_ms, status) tuples for query requests inside
    ``window_s`` (length-capped), and derives p50/p95/p99 plus shed and
    error rates on demand.
    """

    def __init__(
        self,
        window_s: float = 300.0,
        max_samples: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.window_s = window_s
        self.max_samples = max_samples
        self._clock = clock
        self._lock = threading.Lock()
        self._samples: list[tuple[float, float, int]] = []

    def observe(self, wall_ms: float, status: int) -> None:
        now = self._clock()
        with self._lock:
            self._samples.append((now, wall_ms, status))
            if len(self._samples) > self.max_samples:
                del self._samples[: len(self._samples) - self.max_samples]

    def summary(self) -> dict[str, Any]:
        now = self._clock()
        horizon = now - self.window_s
        with self._lock:
            self._samples = [s for s in self._samples if s[0] >= horizon]
            samples = list(self._samples)
        total = len(samples)
        ok = [w for (_, w, s) in samples if 200 <= s < 300]
        shed = sum(1 for (_, _, s) in samples if s == 503)
        timeout = sum(1 for (_, _, s) in samples if s == 504)
        client_err = sum(1 for (_, _, s) in samples if 400 <= s < 500)
        server_err = sum(
            1 for (_, _, s) in samples if s >= 500 and s not in (503, 504)
        )
        latency = {
            "p50": round(percentile(ok, 0.50), 3) if ok else None,
            "p95": round(percentile(ok, 0.95), 3) if ok else None,
            "p99": round(percentile(ok, 0.99), 3) if ok else None,
        }
        return {
            "window_s": self.window_s,
            "requests": total,
            "ok": len(ok),
            "shed": shed,
            "timeout": timeout,
            "client_error": client_err,
            "server_error": server_err,
            "shed_rate": round(shed / total, 4) if total else 0.0,
            "error_rate": round(
                (server_err + timeout) / total, 4
            ) if total else 0.0,
            "latency_ms": latency,
        }


class TelemetryHub:
    """Service-owned aggregation point: in-flight table, slow capture,
    rolling latency window.  One hub per :class:`QueryService`."""

    def __init__(
        self,
        slow_capacity: int = 32,
        slow_window_s: float = 600.0,
        slow_min_wall_ms: float = 0.0,
        rolling_window_s: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
        exporter=None,
    ) -> None:
        self.slow = SlowRequestCapture(
            capacity=slow_capacity,
            window_s=slow_window_s,
            min_wall_ms=slow_min_wall_ms,
            clock=clock,
        )
        self.rolling = RollingStats(window_s=rolling_window_s, clock=clock)
        #: Optional unified span exporter (repro.obs.spans.SpanExporter);
        #: fed every finished query request.
        self.exporter = exporter
        #: Optional ``callable(wall_ms, status)`` invoked once per
        #: finished query request (the SLO engine's intake).
        self.on_search_finish: Callable[[float, int], None] | None = None
        self._lock = threading.Lock()
        self._inflight: dict[str, RequestTelemetry] = {}
        self.started = 0
        self.finished = 0

    def begin(
        self,
        request_id: str | None = None,
        route: str = "",
        query: str = "",
        scheme: str = "",
    ) -> RequestTelemetry:
        rt = RequestTelemetry(
            request_id=request_id, route=route, query=query, scheme=scheme
        )
        with self._lock:
            self.started += 1
            self._inflight[rt.request_id] = rt
        return rt

    def finish(self, rt: RequestTelemetry, status: int) -> dict[str, Any]:
        """Finalize *rt*: drop from in-flight, feed rolling stats and the
        slow capture (query routes only), and return the wide event."""
        wall = rt.finish(status)
        with self._lock:
            self.finished += 1
            self._inflight.pop(rt.request_id, None)
        event = rt.to_wide_event()
        if rt.route == "/search":
            self.rolling.observe(wall, status)
            self.slow.offer(event)
            if self.exporter is not None:
                self.exporter.export(rt)
            if self.on_search_finish is not None:
                self.on_search_finish(wall, status)
        return event

    def inflight(self) -> list[dict[str, Any]]:
        with self._lock:
            views = [rt.inflight_view() for rt in self._inflight.values()]
        views.sort(key=lambda v: v["age_ms"], reverse=True)
        return views

    def status_summary(self) -> dict[str, Any]:
        summary = self.rolling.summary()
        summary["inflight"] = len(self._inflight)
        summary["slow_captured"] = len(self.slow)
        summary["slow_offered"] = self.slow.offered
        return summary


# ---------------------------------------------------------------------------
# Aggregation: "where does p99 go"
# ---------------------------------------------------------------------------


def percentile(values: Iterable[float], q: float) -> float:
    """Nearest-rank-with-interpolation percentile; 0.0 on empty input."""
    data = sorted(values)
    if not data:
        return 0.0
    if len(data) == 1:
        return data[0]
    pos = q * (len(data) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(data) - 1)
    frac = pos - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


def attribute_phases(
    events: list[dict[str, Any]], tail_q: float = 0.99
) -> dict[str, Any]:
    """Aggregate wide events into a per-phase tail-latency attribution.

    Two complementary views:

    * ``phases`` — per-phase p50/p95/p99 across all events (how bad can
      each phase individually get);
    * ``attribution`` — the mean phase breakdown over the slowest
      ``1 - tail_q`` fraction of events (where does the tail actually
      spend its time), with each phase's share of that tail wall time.
      Shares are the actionable number: they sum to ~1.0.
    """
    events = [e for e in events if isinstance(e.get("phase_ms"), dict)]
    if not events:
        return {"events": 0, "wall_ms": {}, "phases": {}, "attribution": []}

    walls = [float(e.get("wall_ms", 0.0)) for e in events]
    names: list[str] = []
    for e in events:
        for name in e["phase_ms"]:
            if name not in names:
                names.append(name)
    # Stable, pipeline-ordered phase listing (unknown names appended).
    names.sort(key=lambda n: (PHASES.index(n) if n in PHASES else len(PHASES)))

    per_phase: dict[str, dict[str, float]] = {}
    for name in names:
        vals = [float(e["phase_ms"].get(name, 0.0)) for e in events]
        per_phase[name] = {
            "p50": round(percentile(vals, 0.50), 3),
            "p95": round(percentile(vals, 0.95), 3),
            "p99": round(percentile(vals, 0.99), 3),
            "max": round(max(vals), 3),
        }

    # Tail attribution: mean breakdown over the slowest events.
    cutoff = percentile(walls, tail_q)
    tail = [e for e in events if float(e.get("wall_ms", 0.0)) >= cutoff]
    if not tail:
        tail = sorted(
            events, key=lambda e: float(e.get("wall_ms", 0.0)), reverse=True
        )[:1]
    tail_wall = sum(float(e.get("wall_ms", 0.0)) for e in tail)
    attribution = []
    attributed = 0.0
    for name in names:
        total = sum(float(e["phase_ms"].get(name, 0.0)) for e in tail)
        attributed += total
        attribution.append(
            {
                "phase": name,
                "mean_ms": round(total / len(tail), 3),
                "share": round(total / tail_wall, 4) if tail_wall else 0.0,
            }
        )
    if tail_wall > attributed:
        attribution.append(
            {
                "phase": "(unattributed)",
                "mean_ms": round((tail_wall - attributed) / len(tail), 3),
                "share": round((tail_wall - attributed) / tail_wall, 4),
            }
        )
    attribution.sort(key=lambda row: row["share"], reverse=True)

    return {
        "events": len(events),
        "tail_events": len(tail),
        "tail_q": tail_q,
        "wall_ms": {
            "p50": round(percentile(walls, 0.50), 3),
            "p95": round(percentile(walls, 0.95), 3),
            "p99": round(percentile(walls, 0.99), 3),
            "max": round(max(walls), 3),
        },
        "phases": per_phase,
        "attribution": attribution,
    }


def render_attribution(report: dict[str, Any]) -> str:
    """Human-readable table for ``repro slow``."""
    if not report.get("events"):
        return "no captured events"
    lines = []
    wall = report["wall_ms"]
    lines.append(
        f"{report['events']} events; wall ms p50={wall['p50']} "
        f"p95={wall['p95']} p99={wall['p99']} max={wall['max']}"
    )
    lines.append(
        f"tail attribution over the {report['tail_events']} slowest "
        f"event(s) (>= p{int(report['tail_q'] * 100)}):"
    )
    lines.append(
        f"  {'phase':<16} {'share':>7} {'mean_ms':>9} "
        f"{'p50':>9} {'p95':>9} {'p99':>9}"
    )
    phases = report["phases"]
    for row in report["attribution"]:
        name = row["phase"]
        stats = phases.get(name, {})
        lines.append(
            f"  {name:<16} {row['share'] * 100:>6.1f}% {row['mean_ms']:>9.3f} "
            f"{stats.get('p50', 0.0):>9.3f} {stats.get('p95', 0.0):>9.3f} "
            f"{stats.get('p99', 0.0):>9.3f}"
        )
    return "\n".join(lines)
