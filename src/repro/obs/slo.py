"""Service-level objectives: declarative targets, burn rates, budgets.

The telemetry layers below this one *measure*; this module *judges*.
An operator states an objective — "99% of requests finish under 50 ms",
"99.9% of requests succeed" — and the engine continuously answers three
questions a pager needs:

* **Am I in budget?**  Error-budget accounting over the long window:
  with a 99% target, 1% of requests may be bad; the budget remaining is
  how much of that allowance the current window has left.
* **How fast am I burning?**  The *burn rate* is the ratio of the
  observed bad fraction to the allowed bad fraction (``1 - target``).
  Burn rate 1.0 spends exactly the budget over the window; 14.4 spends
  a 30-day budget in 2 days.
* **Should I alert?**  Multi-window multi-burn-rate evaluation (the
  Google SRE workbook recipe): an objective is *breaching* when both a
  long window **and** its short confirmation window exceed the
  window's burn-rate threshold.  The long window gives significance,
  the short one gives fast recovery — when the fault clears, the short
  window empties of bad events first and the page stops.

Everything is deterministic under an injected clock (tests drive hours
of traffic in microseconds), dependency-free, and cheap: ``observe`` is
an append + amortized prune; ``evaluate`` is one pass over the sample
window, throttled by ``maybe_evaluate`` on the hot path.

The service (:mod:`repro.serve.service`) feeds every ``/search``
outcome in, serves the report at ``/debug/slo``, exports
``graft_slo_*`` metrics, and — with ``slo_shed`` enabled — arms the
admission controller's early shedding while a fast burn is in progress
(shed at half the queue watermark: refusing marginal work early is how
a latency SLO is defended, not violated).
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import GraftError
from repro.obs.metrics import (
    REGISTRY,
    slo_breaches,
    slo_breaching,
    slo_budget_remaining,
    slo_burn_rate,
)
from repro.obs.telemetry import percentile

__all__ = [
    "BurnWindow",
    "DEFAULT_WINDOWS",
    "SloObjective",
    "SloEngine",
    "parse_slo_spec",
]


@dataclass(frozen=True)
class BurnWindow:
    """One (long, short, threshold) burn-rate alerting window.

    Breaching requires the burn rate over **both** ``long_s`` and
    ``short_s`` to exceed ``max_burn_rate`` — the standard
    multi-window guard against paging on a blip and against paging
    forever after the fault has cleared.
    """

    name: str
    long_s: float
    short_s: float
    max_burn_rate: float

    def __post_init__(self):
        if self.long_s <= 0 or self.short_s <= 0:
            raise GraftError(
                f"burn window {self.name!r}: window seconds must be positive"
            )
        if self.short_s > self.long_s:
            raise GraftError(
                f"burn window {self.name!r}: short window ({self.short_s}s) "
                f"exceeds long window ({self.long_s}s)"
            )
        if self.max_burn_rate <= 0:
            raise GraftError(
                f"burn window {self.name!r}: max_burn_rate must be positive"
            )


#: The SRE-workbook defaults, scaled to a service dashboard: a *fast*
#: page (1h long / 5m confirmation at 14.4x burn) and a *slow* ticket
#: (6h long / 30m confirmation at 6x burn).
DEFAULT_WINDOWS = (
    BurnWindow("fast", long_s=3600.0, short_s=300.0, max_burn_rate=14.4),
    BurnWindow("slow", long_s=21600.0, short_s=1800.0, max_burn_rate=6.0),
)


@dataclass(frozen=True)
class SloObjective:
    """One declarative objective over the request stream.

    ``kind="latency"``: a request is *good* when it succeeded and its
    wall time is at or under ``threshold_ms`` (``percentile`` is the
    display name the operator stated, e.g. ``"p99"``).
    ``kind="availability"``: a request is *good* unless the service
    answered it with a 5xx — shed (503) and deadline-expired (504)
    requests count against availability, exactly as a client sees them.
    ``target`` is the required good fraction in (0, 1).
    """

    name: str
    kind: str
    target: float
    threshold_ms: float | None = None
    percentile: str | None = None

    def __post_init__(self):
        if self.kind not in ("latency", "availability"):
            raise GraftError(
                f"SLO kind must be 'latency' or 'availability', "
                f"got {self.kind!r}"
            )
        if not (0.0 < self.target < 1.0):
            raise GraftError(
                f"SLO target must be within (0, 1), got {self.target!r}"
            )
        if self.kind == "latency" and (
            self.threshold_ms is None or self.threshold_ms <= 0
        ):
            raise GraftError(
                f"latency SLO {self.name!r} needs a positive threshold_ms"
            )

    def is_good(self, wall_ms: float, status: int) -> bool:
        if self.kind == "availability":
            return status < 500
        return status < 500 and wall_ms <= self.threshold_ms

    def describe(self) -> str:
        if self.kind == "availability":
            return f"availability >= {self.target:g}"
        return (
            f"{self.percentile or 'latency'} <= {self.threshold_ms:g}ms "
            f"for {self.target:g} of requests"
        )


_LATENCY_SPEC = re.compile(
    r"^latency:(?P<pct>p\d{1,2}(?:\.\d+)?):(?P<thr>\d+(?:\.\d+)?)"
    r"(?P<unit>ms|s)?(?::(?P<target>0?\.\d+))?$"
)
_AVAILABILITY_SPEC = re.compile(r"^availability:(?P<target>0?\.\d+)$")


def parse_slo_spec(spec: str) -> SloObjective:
    """Parse a CLI objective spec into a :class:`SloObjective`.

    Two forms::

        latency:p99:50ms:0.99     # p99 <= 50ms for 99% of requests
        latency:p95:0.2s          # target defaults to the percentile
        availability:0.999        # 99.9% of requests answered < 500

    The latency target may be omitted, in which case it is taken from
    the stated percentile (``p99`` -> 0.99) — the common reading of
    "p99 under 50 ms".
    """
    text = spec.strip().lower()
    match = _AVAILABILITY_SPEC.match(text)
    if match:
        return SloObjective(
            name=f"availability_{match.group('target').lstrip('0.') or '0'}",
            kind="availability",
            target=float(match.group("target")),
        )
    match = _LATENCY_SPEC.match(text)
    if match:
        pct_label = match.group("pct")
        threshold = float(match.group("thr"))
        if match.group("unit") == "s":
            threshold *= 1000.0
        raw_target = match.group("target")
        target = (
            float(raw_target) if raw_target is not None
            else float(pct_label[1:]) / 100.0
        )
        thr_text = f"{threshold:g}".replace(".", "_")
        return SloObjective(
            name=f"latency_{pct_label}_{thr_text}ms",
            kind="latency",
            target=target,
            threshold_ms=threshold,
            percentile=pct_label,
        )
    raise GraftError(
        f"cannot parse SLO spec {spec!r}; expected "
        f"'latency:pNN:THRESHOLDms[:TARGET]' or 'availability:TARGET'"
    )


class SloEngine:
    """Observe request outcomes, evaluate objectives, export verdicts.

    Thread-tolerant by the same discipline as the telemetry hub: the
    sample list is guarded by a lock, so executor-thread observers and
    event-loop evaluators never race.  ``clock`` is injectable — the
    deterministic unit tests replay hours of traffic instantly.
    """

    def __init__(
        self,
        objectives,
        *,
        windows: tuple[BurnWindow, ...] = DEFAULT_WINDOWS,
        clock: Callable[[], float] = time.monotonic,
        max_samples: int = 65536,
        eval_interval_s: float = 1.0,
        registry=REGISTRY,
    ):
        objectives = tuple(objectives)
        if not objectives:
            raise GraftError("SloEngine needs at least one objective")
        names = [o.name for o in objectives]
        if len(set(names)) != len(names):
            raise GraftError(f"duplicate SLO objective names: {names}")
        if not windows:
            raise GraftError("SloEngine needs at least one burn window")
        self.objectives = objectives
        self.windows = tuple(windows)
        self._clock = clock
        self.max_samples = max_samples
        self.eval_interval_s = eval_interval_s
        self._registry = registry
        import threading

        self._lock = threading.Lock()
        #: (monotonic ts, wall_ms, status) — one entry per request.
        self._samples: list[tuple[float, float, int]] = []
        self._states: dict[str, str] = {o.name: "ok" for o in objectives}
        self._last_eval_at: float | None = None
        self._last_report: dict[str, Any] | None = None
        self.observed = 0

    # -- intake --------------------------------------------------------------

    def _horizon_s(self) -> float:
        return max(w.long_s for w in self.windows)

    def observe(self, wall_ms: float, status: int) -> None:
        """Fold one finished request into the sample window."""
        now = self._clock()
        horizon = now - self._horizon_s()
        with self._lock:
            self.observed += 1
            self._samples.append((now, float(wall_ms), int(status)))
            if self._samples and self._samples[0][0] < horizon:
                self._samples = [
                    s for s in self._samples if s[0] >= horizon
                ]
            if len(self._samples) > self.max_samples:
                del self._samples[: len(self._samples) - self.max_samples]

    # -- judgment ------------------------------------------------------------

    @staticmethod
    def _burn(objective: SloObjective, samples, now: float,
              window_s: float) -> tuple[float, int, int]:
        """(burn_rate, total, bad) for *objective* over the last window."""
        horizon = now - window_s
        total = bad = 0
        for ts, wall, status in samples:
            if ts < horizon:
                continue
            total += 1
            if not objective.is_good(wall, status):
                bad += 1
        if total == 0:
            return 0.0, 0, 0
        budget = 1.0 - objective.target
        return (bad / total) / budget, total, bad

    def evaluate(self) -> dict[str, Any]:
        """Full evaluation: per-objective burn rates, budgets, verdicts.

        Updates the ``graft_slo_*`` metric families and the internal
        breach states (the breach counter increments on each
        ok -> breaching transition, not on every breaching poll).
        """
        now = self._clock()
        with self._lock:
            samples = list(self._samples)
        report_objectives = []
        any_breaching = False
        fast_breaching = False
        budget_window_s = self._horizon_s()
        for objective in self.objectives:
            windows_report = {}
            breaching = False
            for window in self.windows:
                long_burn, long_total, _ = self._burn(
                    objective, samples, now, window.long_s
                )
                short_burn, short_total, _ = self._burn(
                    objective, samples, now, window.short_s
                )
                window_breaching = (
                    long_total > 0
                    and long_burn > window.max_burn_rate
                    and short_burn > window.max_burn_rate
                )
                breaching = breaching or window_breaching
                if window_breaching and window is self.windows[0]:
                    fast_breaching = True
                windows_report[window.name] = {
                    "long_s": window.long_s,
                    "short_s": window.short_s,
                    "max_burn_rate": window.max_burn_rate,
                    "long_burn_rate": round(long_burn, 4),
                    "short_burn_rate": round(short_burn, 4),
                    "long_samples": long_total,
                    "short_samples": short_total,
                    "breaching": window_breaching,
                }
                slo_burn_rate(self._registry).labels(
                    objective=objective.name, window=window.name
                ).set(round(long_burn, 6))
            # Error budget over the longest window: consumed fraction of
            # the allowance, remaining clamped at 0 (an exhausted budget
            # cannot go *more* than exhausted for display purposes; the
            # burn rates above carry the overshoot).
            _, total, bad = self._burn(
                objective, samples, now, budget_window_s
            )
            budget = 1.0 - objective.target
            consumed = (bad / total) / budget if total else 0.0
            remaining = max(0.0, 1.0 - consumed)
            state = "breaching" if breaching else "ok"
            previous = self._states[objective.name]
            if state == "breaching" and previous != "breaching":
                slo_breaches(self._registry).labels(
                    objective=objective.name
                ).inc()
            self._states[objective.name] = state
            slo_breaching(self._registry).labels(
                objective=objective.name
            ).set(1.0 if breaching else 0.0)
            slo_budget_remaining(self._registry).labels(
                objective=objective.name
            ).set(round(remaining, 6))
            any_breaching = any_breaching or breaching
            entry: dict[str, Any] = {
                "name": objective.name,
                "kind": objective.kind,
                "description": objective.describe(),
                "target": objective.target,
                "threshold_ms": objective.threshold_ms,
                "percentile": objective.percentile,
                "state": state,
                "windows": windows_report,
                "budget": {
                    "window_s": budget_window_s,
                    "allowed_bad_fraction": round(budget, 6),
                    "samples": total,
                    "bad": bad,
                    "consumed_fraction": round(consumed, 4),
                    "remaining_fraction": round(remaining, 4),
                },
            }
            if objective.kind == "latency" and objective.percentile:
                horizon = now - budget_window_s
                walls = [
                    wall for ts, wall, status in samples
                    if ts >= horizon and status < 500
                ]
                q = min(0.999, float(objective.percentile[1:]) / 100.0)
                entry["measured_ms"] = (
                    round(percentile(walls, q), 3) if walls else None
                )
            report_objectives.append(entry)
        report = {
            "enabled": True,
            "observed": self.observed,
            "breaching": any_breaching,
            "fast_burn_breaching": fast_breaching,
            "objectives": report_objectives,
        }
        with self._lock:
            self._last_eval_at = now
            self._last_report = report
        return report

    def maybe_evaluate(self) -> dict[str, Any]:
        """Hot-path evaluation, throttled to ``eval_interval_s``.

        Request paths call this once per finished request; at most one
        full evaluation per interval actually runs, the rest reuse the
        cached report.
        """
        with self._lock:
            fresh = (
                self._last_report is not None
                and self._last_eval_at is not None
                and self._clock() - self._last_eval_at < self.eval_interval_s
            )
            if fresh:
                return self._last_report
        return self.evaluate()

    def breaching(self) -> list[str]:
        """Names of objectives currently in the breaching state."""
        return [
            name for name, state in self._states.items()
            if state == "breaching"
        ]
