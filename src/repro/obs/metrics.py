"""A dependency-free process-wide metrics registry.

A serving engine needs counters and latency histograms that outlive any
single query: how many queries ran (and how many degraded), how long
checkpoints take, how often the WAL fsyncs, whether corruption has ever
been detected.  This module supplies the registry those families live in
— plain Python, no client library — with two export formats:

* :meth:`MetricsRegistry.snapshot` — a JSON-ready dict (the CLI's
  ``repro metrics --format json`` and the ``--json`` outputs embed it);
* :meth:`MetricsRegistry.to_prometheus_text` — the Prometheus text
  exposition format (version 0.0.4), scrape-ready.

Metric model
------------
A *family* has a name, a kind (``counter``/``gauge``/``histogram``), a
help string, and a tuple of label names.  Each distinct label-value
combination materializes one *child* (:class:`Counter`, :class:`Gauge`
or :class:`Histogram`) on first use::

    REGISTRY.counter("graft_queries_total", "Queries executed",
                     labelnames=("scheme", "status"))
    REGISTRY.get("graft_queries_total").labels(
        scheme="sumbest", status="ok").inc()

Families are idempotent: re-declaring one with the same kind and labels
returns the existing family, so every instrumentation site can declare
what it needs without import-order coupling.  Instrumented hot paths pay
one dict lookup and one float add per event.

``REGISTRY`` is the process-wide default.  Tests that need isolation
construct their own :class:`MetricsRegistry` or call
:meth:`MetricsRegistry.reset`.
"""

from __future__ import annotations

import json
import re
import time
from typing import Iterator

from repro.errors import GraftError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (seconds): spans sub-millisecond operator
#: timings up to multi-second checkpoint/compaction durations.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise GraftError(f"counters only go up; inc({amount}) rejected")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``counts[i]`` tallies observations ``<= buckets[i]``; the implicit
    ``+Inf`` bucket is ``count``.
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * len(self.buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1

    def time(self) -> "_HistogramTimer":
        """Context manager observing the elapsed wall time in seconds."""
        return _HistogramTimer(self)


class _HistogramTimer:
    __slots__ = ("_hist", "_start")

    def __init__(self, hist: Histogram):
        self._hist = hist

    def __enter__(self) -> "_HistogramTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._hist.observe(time.perf_counter() - self._start)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named family: fixed labels, lazily materialized children."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        if not _NAME_RE.match(name):
            raise GraftError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise GraftError(f"invalid label name {label!r} on {name}")
        if kind not in _KINDS:
            raise GraftError(
                f"unknown metric kind {kind!r}; known: {sorted(_KINDS)}"
            )
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self._buckets = tuple(buckets)
        self._children: dict[tuple[str, ...], object] = {}

    def labels(self, **labelvalues: str):
        """The child for one label-value combination (created on first use)."""
        if set(labelvalues) != set(self.labelnames):
            raise GraftError(
                f"{self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[k]) for k in self.labelnames)
        child = self._children.get(key)
        if child is None:
            if self.kind == "histogram":
                child = Histogram(self._buckets)
            else:
                child = _KINDS[self.kind]()
            # setdefault, not assignment: two threads creating the same
            # child concurrently must converge on one object, or the
            # loser's increments would silently vanish (searches run on
            # a thread pool; this race was real under load).
            child = self._children.setdefault(key, child)
        return child

    def child(self):
        """The unlabeled child (families declared with no labels)."""
        return self.labels()

    def samples(self) -> Iterator[tuple[tuple[str, ...], object]]:
        yield from sorted(self._children.items())


class MetricsRegistry:
    """A named collection of metric families."""

    def __init__(self):
        self._families: dict[str, MetricFamily] = {}

    # -- declaration -------------------------------------------------------

    def _declare(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind or family.labelnames != tuple(labelnames):
                raise GraftError(
                    f"metric {name} already registered as {family.kind} "
                    f"with labels {family.labelnames}; cannot re-register "
                    f"as {kind} with labels {tuple(labelnames)}"
                )
            return family
        family = MetricFamily(name, kind, help, tuple(labelnames), buckets)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> MetricFamily:
        return self._declare(name, "counter", help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> MetricFamily:
        return self._declare(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        return self._declare(name, "histogram", help, labelnames, buckets)

    # -- access ------------------------------------------------------------

    def get(self, name: str) -> MetricFamily:
        try:
            return self._families[name]
        except KeyError:
            raise GraftError(f"no metric family named {name!r}") from None

    def families(self) -> list[MetricFamily]:
        return [self._families[k] for k in sorted(self._families)]

    def reset(self) -> None:
        """Drop every family (test isolation)."""
        self._families.clear()

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-ready dump of every family and child."""
        out: dict = {}
        for family in self.families():
            samples = []
            for key, child in family.samples():
                labels = dict(zip(family.labelnames, key))
                if isinstance(child, Histogram):
                    samples.append({
                        "labels": labels,
                        "count": child.count,
                        "sum": child.sum,
                        "buckets": {
                            str(bound): n
                            for bound, n in zip(child.buckets, child.counts)
                        },
                    })
                else:
                    samples.append({"labels": labels, "value": child.value})
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "samples": samples,
            }
        return out

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus_text(self) -> str:
        """Prometheus text exposition format (0.0.4)."""
        lines: list[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, child in family.samples():
                labels = dict(zip(family.labelnames, key))
                if isinstance(child, Histogram):
                    cumulative = 0
                    for bound, n in zip(child.buckets, child.counts):
                        cumulative = n
                        bucket_labels = dict(labels, le=_format_value(bound))
                        lines.append(
                            f"{family.name}_bucket{_labelset(bucket_labels)} "
                            f"{cumulative}"
                        )
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_labelset(dict(labels, le='+Inf'))} {child.count}"
                    )
                    lines.append(
                        f"{family.name}_sum{_labelset(labels)} "
                        f"{_format_value(child.sum)}"
                    )
                    lines.append(
                        f"{family.name}_count{_labelset(labels)} {child.count}"
                    )
                else:
                    lines.append(
                        f"{family.name}{_labelset(labels)} "
                        f"{_format_value(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _labelset(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


#: The process-wide default registry: engine, store, and CLI
#: instrumentation all record here unless handed another registry.
REGISTRY = MetricsRegistry()


# -- standard families ------------------------------------------------------
#
# Declared lazily by the helpers below so importing this module stays
# side-effect free; every instrumentation site goes through one of them.


def query_counters(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.counter(
        "graft_queries_total",
        "Queries executed, by scoring scheme and outcome status",
        labelnames=("scheme", "status"),
    )


def query_seconds(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.histogram(
        "graft_query_seconds", "End-to-end query latency (seconds)"
    )


def record_execution_metrics(metrics, registry: MetricsRegistry = REGISTRY) -> None:
    """Fold one query's :class:`repro.exec.iterator.ExecutionMetrics`
    into the registry's cumulative work counters.

    Benchmarks call this too, so ``BENCH_*.json`` trajectories come from
    the same counter families the engine serves.
    """
    registry.counter(
        "graft_positions_scanned_total",
        "Term positions scanned by leaf operators",
    ).child().inc(metrics.positions_scanned)
    registry.counter(
        "graft_doc_entries_scanned_total",
        "Term-document entries scanned by pre-count leaves",
    ).child().inc(metrics.doc_entries_scanned)
    registry.counter(
        "graft_rows_joined_total", "Join combinations emitted"
    ).child().inc(metrics.rows_joined)
    registry.counter(
        "graft_rows_grouped_total", "Rows folded by grouping operators"
    ).child().inc(metrics.rows_grouped)
    registry.counter(
        "graft_rows_charged_total",
        "Rows charged against query resource budgets",
    ).child().inc(metrics.rows_charged)
    if metrics.limit_tripped is not None:
        registry.counter(
            "graft_limits_tripped_total",
            "Resource-limit trips, by limit name",
            labelnames=("limit",),
        ).labels(limit=metrics.limit_tripped).inc()


# -- audit families ---------------------------------------------------------
#
# The shadow-execution auditor (repro.obs.audit) records every audit
# verdict here, so a dashboard can alert on the first divergence ever
# seen in production.

def audit_counters(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.counter(
        "graft_audits_total",
        "Shadow-execution score-consistency audits, by scheme and verdict",
        labelnames=("scheme", "result"),
    )


def audit_divergences(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.counter(
        "graft_audit_divergences_total",
        "Score-consistency divergences attributed to a rewrite rule",
        labelnames=("rule",),
    )


# -- parallel-execution families --------------------------------------------
#
# The sharded driver (repro.exec.parallel) and the engine's two-tier
# query cache (repro.exec.cache) record here.

def shards_executed(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.counter(
        "graft_shards_executed_total",
        "Index shards executed by the parallel driver",
    )


def shards_pruned(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.counter(
        "graft_shards_pruned_total",
        "Index shards skipped by required-keyword partition pruning",
    )


def shard_seconds(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.histogram(
        "graft_shard_seconds", "Per-shard plan execution wall time (seconds)"
    )


def proc_queries(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.counter(
        "graft_proc_queries_total",
        "Queries executed on the process-parallel shard pool",
    )


def proc_fallbacks(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.counter(
        "graft_proc_fallbacks_total",
        "Process-pool queries that fell back to the thread path",
        labelnames=("reason",),
    )


def plan_cache_hits(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.counter(
        "graft_plan_cache_hits_total",
        "Searches that skipped parse+optimize via the plan cache",
    )


def plan_cache_misses(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.counter(
        "graft_plan_cache_misses_total",
        "Cacheable searches that had to parse and optimize",
    )


def result_cache_hits(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.counter(
        "graft_result_cache_hits_total",
        "Searches answered entirely from the result cache",
    )


def result_cache_misses(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.counter(
        "graft_result_cache_misses_total",
        "Result-cacheable searches that had to execute",
    )


# -- service families -------------------------------------------------------
#
# The async query service (repro.serve) records its request lifecycle
# here: admission, shedding, per-route latency, generation swaps, and
# circuit-breaker transitions.  /metrics serves this registry.

#: Request-latency buckets (seconds): a serving deadline is typically
#: tens to hundreds of milliseconds, so the resolution concentrates there.
SERVICE_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0,
)


def http_requests(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.counter(
        "graft_http_requests_total",
        "HTTP requests served, by route and status code",
        labelnames=("route", "status"),
    )


def http_request_seconds(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.histogram(
        "graft_http_request_seconds",
        "End-to-end HTTP request latency by route (seconds), including "
        "admission-queue wait",
        labelnames=("route",),
        buckets=SERVICE_LATENCY_BUCKETS,
    )


def inflight_requests(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.gauge(
        "graft_service_inflight_requests",
        "Admitted requests currently executing",
    )


def queued_requests(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.gauge(
        "graft_service_queued_requests",
        "Admitted-but-waiting requests (admission queue depth)",
    )


def requests_shed(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.counter(
        "graft_requests_shed_total",
        "Requests rejected by load shedding (503 + Retry-After)",
    )


def admission_timeouts(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.counter(
        "graft_admission_timeouts_total",
        "Requests whose deadline expired waiting in the admission queue",
    )


def generation_swaps(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.counter(
        "graft_generation_swaps_total",
        "Reader hot-swaps to a newly checkpointed store generation",
    )


def swap_seconds(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.histogram(
        "graft_generation_swap_seconds",
        "Wall time to load, pin and swap in a new reader generation "
        "(seconds); readers keep serving the old one throughout",
    )


def breaker_transitions(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.counter(
        "graft_breaker_transitions_total",
        "Circuit-breaker state transitions, by state entered",
        labelnames=("state",),
    )


def degraded_serial_requests(
    registry: MetricsRegistry = REGISTRY,
) -> MetricFamily:
    return registry.counter(
        "graft_degraded_serial_requests_total",
        "Searches served on the fail-fast degraded serial path while the "
        "circuit breaker was open",
    )


# -- SLO families -----------------------------------------------------------
#
# The SLO engine (repro.obs.slo) exports its verdicts here so external
# alerting can fire on the same burn rates /debug/slo reports.

def slo_burn_rate(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.gauge(
        "graft_slo_burn_rate",
        "Error-budget burn rate over each alerting window's long arm "
        "(1.0 spends the budget exactly over the window)",
        labelnames=("objective", "window"),
    )


def slo_breaching(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.gauge(
        "graft_slo_breaching",
        "1 while the objective's multi-window burn-rate alert is firing",
        labelnames=("objective",),
    )


def slo_budget_remaining(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.gauge(
        "graft_slo_budget_remaining",
        "Fraction of the error budget left over the longest window",
        labelnames=("objective",),
    )


def slo_breaches(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.counter(
        "graft_slo_breaches_total",
        "ok -> breaching transitions per objective",
        labelnames=("objective",),
    )


def slo_shed_armed(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.gauge(
        "graft_slo_shed_armed",
        "1 while fast-burn breaching has armed early admission shedding",
    )


# -- span-export families ----------------------------------------------------

def spans_exported(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.counter(
        "graft_spans_exported_total",
        "Spans written by the unified span exporter",
    )


def traces_exported(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.counter(
        "graft_traces_exported_total",
        "Request span trees exported (one per finished request)",
    )


# -- store-level families --------------------------------------------------
#
# The durable store (repro.index.store) records its I/O through these
# families; declared here so the metric names live in one place.

def store_fsyncs(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.counter(
        "graft_store_fsyncs_total",
        "fsync calls issued by the durable store, by target kind",
        labelnames=("kind",),
    )


def wal_appends(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.counter(
        "graft_wal_appends_total",
        "Records durably appended to the write-ahead log",
    )


def wal_replayed(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.counter(
        "graft_wal_replayed_records_total",
        "WAL records replayed into a collection at load/open time",
    )


def store_checkpoints(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.counter(
        "graft_store_checkpoints_total",
        "Store generations checkpointed",
    )


def checkpoint_seconds(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.histogram(
        "graft_store_checkpoint_seconds",
        "Wall time of atomic checkpoint installation (seconds)",
    )


def corruption_detected(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    return registry.counter(
        "graft_store_corruption_detected_total",
        "Checksum or structural corruption detections during store reads",
    )
