"""Structured query logging: an append-only JSONL event log.

A serving engine needs a durable record of what it was asked and how it
answered — not a metrics aggregate, the individual queries: which ones
were slow, which tripped a resource limit, which failed an audit.  This
module supplies that log as newline-delimited JSON with three
properties a production log needs:

* **size-based rotation** that never truncates a record: every record is
  appended as one complete line, and when the active file would exceed
  ``max_bytes`` it is rotated *before* the write (``qlog.jsonl`` ->
  ``qlog.jsonl.1`` -> ... up to ``max_rotations``, oldest dropped);
* **per-event sampling** via a deterministic error accumulator
  (``sample_rate=0.1`` keeps exactly every tenth record, no RNG);
* a **slow-query override**: queries at or over ``slow_ms`` — and
  degraded, errored, or audit-failing queries — are always logged with
  their trace tree (when profiled) and ``limit_hit``, regardless of the
  sample rate.  ``sample_rate=0`` therefore means "slow/failed queries
  only", the usual production setting.

The record shape is pinned by ``$defs/qlog_record`` in
``tests/obs/trace_schema.json``; ``repro qlog tail|stats`` reads logs
back from the CLI.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import TYPE_CHECKING, Iterator

from repro.errors import GraftError
# The shared sorted-interpolated percentile (repro.obs.telemetry is the
# single implementation for loadgen, qlog stats, and the SLO engine).
from repro.obs.telemetry import percentile as _percentile

if TYPE_CHECKING:
    from repro.api import SearchOutcome

#: Current record schema version (bumped on shape changes).
#: v2 added ``request_id`` and ``phase_ms`` (request-telemetry join keys:
#: a record is joinable with ``/debug/slow`` wide events by request id).
QLOG_SCHEMA_VERSION = 2


class QueryLog:
    """An append-only, size-rotated JSONL query log.

    Args:
        path: The active log file (created on first record; parent
            directories are created too).
        max_bytes: Rotation threshold for the active file.
        sample_rate: Fraction of ordinary (fast, successful) queries to
            keep, in [0, 1]; slow/degraded/error/audit-failure records
            bypass sampling entirely.
        slow_ms: Wall-time threshold (milliseconds) that marks a query
            slow; None disables the slow classification.
        max_rotations: How many rotated files to keep
            (``path.1`` .. ``path.N``); the oldest is dropped.
    """

    def __init__(
        self,
        path,
        max_bytes: int = 10_000_000,
        sample_rate: float = 1.0,
        slow_ms: float | None = None,
        max_rotations: int = 3,
    ):
        if not (0.0 <= sample_rate <= 1.0):
            raise GraftError(
                f"qlog sample_rate must be within [0, 1], got {sample_rate!r}"
            )
        if max_bytes < 1024:
            raise GraftError(
                f"qlog max_bytes must be at least 1024, got {max_bytes!r}"
            )
        if max_rotations < 1:
            raise GraftError(
                f"qlog max_rotations must be >= 1, got {max_rotations!r}"
            )
        self.path = pathlib.Path(path)
        self.max_bytes = max_bytes
        self.sample_rate = sample_rate
        self.slow_ms = slow_ms
        self.max_rotations = max_rotations
        self._acc = 0.0

    # -- writing -----------------------------------------------------------

    def _sampled(self) -> bool:
        self._acc += self.sample_rate
        if self._acc >= 1.0 - 1e-12:
            self._acc -= 1.0
            return True
        return False

    def log_query(
        self,
        query: str,
        scheme: str,
        status: str,
        wall_ms: float,
        outcome: "SearchOutcome | None" = None,
        top_k: int | None = None,
        request_id: str | None = None,
        phase_ms: dict | None = None,
    ) -> bool:
        """Fold one search into the log; returns True when written.

        ``status`` is ``"ok"``/``"degraded"``/``"error"`` (mirroring the
        ``graft_queries_total`` metric).  ``outcome`` supplies the
        provenance fields; None (the error path) logs the failure shell.
        ``request_id``/``phase_ms`` come from the request-telemetry layer
        when a request context is active (engine-internal phases only —
        queue wait and serialization belong to the service and appear in
        the ``/debug/slow`` wide event, not here).
        """
        slow = self.slow_ms is not None and wall_ms >= self.slow_ms
        audit_ok = None
        limit_hit = None
        applied: list[str] = []
        results = 0
        trace = None
        if outcome is not None:
            limit_hit = outcome.limit_hit
            applied = list(outcome.applied_optimizations)
            results = len(outcome.results)
            if outcome.audit is not None:
                audit_ok = outcome.audit.ok
            if outcome.stats is not None:
                trace = outcome.stats.to_dict()
        forced = (
            slow
            or status != "ok"
            or limit_hit is not None
            or audit_ok is False
        )
        sampled = self._sampled()
        if not forced and not sampled:
            return False
        record = {
            "schema": QLOG_SCHEMA_VERSION,
            "ts": time.time(),
            "query": query,
            "scheme": scheme,
            "status": status,
            "wall_ms": wall_ms,
            "slow": slow,
            "sampled": not forced,
            "top_k": top_k,
            "limit_hit": limit_hit,
            "applied_optimizations": applied,
            "results": results,
            "audit_ok": audit_ok,
            "trace": trace if (slow or status != "ok") else None,
            "request_id": request_id,
            "phase_ms": (
                {k: round(float(v), 3) for k, v in phase_ms.items()}
                if phase_ms else None
            ),
        }
        self.append(record)
        return True

    def append(self, record: dict) -> None:
        """Append one record as a single complete JSONL line, rotating
        first when the active file would overflow ``max_bytes``."""
        line = json.dumps(record, sort_keys=True) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        size = self.path.stat().st_size if self.path.exists() else 0
        # Rotate *before* writing, never mid-record: a record is always
        # contained whole in exactly one file.  An oversized single
        # record still lands intact (in a file of its own).
        if size > 0 and size + len(line.encode("utf-8")) > self.max_bytes:
            self.rotate()
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line)

    def rotate(self) -> None:
        """Shift ``path`` -> ``path.1`` -> ... -> ``path.N`` (drop oldest)."""
        oldest = self._rotated(self.max_rotations)
        if oldest.exists():
            oldest.unlink()
        for i in range(self.max_rotations - 1, 0, -1):
            src = self._rotated(i)
            if src.exists():
                src.rename(self._rotated(i + 1))
        if self.path.exists():
            self.path.rename(self._rotated(1))

    def _rotated(self, i: int) -> pathlib.Path:
        return self.path.with_name(f"{self.path.name}.{i}")

    def files(self) -> list[pathlib.Path]:
        """All log files, oldest first (rotated siblings then active)."""
        out = [
            self._rotated(i)
            for i in range(self.max_rotations, 0, -1)
            if self._rotated(i).exists()
        ]
        if self.path.exists():
            out.append(self.path)
        return out


# -- reading ---------------------------------------------------------------


def iter_records(path) -> Iterator[dict]:
    """Parse one JSONL file; raises :class:`GraftError` naming the first
    malformed line (a rotation bug or torn write would surface here)."""
    path = pathlib.Path(path)
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise GraftError(
                    f"{path}:{lineno}: malformed query-log record: {exc}"
                ) from None
            if not isinstance(record, dict):
                raise GraftError(
                    f"{path}:{lineno}: query-log record is not an object"
                )
            yield record


def read_log(path, include_rotated: bool = False) -> list[dict]:
    """All records under ``path`` (optionally its rotated siblings too),
    oldest first."""
    path = pathlib.Path(path)
    if not path.exists() and not include_rotated:
        raise GraftError(f"no query log at {path}")
    files: list[pathlib.Path] = []
    if include_rotated:
        rotated = sorted(
            (
                p for p in path.parent.glob(f"{path.name}.*")
                if p.suffix.lstrip(".").isdigit()
            ),
            key=lambda p: int(p.suffix.lstrip(".")),
            reverse=True,
        )
        files.extend(rotated)
    if path.exists():
        files.append(path)
    if not files:
        raise GraftError(f"no query log at {path}")
    out: list[dict] = []
    for file in files:
        out.extend(iter_records(file))
    return out


def tail_records(path, n: int = 10) -> list[dict]:
    """The last ``n`` records of the active log file."""
    if n < 1:
        raise GraftError(f"tail count must be >= 1, got {n!r}")
    return read_log(path)[-n:]




def log_stats(path, include_rotated: bool = True) -> dict:
    """Aggregate a query log: counts by status/scheme, slow and audit
    tallies, and wall-time percentiles (milliseconds)."""
    records = read_log(path, include_rotated=include_rotated)
    by_status: dict[str, int] = {}
    by_scheme: dict[str, int] = {}
    walls: list[float] = []
    slow = 0
    forced = 0
    audit_failures = 0
    for rec in records:
        by_status[rec.get("status", "?")] = (
            by_status.get(rec.get("status", "?"), 0) + 1
        )
        by_scheme[rec.get("scheme", "?")] = (
            by_scheme.get(rec.get("scheme", "?"), 0) + 1
        )
        wall = rec.get("wall_ms")
        if isinstance(wall, (int, float)):
            walls.append(float(wall))
        if rec.get("slow"):
            slow += 1
        if rec.get("sampled") is False:
            forced += 1
        if rec.get("audit_ok") is False:
            audit_failures += 1
    walls.sort()
    return {
        "records": len(records),
        "by_status": dict(sorted(by_status.items())),
        "by_scheme": dict(sorted(by_scheme.items())),
        "slow": slow,
        "forced": forced,
        "audit_failures": audit_failures,
        "wall_ms": {
            "p50": _percentile(walls, 0.50),
            "p95": _percentile(walls, 0.95),
            "max": walls[-1] if walls else 0.0,
        },
    }


def render_record(record: dict) -> str:
    """One-line terminal rendering of a record (``repro qlog tail``)."""
    flags = []
    if record.get("slow"):
        flags.append("slow")
    if record.get("limit_hit"):
        flags.append(f"limit:{record['limit_hit']}")
    if record.get("audit_ok") is False:
        flags.append("audit-fail")
    flag_text = f"  [{','.join(flags)}]" if flags else ""
    wall = record.get("wall_ms", 0.0)
    rid = record.get("request_id")
    rid_text = f"  rid={rid}" if rid else ""
    return (
        f"{record.get('status', '?'):8} {wall:9.3f}ms "
        f"{record.get('scheme', '?'):16} "
        f"{record.get('results', 0):5d} results  "
        f"{record.get('query', '')!r}{flag_text}{rid_text}"
    )
