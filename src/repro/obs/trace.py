"""Execution tracing: per-operator runtime statistics as a trace tree.

When a :class:`Tracer` is attached to the runtime
(:class:`repro.exec.iterator.Runtime`), plan compilation
(:func:`repro.exec.compile.compile_plan`) wraps every physical operator
in a :class:`TracedOp` and mirrors the *logical* plan as a tree of
:class:`TraceNode` — one node per logical operator, carrying the
:class:`OpStats` its physical counterpart records while the query runs:

* ``calls`` / ``seeks`` — ``next_doc`` / ``seek_doc`` invocations;
* ``docs_out`` / ``rows_out`` — doc groups and rows actually produced
  (lazy rows a skip signal abandons are never counted — the trace shows
  work *done*, mirroring the engine's lazy billing);
* ``empty_cells`` — empty-symbol (``None``) cells among emitted
  position cells, the footprint of padded disjunctions;
* ``time_ns`` — inclusive wall time spent inside the operator and its
  subtree (exclusive time is derived at render time by subtracting the
  children, exactly like ``EXPLAIN ANALYZE`` in relational engines);
* ``tripped`` — whether a resource-limit trip surfaced through this
  operator.

Tracing is strictly opt-in: with no tracer attached, compilation wraps
nothing and execution runs the exact untraced operator tree.  The
wrapper adds roughly two ``perf_counter_ns`` calls per row when enabled,
which is why ``search --profile`` is a flag and not the default.

The fused eager-aggregation leaf (one physical scan for three logical
operators) traces as a single node labelled with both forms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import TYPE_CHECKING, Iterator

from repro.errors import ResourceExhaustedError
from repro.exec.iterator import DocGroup, PhysicalOp, op_label

if TYPE_CHECKING:
    from repro.ma.nodes import PlanNode


@dataclass
class OpStats:
    """Runtime counters of one (logical) operator."""

    calls: int = 0
    seeks: int = 0
    docs_out: int = 0
    rows_out: int = 0
    empty_cells: int = 0
    time_ns: int = 0
    tripped: bool = False


@dataclass
class TraceNode:
    """One node of the trace tree, mirroring the logical plan."""

    label: str
    op_name: str = ""
    stats: OpStats = field(default_factory=OpStats)
    children: list["TraceNode"] = field(default_factory=list)
    #: The logical plan node (for cost-model annotation; not serialized).
    plan_node: "PlanNode | None" = None
    #: Cost-model estimate, attached by annotate_estimates (may stay None).
    estimate: dict | None = None

    @property
    def self_time_ns(self) -> int:
        """Exclusive time: this node minus its children (clamped at 0)."""
        children_ns = sum(c.stats.time_ns for c in self.children)
        return max(0, self.stats.time_ns - children_ns)

    @property
    def rows_in(self) -> int:
        """Rows the children actually handed upward."""
        return sum(c.stats.rows_out for c in self.children)

    def walk(self) -> Iterator["TraceNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        """JSON-ready form (schema: ``tests/obs/trace_schema.json``)."""
        s = self.stats
        return {
            "label": self.label,
            "op": self.op_name,
            "calls": s.calls,
            "seeks": s.seeks,
            "docs_out": s.docs_out,
            "rows_out": s.rows_out,
            "empty_cells": s.empty_cells,
            "time_ms": s.time_ns / 1e6,
            "self_time_ms": self.self_time_ns / 1e6,
            "tripped": s.tripped,
            "estimate": self.estimate,
            "children": [c.to_dict() for c in self.children],
        }


class Tracer:
    """Builds the trace tree during compilation; owns the finished root.

    Compilation calls :meth:`enter` before compiling a logical node's
    physical operator and :meth:`exit` after, so nested compilations
    stack up into the mirrored tree; :meth:`wrap` then attaches the
    recording wrapper.
    """

    def __init__(self):
        self.root: TraceNode | None = None
        self._stack: list[TraceNode] = []
        self.total_ns: int = 0
        self._started_ns: int | None = None

    def enter(self, plan_node: "PlanNode") -> TraceNode:
        node = TraceNode(label=plan_node.label(), plan_node=plan_node)
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.root = node
        self._stack.append(node)
        return node

    def exit(self, node: TraceNode) -> None:
        popped = self._stack.pop()
        assert popped is node, "unbalanced tracer enter/exit"

    def wrap(self, op: PhysicalOp, node: TraceNode) -> "TracedOp":
        node.op_name = op_label(op)
        return TracedOp(op, node)

    # -- whole-query wall clock -------------------------------------------

    def begin(self) -> None:
        self._started_ns = perf_counter_ns()

    def finish(self) -> None:
        if self._started_ns is not None:
            self.total_ns = perf_counter_ns() - self._started_ns
            self._started_ns = None


class TracedOp(PhysicalOp):
    """Recording proxy around one physical operator.

    Interior operators pull through it exactly as they would through the
    wrapped operator; the proxy counts and times, and re-yields rows
    through a counting generator.  Failures pass through untouched — the
    engine's root error boundary still attributes them to the *inner*
    operator, whose frames sit below the proxy's on the traceback.
    """

    __slots__ = ("op", "op_name", "node", "schema", "_n_positions")

    def __init__(self, op: PhysicalOp, node: TraceNode):
        self.op = op
        self.op_name = op_label(op)
        self.node = node
        self.schema = op.schema
        self._n_positions = len(op.schema.positions)

    def open(self) -> None:
        self.op.open()

    def close(self) -> None:
        self.op.close()

    def next_doc(self) -> DocGroup | None:
        stats = self.node.stats
        stats.calls += 1
        start = perf_counter_ns()
        try:
            group = self.op.next_doc()
        except ResourceExhaustedError:
            stats.tripped = True
            stats.time_ns += perf_counter_ns() - start
            raise
        except BaseException:
            stats.time_ns += perf_counter_ns() - start
            raise
        stats.time_ns += perf_counter_ns() - start
        if group is None:
            return None
        stats.docs_out += 1
        doc, rows = group
        return doc, self._recording_rows(rows, stats)

    def _recording_rows(
        self, rows: Iterator[tuple], stats: OpStats
    ) -> Iterator[tuple]:
        npos = self._n_positions
        it = iter(rows)
        while True:
            start = perf_counter_ns()
            try:
                row = next(it)
            except StopIteration:
                stats.time_ns += perf_counter_ns() - start
                return
            except ResourceExhaustedError:
                stats.tripped = True
                stats.time_ns += perf_counter_ns() - start
                raise
            except BaseException:
                stats.time_ns += perf_counter_ns() - start
                raise
            stats.time_ns += perf_counter_ns() - start
            stats.rows_out += 1
            if npos:
                for cell in row[:npos]:
                    if cell is None:
                        stats.empty_cells += 1
            yield row

    def seek_doc(self, doc_id: int) -> None:
        stats = self.node.stats
        stats.seeks += 1
        start = perf_counter_ns()
        try:
            self.op.seek_doc(doc_id)
        finally:
            stats.time_ns += perf_counter_ns() - start
