"""Opt-in stdlib sampling profiler (thread-based, collapsed-stack output).

A daemon thread wakes every ``interval_s`` and snapshots every thread's
stack via :func:`sys._current_frames`, aggregating identical stacks into
counts.  Output is the collapsed-stack format flamegraph tooling eats
directly (``frame;frame;frame count`` per line, root first).

This is a wall-clock sampler, not a deterministic tracer: overhead is a
few stack walks per tick regardless of request rate, which is why it is
safe to expose behind ``/debug/profile?seconds=N`` (opt-in, duration-
capped, bind-local service).  No third-party dependencies.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter

__all__ = ["SamplingProfiler", "sample_for"]

_DEFAULT_INTERVAL_S = 0.01
_MAX_STACK_DEPTH = 128


def _frame_label(frame) -> str:
    code = frame.f_code
    filename = code.co_filename.rsplit("/", 1)[-1]
    # Semicolons and spaces are the collapsed-format separators.
    name = code.co_name.replace(";", ":").replace(" ", "_")
    return f"{filename}:{name}"


class SamplingProfiler:
    """Periodic whole-process stack sampler.

    Usage::

        prof = SamplingProfiler(interval_s=0.01)
        prof.start()
        ...
        prof.stop()
        text = prof.collapsed()
    """

    def __init__(self, interval_s: float = _DEFAULT_INTERVAL_S) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self.interval_s = interval_s
        self._stacks: Counter[tuple[str, ...]] = Counter()
        self._samples = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    # -- sampling -----------------------------------------------------------

    def _run(self) -> None:
        own_id = threading.get_ident()
        while not self._stop.wait(self.interval_s):
            self._sample_once(own_id)

    def _sample_once(self, skip_thread_id: int) -> None:
        frames = sys._current_frames()
        with self._lock:
            self._samples += 1
            for thread_id, frame in frames.items():
                if thread_id == skip_thread_id:
                    continue
                stack: list[str] = []
                depth = 0
                while frame is not None and depth < _MAX_STACK_DEPTH:
                    stack.append(_frame_label(frame))
                    frame = frame.f_back
                    depth += 1
                stack.reverse()  # root first, flamegraph convention
                self._stacks[tuple(stack)] += 1

    # -- output -------------------------------------------------------------

    @property
    def samples(self) -> int:
        with self._lock:
            return self._samples

    def collapsed(self) -> str:
        """Collapsed-stack text: one ``a;b;c count`` line per distinct
        stack, most frequent first."""
        with self._lock:
            items = self._stacks.most_common()
        return "\n".join(f"{';'.join(stack)} {n}" for stack, n in items)

    def top(self, n: int = 20) -> list[tuple[str, int]]:
        """Leaf-frame hot list: (frame, samples) pairs."""
        leaf: Counter[str] = Counter()
        with self._lock:
            for stack, count in self._stacks.items():
                if stack:
                    leaf[stack[-1]] += count
        return leaf.most_common(n)


def sample_for(seconds: float,
               interval_s: float = _DEFAULT_INTERVAL_S) -> SamplingProfiler:
    """Blocking convenience: sample the whole process for *seconds*.

    Runs on the calling thread (the sampler itself is a daemon thread);
    callers on an event loop should dispatch this to an executor.
    """
    prof = SamplingProfiler(interval_s=interval_s)
    prof.start()
    try:
        time.sleep(max(0.0, seconds))
    finally:
        prof.stop()
    return prof
