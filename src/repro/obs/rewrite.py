"""Structured optimizer tracing: which rules fired, and why (not).

The optimizer (:mod:`repro.graft.optimizer`) emits one
:class:`RewriteEvent` per rule it *considers* — fired, rejected by the
Table-1 validity matrix, disabled by options, or matched nothing — so a
plan's provenance is machine-readable instead of a bare list of applied
names.  Cost-model estimates (:mod:`repro.graft.cost`) bracket each
event when an index is available, which is what lets a perf PR check
"this rewrite was predicted to help and did".
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RewriteEvent:
    """One optimizer decision about one rewrite rule.

    Attributes:
        rule: Rule name as listed in Table 1 / ``applied_optimizations``.
        allowed: Verdict of the validity gate for the active scheme.
        applied: Whether the rule actually changed (or confirmed) the
            plan; a rule can be allowed yet match nothing.
        verdict: Human-readable gate explanation — the Table-1
            requirement when rejected, ``"allowed"`` when passed,
            ``"disabled"`` when the options toggled it off.
        summary: What the rule did to the plan (rule-specific, from the
            rule module's ``rule_summary``); empty when not applied.
        cost_before: Estimated plan cost before the rule (None without
            an index).
        cost_after: Estimated plan cost after the rule (None without an
            index; equals ``cost_before`` when nothing changed).
    """

    rule: str
    allowed: bool
    applied: bool
    verdict: str = ""
    summary: str = ""
    cost_before: float | None = None
    cost_after: float | None = None

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "allowed": self.allowed,
            "applied": self.applied,
            "verdict": self.verdict,
            "summary": self.summary,
            "cost_before": self.cost_before,
            "cost_after": self.cost_after,
        }


def render_rewrite_log(events: list[RewriteEvent]) -> str:
    """Align a rewrite log for terminal display, one rule per line."""
    if not events:
        return "(no rewrite rules considered)"
    name_w = max(len(e.rule) for e in events)
    lines = []
    for e in events:
        status = "fired" if e.applied else ("allowed" if e.allowed else "gated")
        cost = ""
        if e.cost_before is not None and e.cost_after is not None:
            cost = f"  cost {e.cost_before:.0f} -> {e.cost_after:.0f}"
        detail = e.summary if e.applied else e.verdict
        detail = f"  ({detail})" if detail else ""
        lines.append(f"{e.rule.ljust(name_w)}  [{status}]{cost}{detail}")
    return "\n".join(lines)
