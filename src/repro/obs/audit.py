"""Shadow-execution score-consistency auditing.

The paper's central claim (Definition 1) is that every GRAFT rewrite is
*score-consistent*: the optimized plan returns the same matches and the
same scores as the canonical score-isolated plan.  The test suite proves
that offline; this module proves it *at runtime*.  On a configurable
sample of queries the engine re-executes the unoptimized canonical plan
(and, for small collections, the brute-force MCalc oracle) and diffs the
two rankings within a declared tolerance.  Any divergence becomes a
structured :class:`AuditEvent` naming the query, the rewrite rules that
fired (from the optimizer's :class:`repro.obs.rewrite.RewriteEvent`
log), and the first differing document — surfaced on
``SearchOutcome.audit``, counted in the metrics registry, and raisable
via ``audit_mode="strict"``.

The audit costs one extra canonical execution per sampled query, so it
is off by default (``audit_rate=0``) and the off path is guarded: an
engine without an audit config never constructs an auditor, and the per
-query cost is a single ``is None`` check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.errors import GraftError, ScoreConsistencyError

if TYPE_CHECKING:
    from repro.corpus.collection import DocumentCollection
    from repro.index.index import Index
    from repro.mcalc.ast import Query
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.rewrite import RewriteEvent
    from repro.sa.context import ScoringContext
    from repro.sa.scheme import ScoringScheme

#: Divergence kinds, in the order they are checked.
MISSING_DOC = "missing_doc"      # canonical found it, optimized did not
EXTRA_DOC = "extra_doc"          # optimized found it, canonical did not
SCORE_MISMATCH = "score_mismatch"


@dataclass(frozen=True)
class AuditConfig:
    """Auditing knobs (engine-level; see ``docs/OBSERVABILITY.md``).

    Attributes:
        rate: Fraction of queries to shadow-execute, in [0, 1].  The
            sampler is deterministic (an error accumulator), so
            ``rate=0.5`` audits exactly every other query — no RNG, no
            flaky CI.  0 disables auditing entirely.
        mode: ``"log"`` records divergences on the outcome and in the
            metrics registry; ``"strict"`` additionally raises
            :class:`repro.errors.ScoreConsistencyError`.
        tolerance: Per-document relative/absolute score tolerance.
        oracle_max_docs: Also diff against the brute-force MCalc oracle
            when the collection holds at most this many documents (the
            oracle is exponential; 0 disables the oracle leg).
    """

    rate: float = 1.0
    mode: str = "log"
    tolerance: float = 1e-7
    oracle_max_docs: int = 0

    def __post_init__(self):
        if not (0.0 <= self.rate <= 1.0):
            raise GraftError(
                f"audit rate must be within [0, 1], got {self.rate!r}"
            )
        if self.mode not in ("log", "strict"):
            raise GraftError(
                f"audit mode must be 'log' or 'strict', got {self.mode!r}"
            )
        if self.tolerance < 0:
            raise GraftError(
                f"audit tolerance must be >= 0, got {self.tolerance!r}"
            )


@dataclass(frozen=True)
class AuditEvent:
    """The outcome of auditing one query (pass or divergence).

    Attributes:
        query: The audited query, as shorthand text.
        scheme: Scoring scheme name.
        ok: True when every reference agreed within tolerance.
        reference: What the optimized results were diffed against —
            ``"canonical"`` or ``"canonical+oracle"``.
        checked: Number of reference documents compared.
        rules: Rewrite rules that fired for this plan (provenance).
        suspect_rules: Fired rules the Table-1 validity matrix rejects
            for this scheme — the prime suspects for a divergence (a
            correct optimizer never fires one; a broken rule that drops
            its gate shows up here by name).
        divergence: ``"missing_doc"``, ``"extra_doc"`` or
            ``"score_mismatch"``; None when ``ok``.
        doc_id: The first differing document (lowest id), or None.
        expected: Reference score for ``doc_id`` (None when the document
            is extra).
        got: Optimized score for ``doc_id`` (None when missing).
        tolerance: The tolerance the diff used.
    """

    query: str
    scheme: str
    ok: bool
    reference: str
    checked: int
    rules: tuple[str, ...] = ()
    suspect_rules: tuple[str, ...] = ()
    divergence: str | None = None
    doc_id: int | None = None
    expected: float | None = None
    got: float | None = None
    tolerance: float = 1e-7

    def to_dict(self) -> dict:
        """JSON-ready form (the ``audit`` field of the ``--json`` contract)."""
        return {
            "query": self.query,
            "scheme": self.scheme,
            "ok": self.ok,
            "reference": self.reference,
            "checked": self.checked,
            "rules": list(self.rules),
            "suspect_rules": list(self.suspect_rules),
            "divergence": self.divergence,
            "doc_id": self.doc_id,
            "expected": self.expected,
            "got": self.got,
            "tolerance": self.tolerance,
        }

    def describe(self) -> str:
        """One-line human rendering (CLI and strict-mode errors)."""
        if self.ok:
            return (
                f"audit ok: {self.checked} documents agree with "
                f"{self.reference} (scheme {self.scheme})"
            )
        blame = (
            f"; suspect rules: {', '.join(self.suspect_rules)}"
            if self.suspect_rules else
            f"; fired rules: {', '.join(self.rules) or 'none'}"
        )
        return (
            f"score-consistency violation on {self.query!r} "
            f"(scheme {self.scheme}, vs {self.reference}): "
            f"{self.divergence} at doc {self.doc_id} "
            f"(expected {self.expected!r}, got {self.got!r}, "
            f"tolerance {self.tolerance}){blame}"
        )


def _scores_close(got: float, want: float, tolerance: float) -> bool:
    """Relative-or-absolute closeness, mirroring the test suite's
    ``assert_same_ranking`` semantics."""
    return abs(got - want) <= max(tolerance, tolerance * abs(want))


def diff_rankings(
    got: Sequence[tuple[int, float]],
    want: Sequence[tuple[int, float]],
    tolerance: float,
) -> tuple[str, int, float | None, float | None] | None:
    """Diff two (doc_id, score) rankings as document -> score maps.

    Returns ``(kind, doc_id, expected, got)`` for the first divergence
    (lowest document id, missing before extra before mismatch), or None
    when the rankings agree within ``tolerance``.  Rank order itself is
    not compared: both executors sort by (-score, doc id), so equal
    score maps imply equal rankings up to exact ties.
    """
    got_map = dict(got)
    want_map = dict(want)
    missing = sorted(set(want_map) - set(got_map))
    if missing:
        doc = missing[0]
        return (MISSING_DOC, doc, want_map[doc], None)
    extra = sorted(set(got_map) - set(want_map))
    if extra:
        doc = extra[0]
        return (EXTRA_DOC, doc, None, got_map[doc])
    for doc in sorted(want_map):
        if not _scores_close(got_map[doc], want_map[doc], tolerance):
            return (SCORE_MISMATCH, doc, want_map[doc], got_map[doc])
    return None


def _suspect_rules(
    scheme: "ScoringScheme", fired: Sequence[str]
) -> tuple[str, ...]:
    """Fired rules the real Table-1 matrix forbids for this scheme.

    A rule name outside the matrix (e.g. the composite
    ``rank-join-topk`` path marker) is never a suspect by itself.
    """
    from repro.errors import OptimizationError
    from repro.graft.validity import optimization_allowed

    suspects = []
    for name in fired:
        # "join-reordering(cost)" and friends: strip the variant suffix.
        base = name.split("(", 1)[0]
        try:
            allowed = optimization_allowed(base, scheme.properties)
        except OptimizationError:
            continue
        if not allowed:
            suspects.append(name)
    return tuple(suspects)


def fired_rule_names(
    rewrite_log: Sequence["RewriteEvent"], applied: Sequence[str] = ()
) -> tuple[str, ...]:
    """The rules that actually changed the plan, preferring the
    structured rewrite log and falling back to the flat applied list
    (the rank-join path produces no rewrite log)."""
    if rewrite_log:
        return tuple(e.rule for e in rewrite_log if e.applied)
    return tuple(applied)


def shadow_audit(
    index: "Index",
    scheme: "ScoringScheme",
    query: "Query",
    got: Sequence[tuple[int, float]],
    *,
    ctx: "ScoringContext | None" = None,
    top_k: int | None = None,
    tolerance: float = 1e-7,
    rewrite_log: Sequence["RewriteEvent"] = (),
    applied: Sequence[str] = (),
    query_text: str = "",
    collection: "DocumentCollection | None" = None,
    oracle_max_docs: int = 0,
    registry: "MetricsRegistry | None" = None,
) -> AuditEvent:
    """Audit one query's optimized results against the canonical plan.

    Re-executes the unoptimized canonical score-isolated plan (same
    index, scheme, scoring context and ``top_k``) and diffs the two
    rankings; when ``collection`` is small enough the brute-force MCalc
    oracle is diffed too, closing the loop back to Definition 2.  The
    audit verdict is folded into ``registry`` (the process-wide default
    when None) and returned as an :class:`AuditEvent`.
    """
    from repro.exec.engine import execute, make_runtime
    from repro.graft.optimizer import Optimizer
    from repro.mcalc.unparse import unparse

    if not query_text:
        query_text = unparse(query)
    fired = fired_rule_names(rewrite_log, applied)
    canonical = Optimizer(scheme, index).canonical(query)
    runtime = make_runtime(index, scheme, canonical.info, ctx)
    want = execute(canonical.plan, runtime, top_k=top_k)

    reference = "canonical"
    checked = len(want)
    divergence = diff_rankings(got, want, tolerance)

    if (
        divergence is None
        and collection is not None
        and 0 < len(collection) <= oracle_max_docs
    ):
        from repro.sa.reference import rank_with_oracle

        oracle = rank_with_oracle(scheme, runtime.ctx, query, collection)
        if top_k is not None:
            oracle = oracle[:top_k]
        reference = "canonical+oracle"
        checked = max(checked, len(oracle))
        divergence = diff_rankings(got, oracle, tolerance)

    if divergence is None:
        event = AuditEvent(
            query=query_text,
            scheme=scheme.name,
            ok=True,
            reference=reference,
            checked=checked,
            rules=fired,
            tolerance=tolerance,
        )
    else:
        kind, doc, expected, got_score = divergence
        event = AuditEvent(
            query=query_text,
            scheme=scheme.name,
            ok=False,
            reference=reference,
            checked=checked,
            rules=fired,
            suspect_rules=_suspect_rules(scheme, fired),
            divergence=kind,
            doc_id=doc,
            expected=expected,
            got=got_score,
            tolerance=tolerance,
        )
    _count_audit(event, registry)
    return event


def _count_audit(event: AuditEvent, registry: "MetricsRegistry | None") -> None:
    from repro.obs.metrics import REGISTRY, audit_counters, audit_divergences

    reg = registry if registry is not None else REGISTRY
    result = "ok" if event.ok else "divergence"
    audit_counters(reg).labels(scheme=event.scheme, result=result).inc()
    if not event.ok:
        blamed = event.suspect_rules or event.rules or ("unattributed",)
        for rule in blamed:
            audit_divergences(reg).labels(rule=rule).inc()


class Auditor:
    """Per-engine audit state: the config plus the deterministic sampler.

    The sampler is an error accumulator: each query adds ``rate``; when
    the accumulator reaches 1 the query is audited and the accumulator
    keeps only the remainder.  ``rate=1.0`` audits every query,
    ``rate=0.25`` every fourth, with no randomness.
    """

    __slots__ = ("config", "_acc")

    def __init__(self, config: AuditConfig):
        self.config = config
        self._acc = 0.0

    def should_audit(self) -> bool:
        self._acc += self.config.rate
        if self._acc >= 1.0 - 1e-12:
            self._acc -= 1.0
            return True
        return False

    def raise_if_strict(self, event: AuditEvent) -> None:
        if self.config.mode == "strict" and not event.ok:
            raise ScoreConsistencyError(event.describe(), event=event)
