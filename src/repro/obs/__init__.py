"""Query observability: traces, optimizer logs, metrics, audits, qlog,
and request telemetry.

Six integrated layers (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.trace` — per-operator runtime statistics assembled
  into a trace tree mirroring the plan (``SearchOutcome.stats``,
  ``repro explain --analyze``, ``repro search --profile``);
* :mod:`repro.obs.rewrite` — the optimizer's structured rewrite log
  (``SearchOutcome.rewrite_log``, ``repro explain --trace-rules``);
* :mod:`repro.obs.metrics` — a dependency-free process-wide metrics
  registry with JSON and Prometheus-text export (``repro metrics``);
* :mod:`repro.obs.audit` — shadow-execution score-consistency auditing
  against the canonical plan and the MCalc oracle
  (``SearchOutcome.audit``, ``repro search --audit``);
* :mod:`repro.obs.qlog` — a structured, size-rotated JSONL query log
  with sampling and a slow-query override (``repro qlog tail|stats``);
* :mod:`repro.obs.telemetry` — request-scoped correlation ids, a
  monotonic-clock phase-span timeline, slow-request capture, and
  tail-latency attribution (``/debug/requests``, ``/debug/slow``,
  ``repro slow``), with :mod:`repro.obs.profile` supplying an opt-in
  stdlib sampling profiler (``/debug/profile``).

:mod:`repro.obs.analyze` renders the EXPLAIN ANALYZE view (actuals next
to cost-model estimates, misestimates flagged) and
:mod:`repro.obs.schema` validates emitted JSON against the checked-in
observability contract.
"""

# Submodules are imported lazily: the optimizer imports
# repro.obs.rewrite while repro.obs.trace imports the exec layer, and an
# eager package import would close that loop into a cycle.
_EXPORTS = {
    "AuditConfig": "audit",
    "AuditEvent": "audit",
    "Auditor": "audit",
    "diff_rankings": "audit",
    "shadow_audit": "audit",
    "QueryLog": "qlog",
    "log_stats": "qlog",
    "read_log": "qlog",
    "tail_records": "qlog",
    "MISESTIMATE_RATIO": "analyze",
    "annotate_estimates": "analyze",
    "misestimate_ratio": "analyze",
    "render_analyze": "analyze",
    "trace_totals": "analyze",
    "REGISTRY": "metrics",
    "Counter": "metrics",
    "Gauge": "metrics",
    "Histogram": "metrics",
    "MetricFamily": "metrics",
    "MetricsRegistry": "metrics",
    "record_execution_metrics": "metrics",
    "RewriteEvent": "rewrite",
    "render_rewrite_log": "rewrite",
    "SchemaError": "schema",
    "is_valid": "schema",
    "validate": "schema",
    "OpStats": "trace",
    "TracedOp": "trace",
    "TraceNode": "trace",
    "Tracer": "trace",
    "PHASES": "telemetry",
    "RequestTelemetry": "telemetry",
    "SlowRequestCapture": "telemetry",
    "RollingStats": "telemetry",
    "TelemetryHub": "telemetry",
    "new_request_id": "telemetry",
    "attribute_phases": "telemetry",
    "render_attribution": "telemetry",
    "SamplingProfiler": "profile",
    "sample_for": "profile",
}


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(f"repro.obs.{module}"), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "AuditConfig",
    "AuditEvent",
    "Auditor",
    "shadow_audit",
    "diff_rankings",
    "QueryLog",
    "read_log",
    "tail_records",
    "log_stats",
    "OpStats",
    "TraceNode",
    "TracedOp",
    "Tracer",
    "RewriteEvent",
    "render_rewrite_log",
    "render_analyze",
    "annotate_estimates",
    "misestimate_ratio",
    "trace_totals",
    "MISESTIMATE_RATIO",
    "MetricsRegistry",
    "MetricFamily",
    "Counter",
    "Gauge",
    "Histogram",
    "REGISTRY",
    "record_execution_metrics",
    "SchemaError",
    "validate",
    "is_valid",
    "PHASES",
    "RequestTelemetry",
    "SlowRequestCapture",
    "RollingStats",
    "TelemetryHub",
    "new_request_id",
    "attribute_phases",
    "render_attribution",
    "SamplingProfiler",
    "sample_for",
]
