"""Parallel sharded plan execution with a score-consistent top-k merge.

The driver takes one *logical* plan (optimized once, against the global
index, so every shard runs the exact plan serial execution would run),
compiles one *physical* plan per live shard — each scanning only its
shard's slice of the postings lists while scoring through the global
:class:`repro.sa.context.ScoringContext` — runs the shards on a
``ThreadPoolExecutor``, and heap-merges the per-shard ranked outputs.

Why the merge is exact (not approximate, unlike quantized WAND-style
distribution): shard doc ranges are disjoint and tile the collection,
and every per-document score is computed from *global* statistics
(see :mod:`repro.index.shard`), so the multiset of (doc, score) pairs
produced across shards equals the serial run's output exactly.  Each
shard returns its rows already ranked by ``(-score, doc_id)`` — the
engine's total order — and with per-shard ``top_k`` truncation the
global top k is always contained in the union of the per-shard top k's.
A k-way heap merge over the same key therefore reproduces the serial
ranking bit for bit.

Resource governance composes with sharding:

* ``deadline_ms`` is **shared**: one absolute deadline is computed when
  the query starts and installed into every shard's guard, so the whole
  query — not each shard — gets the wall-clock budget.
* ``max_rows`` is **split** across live shards (remainder to the first
  shards), keeping the total work bound within one shard-count of the
  serial bound.
* ``max_matches_per_doc`` is per-document and documents never span
  shards, so it passes through unchanged.

Failure semantics mirror the serial engine: with ``on_limit="partial"``
each tripped shard contributes the correctly-ranked prefix it scored
and the merged outcome is flagged degraded; with ``on_limit="error"``
(and for non-resource errors such as operator faults) the first failure
cancels the remaining shards via a shared cancellation token checked at
guard tick sites, and the original error propagates.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Iterable

from repro.errors import ResourceExhaustedError
from repro.exec.engine import execute
from repro.exec.iterator import ExecutionMetrics, Runtime
from repro.exec.limits import QueryGuard, QueryLimits
from repro.graft.canonical import QueryInfo
from repro.index.shard import ShardedIndex, ShardView
from repro.ma.nodes import AntiJoin, Atom, PlanNode, PreCountAtom, Union
from repro.obs.telemetry import current as _telemetry_current
from repro.obs.telemetry import maybe_span as _maybe_span
from repro.sa.context import ScoringContext
from repro.sa.scheme import ScoringScheme

if TYPE_CHECKING:
    from repro.obs.trace import TraceNode

#: Guard-trip name used when a sibling shard's failure cancels this one.
CANCELLED = "cancelled"


class ShardCancelledError(ResourceExhaustedError):
    """This shard was stopped because a sibling shard failed first."""


def required_keywords(plan: PlanNode) -> frozenset[str]:
    """Keywords every match of ``plan`` must contain.

    Drives partition pruning: a shard where any required keyword has no
    postings provably produces no output.  The recursion is conservative
    (never claims a keyword is required unless it is):

    * leaves require their own keyword;
    * a ``Union`` match may come from either branch, so only keywords
      required by *both* branches are required;
    * an ``AntiJoin`` emits left rows only — the right branch filters
      but never produces, so only the left side's requirements count;
    * every other operator's output documents are a subset of (for
      unary operators) or the intersection of (``Join``) its children's,
      so the union of the children's requirements is required.
    """
    if isinstance(plan, (Atom, PreCountAtom)):
        return frozenset((plan.keyword,))
    if isinstance(plan, Union):
        return required_keywords(plan.left) & required_keywords(plan.right)
    if isinstance(plan, AntiJoin):
        return required_keywords(plan.left)
    out: frozenset[str] = frozenset()
    for child in plan.children():
        out |= required_keywords(child)
    return out


class ShardGuard(QueryGuard):
    """A :class:`QueryGuard` for one shard of a parallel query.

    Differences from the serial guard:

    * the deadline is an **absolute** instant shared by all shards
      (``start()`` installs it instead of re-arming relative to now);
    * a shared cancellation token is checked at every deadline-check
      site, so a failing sibling stops this shard within one
      ``DEADLINE_CHECK_INTERVAL`` of charged rows;
    * the guard is always active — cancellation must be observed even
      for queries with no configured limits.
    """

    __slots__ = ("_deadline_at", "_cancel")

    def __init__(
        self,
        limits: QueryLimits | None = None,
        deadline_at: float | None = None,
        cancel: threading.Event | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        super().__init__(limits, clock)
        self._deadline_at = deadline_at
        self._cancel = cancel
        self.active = True
        if deadline_at is not None:
            self._deadline = deadline_at
        elif cancel is not None and self._deadline is None:
            # No deadline configured: install an unreachable one so the
            # periodic check sites still fire and observe cancellation.
            self._deadline = float("inf")

    def start(self) -> None:
        if self._deadline_at is not None:
            self._deadline = self._deadline_at

    def check_deadline(self) -> None:
        if self._cancel is not None and self._cancel.is_set():
            self._trip(
                CANCELLED,
                ShardCancelledError(
                    "shard cancelled after a sibling shard failed",
                    limit=CANCELLED,
                ),
            )
        super().check_deadline()


#: Builds one shard's guard; overridable for deterministic tests (e.g.
#: a fake clock that expires mid-query in exactly one shard).
GuardFactory = Callable[
    [int, QueryLimits | None, "float | None", threading.Event], QueryGuard
]


def _default_guard_factory(
    shard_index: int,
    limits: QueryLimits | None,
    deadline_at: float | None,
    cancel: threading.Event,
) -> QueryGuard:
    return ShardGuard(limits, deadline_at=deadline_at, cancel=cancel)


def split_limits(
    limits: QueryLimits | None, num_shards: int
) -> list[QueryLimits | None]:
    """Split a query budget across ``num_shards`` shard guards.

    ``max_rows`` is divided evenly (remainder spread over the first
    shards, never below one row); the deadline and the per-document cap
    pass through — the deadline becomes a shared absolute instant in
    :func:`execute_sharded` and documents never span shards.
    """
    if limits is None or limits.max_rows is None:
        return [limits] * num_shards
    base, rem = divmod(limits.max_rows, num_shards)
    return [
        replace(limits, max_rows=max(1, base + (1 if i < rem else 0)))
        for i in range(num_shards)
    ]


_RANK_KEY = lambda pair: (-pair[1], pair[0])  # noqa: E731


def merge_ranked(
    parts: Iterable[list[tuple[int, float]]], top_k: int | None = None
) -> list[tuple[int, float]]:
    """K-way merge of per-shard rankings into the engine's total order.

    Every input list is already sorted by ``(-score, doc_id)`` (the
    order :func:`repro.exec.engine.execute` returns), so a heap merge
    is O(N log S) and — because shard doc sets are disjoint — exactly
    equals sorting the concatenation.
    """
    merged = list(heapq.merge(*parts, key=_RANK_KEY))
    if top_k is not None:
        return merged[:top_k]
    return merged


@dataclass
class ShardRun:
    """What one shard's execution produced (for observability)."""

    shard_id: int
    lo: int
    hi: int
    rows: list[tuple[int, float]]
    wall_ms: float
    tripped: str | None
    trace: "TraceNode | None" = None


@dataclass
class ParallelResult:
    """Merged outcome of a sharded execution."""

    results: list[tuple[int, float]]
    metrics: ExecutionMetrics
    #: First tripped limit name across shards (shard order), or None.
    tripped: str | None
    shard_count: int
    shards_pruned: int
    shard_runs: list[ShardRun] = field(default_factory=list)
    #: Synthetic root holding one per-shard trace subtree (profiling).
    trace_root: "TraceNode | None" = None


def fold_metrics(
    into: ExecutionMetrics, metrics: ExecutionMetrics, rows_charged: int = 0
) -> ExecutionMetrics:
    """Fold one shard's work counters into the query-level total.

    Shared by the thread driver below and the process driver
    (:mod:`repro.exec.procpool`), whose shard metrics arrive pickled
    from worker processes instead of from in-process runtimes.
    """
    into.positions_scanned += metrics.positions_scanned
    into.doc_entries_scanned += metrics.doc_entries_scanned
    into.rows_grouped += metrics.rows_grouped
    into.rows_joined += metrics.rows_joined
    for kw, n in metrics.positions_by_keyword.items():
        into.positions_by_keyword[kw] = (
            into.positions_by_keyword.get(kw, 0) + n
        )
    into.rows_charged += rows_charged
    return into


def _merge_metrics(
    into: ExecutionMetrics, runtimes: list[Runtime]
) -> ExecutionMetrics:
    for rt in runtimes:
        fold_metrics(into, rt.metrics, rt.guard.rows_charged)
    return into


def execute_sharded(
    sharded: ShardedIndex,
    plan: PlanNode,
    scheme: ScoringScheme,
    info: QueryInfo,
    ctx: ScoringContext,
    top_k: int | None = None,
    limits: QueryLimits | None = None,
    profile: bool = False,
    max_workers: int | None = None,
    guard_factory: GuardFactory | None = None,
) -> ParallelResult:
    """Run one optimized plan across all shards and merge the rankings.

    ``ctx`` must be the *global* scoring context — passing a shard-local
    context would change idf-style weights and break the exact-merge
    guarantee (this is enforced by convention, not code: contexts do not
    know their index's extent).

    ``guard_factory`` is a test seam: it builds each shard's guard and
    defaults to :class:`ShardGuard` wired to the shared deadline and
    cancellation token.
    """
    from concurrent.futures import ThreadPoolExecutor

    required = required_keywords(plan)
    live = sharded.live_shards(required)
    pruned = sharded.num_shards - len(live)
    if not live:
        # Every shard was pruned: the result is provably empty, but the
        # observability contract still holds — profiling callers get the
        # (childless) merge root, the pruned count reaches the registry,
        # and the request records an (instant) "execute" phase.
        with _maybe_span(_telemetry_current(), "execute"):
            _record_shard_metrics([], pruned)
        return ParallelResult(
            results=[],
            metrics=ExecutionMetrics(),
            tripped=None,
            shard_count=sharded.num_shards,
            shards_pruned=pruned,
            trace_root=(
                _build_trace_root(0, sharded.num_shards, [], [])
                if profile else None
            ),
        )

    deadline_at: float | None = None
    if limits is not None and limits.deadline_ms is not None:
        deadline_at = time.monotonic() + limits.deadline_ms / 1000.0
    cancel = threading.Event()
    factory = guard_factory if guard_factory is not None else _default_guard_factory
    shard_limits = split_limits(limits, len(live))

    runtimes: list[Runtime] = []
    tracers = []
    for i, shard in enumerate(live):
        tracer = None
        if profile:
            from repro.obs.trace import Tracer

            tracer = Tracer()
        tracers.append(tracer)
        runtimes.append(
            Runtime(
                index=shard,  # type: ignore[arg-type]  # Index-shaped view
                ctx=ctx,
                scheme=scheme,
                info=info,
                guard=factory(i, shard_limits[i], deadline_at, cancel),
                tracer=tracer,
            )
        )

    def run_shard(i: int) -> ShardRun:
        shard = live[i]
        started = time.perf_counter()
        try:
            rows = execute(plan, runtimes[i], top_k=top_k)
        except BaseException:
            cancel.set()
            raise
        wall_ms = (time.perf_counter() - started) * 1000.0
        tracer = tracers[i]
        return ShardRun(
            shard_id=shard.shard_id,
            lo=shard.lo,
            hi=shard.hi,
            rows=rows,
            wall_ms=wall_ms,
            tripped=runtimes[i].guard.tripped,
            trace=tracer.root if tracer is not None else None,
        )

    workers = len(live) if max_workers is None else max(1, min(max_workers, len(live)))
    runs: list[ShardRun | None] = [None] * len(live)
    errors: list[tuple[int, BaseException]] = []
    # Request telemetry: shard workers run on pool threads that do not
    # inherit the caller's contextvars, so per-shard detail is recorded
    # here on the driving thread from the completed ShardRuns — the
    # "execute" phase covers the fan-out, "merge" the heap merge.
    rt = _telemetry_current()
    with _maybe_span(rt, "execute"):
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="graft-shard"
        ) as pool:
            futures = [pool.submit(run_shard, i) for i in range(len(live))]
            for i, fut in enumerate(futures):
                try:
                    runs[i] = fut.result()
                except BaseException as exc:  # re-raised below, in shard order
                    errors.append((i, exc))
    if errors:
        # Prefer the originating failure over secondary cancellations so
        # the caller sees the same exception serial execution would raise.
        for _, exc in errors:
            if not isinstance(exc, ShardCancelledError):
                raise exc
        raise errors[0][1]

    completed = [run for run in runs if run is not None]
    if rt is not None:
        for run in completed:
            rt.add_shard(
                run.shard_id, run.wall_ms,
                rows=len(run.rows), tripped=run.tripped is not None,
            )
    with _maybe_span(rt, "merge"):
        merged = merge_ranked([run.rows for run in completed], top_k=top_k)
    tripped = next(
        (run.tripped for run in completed if run.tripped is not None), None
    )
    metrics = _merge_metrics(ExecutionMetrics(), runtimes)

    trace_root = None
    if profile:
        trace_root = _build_trace_root(
            len(live), sharded.num_shards, merged, completed
        )

    _record_shard_metrics(completed, pruned)
    return ParallelResult(
        results=merged,
        metrics=metrics,
        tripped=tripped,
        shard_count=sharded.num_shards,
        shards_pruned=pruned,
        shard_runs=completed,
        trace_root=trace_root,
    )


def _build_trace_root(
    live_count: int,
    num_shards: int,
    merged: list,
    completed: list[ShardRun],
) -> "TraceNode":
    """The synthetic profiling root: one ``ShardExec`` child per shard run."""
    from repro.obs.trace import OpStats, TraceNode

    trace_root = TraceNode(
        label=f"parallel-merge[{live_count}/{num_shards} shards]",
        op_name="ParallelMerge",
    )
    trace_root.stats = OpStats(
        calls=1,
        docs_out=len(merged),
        rows_out=len(merged),
        time_ns=int(
            max((run.wall_ms for run in completed), default=0.0) * 1e6
        ),
    )
    for run in completed:
        if run.trace is None:
            continue
        shard_node = TraceNode(
            label=f"shard[{run.shard_id}: {run.lo}..{run.hi})",
            op_name="ShardExec",
            children=[run.trace],
        )
        shard_node.stats = OpStats(
            calls=1,
            docs_out=run.trace.stats.docs_out,
            rows_out=run.trace.stats.rows_out,
            time_ns=int(run.wall_ms * 1e6),
            tripped=run.tripped is not None,
        )
        trace_root.children.append(shard_node)
    return trace_root


def _record_shard_metrics(runs: list[ShardRun], pruned: int) -> None:
    """Fold per-shard wall times into the process-wide registry."""
    from repro.obs.metrics import (
        REGISTRY,
        shard_seconds,
        shards_executed,
        shards_pruned,
    )

    shards_executed(REGISTRY).child().inc(len(runs))
    if pruned:
        shards_pruned(REGISTRY).child().inc(pruned)
    hist = shard_seconds(REGISTRY).child()
    for run in runs:
        hist.observe(run.wall_ms / 1000.0)
