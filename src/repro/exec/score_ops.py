"""Physical operators hosting the Scoring Algebra (Section 4.3).

``ScoreInitOp`` hosts alpha (a generalized projection), ``CombinePhiOp``
hosts the conjunctive/disjunctive combinators, ``GroupScoreOp`` hosts the
alternate combinator (a group-by), and ``FinalizeOp`` hosts omega.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import ExecutionError
from repro.exec.iterator import (
    DocCursor,
    DocGroup,
    PhysicalOp,
    RowSchema,
    Runtime,
)
from repro.exec.misc_ops import UnaryLazyOp
from repro.mcalc.scoring_plan import fold_phi
from repro.sa.scheme import ScoringScheme


class ScoreInitOp(UnaryLazyOp):
    """Append ``alpha``-initialized score columns for the given variables.

    Alpha values are memoized per (variable, cell) within each document —
    in a cross product the same position reappears in many rows.  When the
    scheme defines a per-row positional adjustment (the Lucene proximity
    extension), it is applied to the adjusted variables' scores before
    anything aggregates them.

    ``scale_by_count`` selects the counts-incorporated discipline of
    eager-aggregation plans: fresh scores are alternate-multiplied by the
    row count so that every score column of a row aggregates exactly
    ``count`` match-table sub-rows.
    """

    def __init__(
        self,
        runtime: Runtime,
        child: PhysicalOp,
        vars: tuple[str, ...],
        scale_by_count: bool,
    ):
        super().__init__(runtime, child)
        self.vars = vars
        self.scale_by_count = scale_by_count
        base = child.schema
        self.schema = RowSchema(base.positions, base.scores + vars)
        self._cell_indices = tuple(base.position_index(v) for v in vars)
        self._count_index = base.count_index
        scheme = runtime.scheme
        self._has_adjust = (
            type(scheme).cell_adjust is not ScoringScheme.cell_adjust
        )
        if self._has_adjust:
            available = set(base.positions)
            self._adjust_preds = scheme.adjusting_predicates(tuple(
                p
                for p in runtime.info.predicates
                if set(p.vars) <= available
            ))
            self._all_cell_indices = tuple(
                base.position_index(v) for v in base.positions
            )
        else:
            self._adjust_preds = ()

    def transform(self, doc: int, rows: Iterator[tuple]) -> Iterator[tuple]:
        runtime = self.runtime
        scheme = runtime.scheme
        ctx = runtime.ctx
        keywords = runtime.info.var_keywords
        cache: dict[tuple[str, object], object] = {}
        ci = self._count_index

        for row in rows:
            count = row[ci]
            fresh = []
            for var, idx in zip(self.vars, self._cell_indices):
                cell = row[idx]
                key = (var, cell)
                score = cache.get(key)
                if score is None:
                    score = scheme.alpha(ctx, doc, var, keywords[var], cell)
                    cache[key] = score
                fresh.append(score)
            if self._has_adjust and self._adjust_preds:
                cells = {
                    v: row[i]
                    for v, i in zip(self.child.op.schema.positions, self._all_cell_indices)
                }
                factors = scheme.cell_adjust(ctx, doc, cells, self._adjust_preds)
                if factors:
                    for j, var in enumerate(self.vars):
                        f = factors.get(var)
                        if f is not None:
                            fresh[j] = fresh[j] * f
            if self.scale_by_count and count != 1:
                fresh = [scheme.times(s, count) for s in fresh]
            yield row + tuple(fresh)


class CombinePhiOp(UnaryLazyOp):
    """Fold the per-variable score columns of each row through the scoring
    plan Phi into a single ``s`` column; position columns are dropped."""

    def __init__(self, runtime: Runtime, child: PhysicalOp):
        super().__init__(runtime, child)
        base = child.schema
        self.schema = RowSchema(positions=(), scores=("s",))
        self._count_index = base.count_index
        self._score_index = {
            v: base.score_index(v) for v in base.scores
        }
        self._phi = runtime.info.phi
        missing = [v for v in self._phi_vars() if v not in self._score_index]
        if missing:
            raise ExecutionError(
                f"Phi references unscored variables {missing}; "
                f"available: {sorted(self._score_index)}"
            )

    def _phi_vars(self) -> list[str]:
        return list(self._phi.variables())

    def transform(self, doc: int, rows: Iterator[tuple]) -> Iterator[tuple]:
        scheme = self.runtime.scheme
        phi = self._phi
        idx = self._score_index
        ci = self._count_index
        for row in rows:
            s = fold_phi(
                phi,
                lambda v: row[idx[v]],
                scheme.conj,
                scheme.disj,
            )
            yield (row[ci], s)


class GroupScoreOp(PhysicalOp):
    """Group by document, alternate-folding every score column in row
    order; emits one row per document with multiplicity = total count.

    With counts pending (canonical-style plans), each row's score is
    expanded to its multiplicity before folding — via the scheme's
    constant-time ``times`` when the alternate combinator multiplies,
    otherwise by folding ``count`` copies (always valid, per Table 1's
    unrestricted eager counting).
    """

    def __init__(self, runtime: Runtime, child: PhysicalOp, counts_incorporated: bool):
        self.runtime = runtime
        self.child = DocCursor(child)
        self.counts_incorporated = counts_incorporated
        base = child.schema
        self.schema = RowSchema(positions=(), scores=base.scores)
        self._score_indices = tuple(
            base.score_index(v) for v in base.scores
        )
        self._count_index = base.count_index
        if not base.scores:
            raise ExecutionError("GroupScore requires score columns")

    def next_doc(self) -> DocGroup | None:
        scheme = self.runtime.scheme
        alt = scheme.alt
        times = scheme.times
        guard = self.runtime.guard
        governed = guard.active
        incorporated = self.counts_incorporated
        ci = self._count_index
        while True:
            if governed:
                guard.tick()
            doc = self.child.doc()
            if doc is None:
                return None
            acc: list | None = None
            total = 0
            n_rows = 0
            for row in self.child.rows():
                count = row[ci]
                total += count
                n_rows += 1
                scores = [row[i] for i in self._score_indices]
                if not incorporated and count != 1:
                    scores = [times(s, count) for s in scores]
                if acc is None:
                    acc = scores
                else:
                    acc = [alt(a, s) for a, s in zip(acc, scores)]
            self.child.advance()
            if acc is None:
                # Every row of the document was filtered out upstream.
                continue
            self.runtime.metrics.rows_grouped += n_rows
            return doc, iter((((total,) + tuple(acc)),))

    def seek_doc(self, doc_id: int) -> None:
        self.child.seek(doc_id)


class FinalizeOp(PhysicalOp):
    """Host omega: emit one (score,) row per document."""

    def __init__(self, runtime: Runtime, child: PhysicalOp):
        self.runtime = runtime
        self.child = DocCursor(child)
        base = child.schema
        if base.scores != ("s",):
            raise ExecutionError(
                f"Finalize expects a single combined score column 's', "
                f"got {base.scores}"
            )
        self.schema = RowSchema(positions=(), scores=("score",))
        self._s_index = base.score_index("s")

    def next_doc(self) -> DocGroup | None:
        scheme = self.runtime.scheme
        ctx = self.runtime.ctx
        guard = self.runtime.guard
        governed = guard.active
        while True:
            if governed:
                guard.tick()
            doc = self.child.doc()
            if doc is None:
                return None
            rows = list(self.child.rows())
            self.child.advance()
            if not rows:
                continue
            if len(rows) != 1:
                raise ExecutionError(
                    f"document {doc} reached Finalize with {len(rows)} rows; "
                    "plans must aggregate to one row per document"
                )
            score = scheme.omega(ctx, doc, rows[0][self._s_index])
            return doc, iter(((1, float(score)),))

    def seek_doc(self, doc_id: int) -> None:
        self.child.seek(doc_id)
