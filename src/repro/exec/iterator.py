"""Physical operator protocol, row schemas, cursors, and run-time state.

Row encoding
------------
A row is a flat tuple ``(cell_0, ..., cell_n, count, score_0, ..., score_m)``:

* cells are term positions (``int``), the empty symbol (``None``), or
  :data:`repro.ma.match_table.ANY_POSITION`;
* ``count`` is the row's multiplicity (eager counting / pre-counting);
* scores are the scheme's internal score values.

:class:`RowSchema` maps variable names to indices.  The document id is not
part of the row — it is the group key of the doc-group stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.errors import ExecutionError, GraftError
from repro.exec.limits import QueryGuard
from repro.graft.canonical import QueryInfo
from repro.index.index import Index
from repro.sa.context import ScoringContext
from repro.sa.scheme import ScoringScheme

if TYPE_CHECKING:
    from repro.exec.faults import FaultInjector
    from repro.obs.trace import Tracer

#: A doc group: (doc_id, iterator of rows).
DocGroup = tuple[int, Iterator[tuple]]


@dataclass(frozen=True)
class RowSchema:
    """Column layout of one operator's rows."""

    positions: tuple[str, ...]
    scores: tuple[str, ...] = ()

    @property
    def count_index(self) -> int:
        return len(self.positions)

    def position_index(self, var: str) -> int:
        try:
            return self.positions.index(var)
        except ValueError:
            raise ExecutionError(
                f"no position column {var!r}; have {self.positions}"
            ) from None

    def score_index(self, var: str) -> int:
        try:
            return len(self.positions) + 1 + self.scores.index(var)
        except ValueError:
            raise ExecutionError(
                f"no score column {var!r}; have {self.scores}"
            ) from None

    @property
    def width(self) -> int:
        return len(self.positions) + 1 + len(self.scores)


@dataclass
class ExecutionMetrics:
    """Work counters used by tests and benchmarks to verify *how much*
    index data a plan touched (e.g. the paper's Amdahl analysis of Q8)."""

    positions_scanned: int = 0
    doc_entries_scanned: int = 0
    positions_by_keyword: dict[str, int] = field(default_factory=dict)
    rows_grouped: int = 0
    rows_joined: int = 0
    #: Rows charged against the query's resource budget (0 when the query
    #: ran without limits; see :mod:`repro.exec.limits`).
    rows_charged: int = 0
    #: Name of the resource limit that tripped, or None.
    limit_tripped: str | None = None

    def count_positions(self, keyword: str, n: int = 1) -> None:
        self.positions_scanned += n
        self.positions_by_keyword[keyword] = (
            self.positions_by_keyword.get(keyword, 0) + n
        )

    def as_dict(self) -> dict:
        """JSON-ready form (the CLI's ``--json`` outputs embed it)."""
        return {
            "positions_scanned": self.positions_scanned,
            "doc_entries_scanned": self.doc_entries_scanned,
            "positions_by_keyword": dict(self.positions_by_keyword),
            "rows_grouped": self.rows_grouped,
            "rows_joined": self.rows_joined,
            "rows_charged": self.rows_charged,
            "limit_tripped": self.limit_tripped,
        }


@dataclass
class Runtime:
    """Shared execution state: the index, the scoring context, the scheme,
    the query info, work counters, the resource guard, and (optionally)
    a fault injector for robustness testing and an execution tracer for
    per-operator profiling (:mod:`repro.obs.trace`)."""

    index: Index
    ctx: ScoringContext
    scheme: ScoringScheme
    info: QueryInfo
    metrics: ExecutionMetrics = field(default_factory=ExecutionMetrics)
    guard: QueryGuard = field(default_factory=QueryGuard)
    faults: "FaultInjector | None" = None
    tracer: "Tracer | None" = None


class PhysicalOp:
    """Base physical operator (doc-group iterator).

    Contract: :meth:`next_doc` returns groups with strictly ascending doc
    ids, then ``None`` forever.  The rows iterator of a group is
    invalidated by the next ``next_doc``/``seek_doc`` call.  A group's
    rows iterator may be empty (e.g. all rows filtered); consumers must
    tolerate empty groups.  :meth:`seek_doc` discards any unconsumed
    current group and moves so the next group has doc >= the target.
    """

    schema: RowSchema

    def open(self) -> None:
        """Prepare for iteration (children are constructed open)."""

    def next_doc(self) -> DocGroup | None:
        raise NotImplementedError

    def seek_doc(self, doc_id: int) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (default: propagate to nothing)."""


def op_label(op: PhysicalOp) -> str:
    """Display name of a physical operator (fault wrappers masquerade as
    the operator they wrap via an ``op_name`` attribute)."""
    return getattr(op, "op_name", type(op).__name__)


def _innermost_op(exc: BaseException) -> str | None:
    """Name of the deepest physical operator on the exception's traceback
    (the operator closest to the fault), or None if no operator frame is
    present."""
    label = None
    tb = exc.__traceback__
    while tb is not None:
        self_obj = tb.tb_frame.f_locals.get("self")
        if isinstance(self_obj, PhysicalOp):
            label = op_label(self_obj)
        tb = tb.tb_next
    return label


def _boundary_error(stage: str, exc: Exception) -> ExecutionError:
    return ExecutionError(
        f"{type(exc).__name__} during {stage}: {exc}",
        operator=_innermost_op(exc),
    )


def pull_doc(op: PhysicalOp) -> DocGroup | None:
    """Pull the next doc group through the engine's error boundary.

    This is the *root* boundary: interior operators call each other
    directly (via :class:`DocCursor`) with no per-pull wrapping cost, and
    a raw failure anywhere in the tree propagates here, where the
    traceback is walked to attribute it to the operator closest to the
    fault.  Library errors (:class:`repro.errors.GraftError`, including
    resource trips) propagate untouched; anything else — a bug, a
    corrupted index, an injected fault — is wrapped in
    :class:`ExecutionError`, so callers never see a raw foreign
    traceback.
    """
    try:
        return op.next_doc()
    except GraftError:
        raise
    except Exception as exc:
        raise _boundary_error("next_doc", exc) from exc


def seek_op(op: PhysicalOp, doc_id: int) -> None:
    """Seek an operator through the same error boundary as :func:`pull_doc`."""
    try:
        op.seek_doc(doc_id)
    except GraftError:
        raise
    except Exception as exc:
        raise _boundary_error(f"seek_doc({doc_id})", exc) from exc


class DocCursor:
    """Peekable wrapper over a physical operator's doc-group stream.

    Pulls call the operator directly — the error boundary lives at the
    root of the tree (:func:`pull_doc` / :func:`seek_op`), which
    attributes failures to the innermost operator from the traceback, so
    the hot path pays nothing for it.
    """

    __slots__ = ("op", "_group")

    def __init__(self, op: PhysicalOp):
        self.op = op
        self._group: DocGroup | None = op.next_doc()

    def doc(self) -> int | None:
        """Current group's doc id, or None at end of stream."""
        return self._group[0] if self._group is not None else None

    def rows(self) -> Iterator[tuple]:
        if self._group is None:
            raise ExecutionError("cursor exhausted")
        return self._group[1]

    def advance(self) -> None:
        self._group = self.op.next_doc()

    def seek(self, doc_id: int) -> None:
        """Move to the first group with doc >= ``doc_id`` (no-op when
        already there)."""
        if self._group is not None and self._group[0] >= doc_id:
            return
        self.op.seek_doc(doc_id)
        self._group = self.op.next_doc()
