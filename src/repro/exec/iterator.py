"""Physical operator protocol, row schemas, cursors, and run-time state.

Row encoding
------------
A row is a flat tuple ``(cell_0, ..., cell_n, count, score_0, ..., score_m)``:

* cells are term positions (``int``), the empty symbol (``None``), or
  :data:`repro.ma.match_table.ANY_POSITION`;
* ``count`` is the row's multiplicity (eager counting / pre-counting);
* scores are the scheme's internal score values.

:class:`RowSchema` maps variable names to indices.  The document id is not
part of the row — it is the group key of the doc-group stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ExecutionError
from repro.graft.canonical import QueryInfo
from repro.index.index import Index
from repro.sa.context import ScoringContext
from repro.sa.scheme import ScoringScheme

#: A doc group: (doc_id, iterator of rows).
DocGroup = tuple[int, Iterator[tuple]]


@dataclass(frozen=True)
class RowSchema:
    """Column layout of one operator's rows."""

    positions: tuple[str, ...]
    scores: tuple[str, ...] = ()

    @property
    def count_index(self) -> int:
        return len(self.positions)

    def position_index(self, var: str) -> int:
        try:
            return self.positions.index(var)
        except ValueError:
            raise ExecutionError(
                f"no position column {var!r}; have {self.positions}"
            ) from None

    def score_index(self, var: str) -> int:
        try:
            return len(self.positions) + 1 + self.scores.index(var)
        except ValueError:
            raise ExecutionError(
                f"no score column {var!r}; have {self.scores}"
            ) from None

    @property
    def width(self) -> int:
        return len(self.positions) + 1 + len(self.scores)


@dataclass
class ExecutionMetrics:
    """Work counters used by tests and benchmarks to verify *how much*
    index data a plan touched (e.g. the paper's Amdahl analysis of Q8)."""

    positions_scanned: int = 0
    doc_entries_scanned: int = 0
    positions_by_keyword: dict[str, int] = field(default_factory=dict)
    rows_grouped: int = 0
    rows_joined: int = 0

    def count_positions(self, keyword: str, n: int = 1) -> None:
        self.positions_scanned += n
        self.positions_by_keyword[keyword] = (
            self.positions_by_keyword.get(keyword, 0) + n
        )


@dataclass
class Runtime:
    """Shared execution state: the index, the scoring context, the scheme,
    the query info, and work counters."""

    index: Index
    ctx: ScoringContext
    scheme: ScoringScheme
    info: QueryInfo
    metrics: ExecutionMetrics = field(default_factory=ExecutionMetrics)


class PhysicalOp:
    """Base physical operator (doc-group iterator).

    Contract: :meth:`next_doc` returns groups with strictly ascending doc
    ids, then ``None`` forever.  The rows iterator of a group is
    invalidated by the next ``next_doc``/``seek_doc`` call.  A group's
    rows iterator may be empty (e.g. all rows filtered); consumers must
    tolerate empty groups.  :meth:`seek_doc` discards any unconsumed
    current group and moves so the next group has doc >= the target.
    """

    schema: RowSchema

    def open(self) -> None:
        """Prepare for iteration (children are constructed open)."""

    def next_doc(self) -> DocGroup | None:
        raise NotImplementedError

    def seek_doc(self, doc_id: int) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (default: propagate to nothing)."""


class DocCursor:
    """Peekable wrapper over a physical operator's doc-group stream."""

    __slots__ = ("op", "_group")

    def __init__(self, op: PhysicalOp):
        self.op = op
        self._group: DocGroup | None = op.next_doc()

    def doc(self) -> int | None:
        """Current group's doc id, or None at end of stream."""
        return self._group[0] if self._group is not None else None

    def rows(self) -> Iterator[tuple]:
        if self._group is None:
            raise ExecutionError("cursor exhausted")
        return self._group[1]

    def advance(self) -> None:
        self._group = self.op.next_doc()

    def seek(self, doc_id: int) -> None:
        """Move to the first group with doc >= ``doc_id`` (no-op when
        already there)."""
        if self._group is not None and self._group[0] >= doc_id:
            return
        self.op.seek_doc(doc_id)
        self._group = self.op.next_doc()
