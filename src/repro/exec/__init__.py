"""Physical execution engine.

Plans execute document-at-a-time: every physical operator produces *doc
groups* — ``(doc_id, rows)`` with doc ids strictly ascending — and supports
seeking forward past documents.  Seeking is the engine's skip machinery:
zig-zag joins seek their inputs to each other's documents (Section 5.2.1),
and alternate elimination abandons a document's remaining rows and seeks
on (Section 5.2.3).  Rows within a group are produced lazily wherever
possible, so an abandoned group costs nothing beyond what was consumed.

Execution is resource-governed: see :mod:`repro.exec.limits` for query
deadlines, row budgets and per-document match caps, and
:mod:`repro.exec.faults` for the deterministic fault-injection harness
that proves the engine's error paths.
"""

from repro.exec.cache import CacheConfig
from repro.exec.engine import execute, execute_streaming
from repro.exec.faults import FaultInjector, FaultSpec, InjectedFault
from repro.exec.iterator import ExecutionMetrics, Runtime
from repro.exec.limits import QueryGuard, QueryLimits
from repro.exec.parallel import ParallelResult, execute_sharded

__all__ = [
    "execute",
    "execute_streaming",
    "execute_sharded",
    "ParallelResult",
    "Runtime",
    "ExecutionMetrics",
    "QueryGuard",
    "QueryLimits",
    "CacheConfig",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
]
