"""Resource governance for query execution.

Match-table evaluation has an O(W^Q) worst case (Section 6): a handful of
frequent keywords in one query can force the engine to enumerate an
astronomically large cross product.  A serving stack cannot run such
queries to completion, so every physical plan executes under a
:class:`QueryGuard` — a cooperative governor checked inside the
``next_doc`` loops of the physical operators.

Three limits are supported (all optional, see :class:`QueryLimits`):

* ``deadline_ms`` — wall-clock deadline for the whole execution;
* ``max_rows`` — budget on rows materialized/produced by operators
  (leaf positions scanned, join combinations emitted, rows grouped);
* ``max_matches_per_doc`` — cap on match rows produced within a single
  document, the unit that explodes under the O(W^Q) worst case.

On exhaustion the guard raises :class:`repro.errors.QueryTimeoutError`
(deadline) or :class:`repro.errors.ResourceExhaustedError` (budgets).
With ``on_limit="partial"`` the engine catches the trip at the execution
boundary and returns the correctly-ranked prefix of results produced so
far, flagged as degraded (see :meth:`repro.api.SearchEngine.search`).

Accounting is deliberately slightly eager — a leaf scan charges a
document's positions when the document group is opened, even if a skip
signal later abandons some rows — because governance needs an upper
bound on work, not the exact lazy billing the metrics report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.errors import GraftError, QueryTimeoutError, ResourceExhaustedError

_ON_LIMIT_MODES = ("error", "partial")


@dataclass(frozen=True)
class QueryLimits:
    """Per-query resource limits (all optional; ``None`` = unlimited).

    Attributes:
        deadline_ms: Wall-clock deadline in milliseconds, measured from
            the start of plan execution.
        max_rows: Budget on rows charged by physical operators across the
            whole query.
        max_matches_per_doc: Cap on match rows produced within a single
            document (the O(W^Q) blow-up unit).
        on_limit: ``"error"`` raises the trip out of the public API;
            ``"partial"`` makes the engine return the correctly-ranked
            prefix computed so far, flagged as degraded.
    """

    deadline_ms: float | None = None
    max_rows: int | None = None
    max_matches_per_doc: int | None = None
    on_limit: str = "error"

    def __post_init__(self):
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise GraftError(f"deadline_ms must be > 0, got {self.deadline_ms}")
        if self.max_rows is not None and self.max_rows < 1:
            raise GraftError(f"max_rows must be >= 1, got {self.max_rows}")
        if self.max_matches_per_doc is not None and self.max_matches_per_doc < 1:
            raise GraftError(
                f"max_matches_per_doc must be >= 1, got {self.max_matches_per_doc}"
            )
        if self.on_limit not in _ON_LIMIT_MODES:
            raise GraftError(
                f"on_limit must be one of {_ON_LIMIT_MODES}, got {self.on_limit!r}"
            )

    @property
    def unlimited(self) -> bool:
        return (
            self.deadline_ms is None
            and self.max_rows is None
            and self.max_matches_per_doc is None
        )


class QueryGuard:
    """Cooperative resource governor threaded through a physical plan.

    One guard instance governs one query execution; it lives on the
    :class:`repro.exec.iterator.Runtime` so every operator can reach it.
    Operators call :meth:`charge_rows` when they materialize or emit
    rows, :meth:`charge_doc_rows` when they emit match rows for a
    document, and :meth:`tick` at per-document loop boundaries.

    The wall clock is only consulted every ``DEADLINE_CHECK_INTERVAL``
    charged rows (plus at every per-document tick), keeping the guard's
    overhead on unrestricted queries to a branch per charge site.
    """

    DEADLINE_CHECK_INTERVAL = 256

    __slots__ = (
        "limits",
        "active",
        "rows_charged",
        "tripped",
        "deadline_checks",
        "_clock",
        "_deadline",
        "_max_rows",
        "_doc_cap",
        "_ticks",
        "_doc",
        "_doc_rows",
    )

    def __init__(
        self,
        limits: QueryLimits | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.limits = limits if limits is not None else QueryLimits()
        self.active = not self.limits.unlimited
        self.rows_charged = 0
        #: Name of the limit that tripped (``None`` while within budget).
        self.tripped: str | None = None
        #: Wall-clock consultations (profiling: how often the governor
        #: actually looked at the clock; see ``search --profile``).
        self.deadline_checks = 0
        self._clock = clock
        self._max_rows = self.limits.max_rows
        self._doc_cap = self.limits.max_matches_per_doc
        self._ticks = 0
        self._doc: int | None = None
        self._doc_rows = 0
        self._deadline: float | None = None
        if self.limits.deadline_ms is not None:
            self._deadline = clock() + self.limits.deadline_ms / 1000.0

    @property
    def on_limit(self) -> str:
        return self.limits.on_limit

    def start(self) -> None:
        """(Re-)arm the deadline relative to now.

        Called by the engine when plan execution begins, so time spent
        parsing and optimizing does not count against the deadline.
        """
        if self.limits.deadline_ms is not None:
            self._deadline = self._clock() + self.limits.deadline_ms / 1000.0

    # -- charge sites ------------------------------------------------------

    def charge_rows(self, n: int = 1) -> None:
        """Charge ``n`` materialized/produced rows against the budget."""
        self.rows_charged += n
        if self._max_rows is not None and self.rows_charged > self._max_rows:
            self._trip(
                "max_rows",
                ResourceExhaustedError(
                    f"row budget of {self._max_rows} exhausted "
                    f"({self.rows_charged} rows charged)",
                    limit="max_rows",
                ),
            )
        if self._deadline is not None:
            self._ticks += n
            if self._ticks >= self.DEADLINE_CHECK_INTERVAL:
                self._ticks = 0
                self.check_deadline()

    def charge_doc_rows(self, doc: int, n: int = 1) -> None:
        """Charge ``n`` match rows against the per-document cap."""
        if self._doc_cap is None:
            return
        if doc != self._doc:
            self._doc = doc
            self._doc_rows = 0
        self._doc_rows += n
        if self._doc_rows > self._doc_cap:
            self._trip(
                "max_matches_per_doc",
                ResourceExhaustedError(
                    f"document {doc} exceeded the cap of {self._doc_cap} "
                    "matches per document",
                    limit="max_matches_per_doc",
                ),
            )

    def tick(self, n: int = 1) -> None:
        """Cheap per-document heartbeat: deadline check every N ticks."""
        if self._deadline is None:
            return
        self._ticks += n
        if self._ticks >= self.DEADLINE_CHECK_INTERVAL:
            self._ticks = 0
            self.check_deadline()

    def check_deadline(self) -> None:
        """Consult the wall clock; trips when past the deadline."""
        if self._deadline is None:
            return
        self.deadline_checks += 1
        if self._clock() > self._deadline:
            self._trip(
                "deadline_ms",
                QueryTimeoutError(
                    f"query exceeded its deadline of "
                    f"{self.limits.deadline_ms:g} ms",
                    limit="deadline_ms",
                ),
            )

    def _trip(self, limit: str, exc: ResourceExhaustedError):
        self.tripped = limit
        raise exc
