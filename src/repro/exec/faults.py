"""Deterministic fault injection for the physical execution engine.

A serving stack must prove its error paths, not hope for them: every
physical operator has to surface failures as
:class:`repro.errors.ExecutionError` with operator context, and partial
degradation must never return a mis-ranked prefix.  This harness makes
those properties testable by planting *deterministic* faults inside the
operator tree.

A :class:`FaultInjector` is attached to the
:class:`repro.exec.iterator.Runtime`; during compilation
(:func:`repro.exec.compile.compile_plan`) every physical operator whose
class name matches a :class:`FaultSpec` is wrapped in a
:class:`FaultyOp`.  The wrapper raises a raw (non-Graft)
:class:`InjectedFault` either on the Nth call of a method
(``fail_at_call``, optionally drawn from a seeded RNG) or when a given
document id flows through (``fail_on_doc``).  The engine's error
boundaries (:func:`repro.exec.iterator.pull_doc`) then have to convert
the raw fault into a contextful :class:`ExecutionError` — which is
exactly what the robustness tests assert.

When no injector is attached, compilation does not wrap anything, so the
harness costs nothing in production.

Example::

    inj = FaultInjector([FaultSpec(op_name="MergeJoinOp", fail_at_call=2)])
    runtime = make_runtime(index, scheme, info, faults=inj)
    execute(plan, runtime)   # raises ExecutionError("[MergeJoinOp] ...")
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable

from repro.errors import GraftError
from repro.exec.iterator import DocGroup, PhysicalOp

_METHODS = ("next_doc", "seek_doc")


class InjectedFault(RuntimeError):
    """A raw, non-Graft failure planted by the harness.

    Deliberately *not* a :class:`repro.errors.GraftError`: it simulates
    an unexpected internal failure (index corruption, a scheme bug) that
    the engine must wrap before it reaches the caller.
    """


@dataclass
class FaultSpec:
    """Where and when one fault fires.

    Attributes:
        op_name: Physical operator class name to target (e.g.
            ``"MergeJoinOp"``); ``None`` targets every operator.
        method: ``"next_doc"`` or ``"seek_doc"``.
        fail_at_call: Fire on the Nth matching call (1-based), counted
            across all instances of the targeted operator class.  Leave
            ``None`` with an injector ``seed`` to have the harness draw N
            deterministically.
        fail_on_doc: Fire when this document id flows through the
            operator (the group about to be returned by ``next_doc``, or
            the target of ``seek_doc``).
        message: Text of the injected exception.
    """

    op_name: str | None = None
    method: str = "next_doc"
    fail_at_call: int | None = None
    fail_on_doc: int | None = None
    message: str = "injected fault"

    def __post_init__(self):
        if self.method not in _METHODS:
            raise GraftError(
                f"fault method must be one of {_METHODS}, got {self.method!r}"
            )


class FaultInjector:
    """Wraps physical operators with deterministic fault triggers.

    Args:
        specs: The faults to plant.  Specs with neither ``fail_at_call``
            nor ``fail_on_doc`` must be accompanied by ``seed``.
        seed: Seeds an RNG that draws ``fail_at_call`` in
            ``[1, max_call]`` for every unresolved spec — deterministic
            per seed, so a failing draw is reproducible from its seed.
        max_call: Upper bound of the seeded draw.
    """

    def __init__(
        self,
        specs: Iterable[FaultSpec] = (),
        seed: int | None = None,
        max_call: int = 16,
    ):
        self.specs = list(specs)
        self.seed = seed
        rng = random.Random(seed) if seed is not None else None
        for spec in self.specs:
            if spec.fail_at_call is None and spec.fail_on_doc is None:
                if rng is None:
                    raise GraftError(
                        "FaultSpec needs fail_at_call, fail_on_doc, or an "
                        "injector seed to draw the call index from"
                    )
                spec.fail_at_call = rng.randint(1, max_call)
        self._calls = [0] * len(self.specs)
        #: Operator class names seen during compilation (discovery aid
        #: for coverage tests: run once with no specs, read this).
        self.seen_ops: list[str] = []
        #: Human-readable log of every fault fired.
        self.fired: list[str] = []

    def wrap(self, op: PhysicalOp) -> PhysicalOp:
        """Wrap ``op`` if any spec targets it (records it either way)."""
        name = type(op).__name__
        self.seen_ops.append(name)
        indices = [
            i
            for i, spec in enumerate(self.specs)
            if spec.op_name is None or spec.op_name == name
        ]
        if not indices:
            return op
        return FaultyOp(op, self, tuple(indices))

    # -- trigger evaluation (called by FaultyOp) ---------------------------

    def before_call(self, indices: tuple[int, ...], method: str, op: str) -> None:
        for i in indices:
            spec = self.specs[i]
            if spec.method != method or spec.fail_at_call is None:
                continue
            self._calls[i] += 1
            if self._calls[i] == spec.fail_at_call:
                self._fire(spec, op, f"{method} call {self._calls[i]}")

    def on_doc(self, indices: tuple[int, ...], method: str, doc: int, op: str) -> None:
        for i in indices:
            spec = self.specs[i]
            if spec.method != method or spec.fail_on_doc is None:
                continue
            if doc == spec.fail_on_doc:
                self._fire(spec, op, f"{method} at doc {doc}")

    def _fire(self, spec: FaultSpec, op: str, where: str) -> None:
        detail = f"{spec.message} ({op}.{where})"
        self.fired.append(detail)
        raise InjectedFault(detail)


class FaultyOp(PhysicalOp):
    """Transparent operator wrapper that raises planted faults.

    Masquerades as the wrapped operator through ``op_name`` so error
    boundaries attribute the failure to the real operator, and exposes
    the wrapped schema unchanged.
    """

    def __init__(self, inner: PhysicalOp, injector: FaultInjector, indices: tuple[int, ...]):
        self.inner = inner
        self.schema = inner.schema
        self.op_name = type(inner).__name__
        self._injector = injector
        self._indices = indices

    def open(self) -> None:
        self.inner.open()

    def close(self) -> None:
        self.inner.close()

    def next_doc(self) -> DocGroup | None:
        inj = self._injector
        inj.before_call(self._indices, "next_doc", self.op_name)
        group = self.inner.next_doc()
        if group is not None:
            inj.on_doc(self._indices, "next_doc", group[0], self.op_name)
        return group

    def seek_doc(self, doc_id: int) -> None:
        inj = self._injector
        inj.before_call(self._indices, "seek_doc", self.op_name)
        inj.on_doc(self._indices, "seek_doc", doc_id, self.op_name)
        self.inner.seek_doc(doc_id)
