"""Process-parallel shard execution over a shared-memory packed index.

The thread driver (:mod:`repro.exec.parallel`) proved the sharded merge
bit-identical to serial, but CPython's GIL serializes its workers: on
this repo's own benchmark the thread path *anti-scales* (0.85x at two
shards).  This module runs the same shard plans on a
``ProcessPoolExecutor`` — real OS processes, no shared GIL — without
pickling the index:

1. :class:`SharedIndexPublication` copies one packed blob
   (:func:`repro.index.packed.pack_index`) into a
   ``multiprocessing.shared_memory`` segment.  The blob is sealed: a
   publication is created per index generation and never mutated.
2. Workers attach by name, wrap the buffer in a zero-copy
   :class:`repro.index.packed.PackedIndex`, and cache the attachment
   (plus a :class:`repro.index.shard.ShardedIndex` over it) in
   module-global worker state — every query after the first reuses the
   decoded postings.
3. :func:`execute_sharded_process` mirrors the thread driver: prune on
   the parent, split ``max_rows`` across live shards, ship each shard's
   ``(plan, scheme, info)`` (small, picklable), and heap-merge the
   ranked rows with the same ``(-score, doc_id)`` key.

Score consistency is inherited, not re-proved: workers score through an
:class:`repro.sa.context.IndexScoringContext` over the packed index,
whose statistics are global (they live in the blob), and shard doc
ranges are computed by the same integer arithmetic on both sides — so
the merged ranking is bit-identical to serial execution, which the
hypothesis suite and the strict audit gate assert over this path.

Differences from the thread driver, by necessity:

* **No cross-process cancellation token.**  The shared absolute
  deadline still bounds every worker, but a non-limit failure in one
  shard cannot interrupt siblings mid-plan — the parent cancels queued
  tasks and re-raises the first real error once running ones return.
* **No profiling.**  Trace trees are not worth pickling; the engine
  routes ``profile=True`` queries to the thread path.
* ``ResourceExhaustedError`` trips cross the process boundary as
  structured tuples so the ``limit`` attribute survives pickling.

Worker lifecycle is tied to the index generation that published the
blob: the engine builds one pool per sealed generation, and closing it
(hot swap, engine close, GC) shuts the workers down and unlinks the
segment — see docs/STORAGE.md.
"""

from __future__ import annotations

import os
import time
import weakref
from typing import TYPE_CHECKING

from repro.errors import (
    QueryTimeoutError,
    ResourceExhaustedError,
)
from repro.exec.engine import execute
from repro.exec.iterator import ExecutionMetrics, Runtime
from repro.exec.limits import QueryLimits
from repro.exec.parallel import (
    ParallelResult,
    ShardGuard,
    ShardRun,
    _record_shard_metrics,
    fold_metrics,
    merge_ranked,
    required_keywords,
    split_limits,
)
from repro.graft.canonical import QueryInfo
from repro.index.shard import ShardedIndex
from repro.obs.telemetry import current as _telemetry_current
from repro.obs.telemetry import maybe_span as _maybe_span
from repro.sa.scheme import ScoringScheme

if TYPE_CHECKING:
    from repro.ma.nodes import PlanNode


class ProcPoolUnavailableError(Exception):
    """Shared memory or worker processes could not be set up; callers
    fall back to the thread path (this never escapes the engine)."""


# -- publication --------------------------------------------------------------


class SharedIndexPublication:
    """One packed index blob published into a shared-memory segment.

    The segment outlives the parent's mapping until :meth:`close` both
    closes and unlinks it; workers that still hold attachments keep the
    memory alive (POSIX semantics) but the name disappears, so no new
    attachment can race a retiring generation.
    """

    def __init__(self, blob: bytes):
        try:
            from multiprocessing import shared_memory
        except ImportError as exc:  # pragma: no cover - platform-dependent
            raise ProcPoolUnavailableError(str(exc)) from exc
        try:
            self._shm = shared_memory.SharedMemory(
                create=True, size=max(1, len(blob))
            )
        except OSError as exc:
            raise ProcPoolUnavailableError(
                f"cannot create shared memory: {exc}"
            ) from exc
        self._shm.buf[: len(blob)] = blob
        self.name: str = self._shm.name
        self.size: int = len(blob)
        self._closed = False

    def close(self) -> None:
        """Close the parent mapping and unlink the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - best effort
            pass
        try:
            self._shm.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover
            pass


# -- worker side --------------------------------------------------------------

#: Per-worker attachment cache: shm name -> (shm, PackedIndex, ctx,
#: {num_shards: ShardedIndex}).  A pool serves exactly one publication,
#: so at most one entry is ever live; stale entries (a worker recycled
#: across pools in tests) are closed and dropped.
_WORKER_STATE: dict[str, tuple] = {}


def _attach(name: str, untrack: bool):
    state = _WORKER_STATE.get(name)
    if state is None:
        from multiprocessing import shared_memory

        from repro.index.packed import PackedIndex
        from repro.sa.context import IndexScoringContext

        shm = shared_memory.SharedMemory(name=name)
        if untrack:
            try:
                # Spawned workers run their own resource tracker, which
                # would unlink the parent's segment when this process
                # exits; the parent owns the lifetime, so drop the
                # attachment from tracking.  Forked workers share the
                # parent's tracker (one registration total) and must
                # NOT unregister, or the parent's own unlink double-
                # removes and the tracker logs a KeyError at exit.
                from multiprocessing import resource_tracker

                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker internals moved
                pass
        for stale_name, stale in list(_WORKER_STATE.items()):
            try:
                stale[0].close()
            except (OSError, BufferError):  # pragma: no cover
                pass
            del _WORKER_STATE[stale_name]
        index = PackedIndex(shm.buf, source=f"shm://{name}")
        state = (shm, index, IndexScoringContext(index), {})
        _WORKER_STATE[name] = state
    return state


def _shard_task(
    shm_name: str,
    untrack_shm: bool,
    num_shards: int,
    shard_id: int,
    plan: "PlanNode",
    scheme: ScoringScheme,
    info: QueryInfo,
    top_k: int | None,
    limits: QueryLimits | None,
    deadline_at: float | None,
):
    """Run one shard's plan inside a worker process.

    ``deadline_at`` is an absolute ``time.monotonic`` instant — on
    Linux ``CLOCK_MONOTONIC`` is system-wide, so the parent's deadline
    means the same thing here.  Returns a picklable tuple; limit trips
    under ``on_limit="error"`` come back structured so the ``limit``
    attribute survives the boundary.
    """
    _shm, index, ctx, sharded_cache = _attach(shm_name, untrack_shm)
    sharded = sharded_cache.get(num_shards)
    if sharded is None:
        sharded = ShardedIndex(index, num_shards)
        sharded_cache[num_shards] = sharded
    shard = sharded.shards[shard_id]
    guard = ShardGuard(limits, deadline_at=deadline_at)
    runtime = Runtime(
        index=shard,  # type: ignore[arg-type]  # Index-shaped view
        ctx=ctx,
        scheme=scheme,
        info=info,
        guard=guard,
    )
    started = time.perf_counter()
    try:
        rows = execute(plan, runtime, top_k=top_k)
    except ResourceExhaustedError as exc:
        return ("limit", type(exc).__name__, str(exc), exc.limit)
    wall_ms = (time.perf_counter() - started) * 1000.0
    run = ShardRun(
        shard_id=shard.shard_id,
        lo=shard.lo,
        hi=shard.hi,
        rows=rows,
        wall_ms=wall_ms,
        tripped=guard.tripped,
    )
    return ("ok", run, runtime.metrics, guard.rows_charged)


_LIMIT_ERRORS = {
    "ResourceExhaustedError": ResourceExhaustedError,
    "QueryTimeoutError": QueryTimeoutError,
}


# -- parent side --------------------------------------------------------------


class ProcessShardPool:
    """A worker pool bound to one published index generation.

    Owns the :class:`SharedIndexPublication` and a
    ``ProcessPoolExecutor`` whose workers attach to it.  ``close()`` is
    idempotent and also runs via a GC finalizer, so a pool abandoned
    with its engine never leaks worker processes or the segment.
    """

    def __init__(
        self,
        blob: bytes,
        num_shards: int,
        max_workers: int | None = None,
    ):
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        self.num_shards = num_shards
        workers = num_shards if max_workers is None else max(1, max_workers)
        self.publication = SharedIndexPublication(blob)
        try:
            # fork is markedly cheaper than spawn and inherits the
            # loaded modules; fall back to the platform default where
            # fork does not exist (the worker entry point is
            # module-level, so spawn works too).
            if "fork" in multiprocessing.get_all_start_methods():
                mp_ctx = multiprocessing.get_context("fork")
            else:  # pragma: no cover - non-POSIX
                mp_ctx = multiprocessing.get_context()
            self._start_method = mp_ctx.get_start_method()
            self._executor = ProcessPoolExecutor(
                max_workers=workers, mp_context=mp_ctx
            )
        except (OSError, ValueError, ImportError) as exc:
            self.publication.close()
            raise ProcPoolUnavailableError(
                f"cannot start worker processes: {exc}"
            ) from exc
        self._finalizer = weakref.finalize(
            self, _shutdown_pool, self._executor, self.publication
        )

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def close(self) -> None:
        """Shut workers down and unlink the shared segment."""
        self._finalizer()

    def submit(self, *args):
        return self._executor.submit(_shard_task, *args)


def _shutdown_pool(executor, publication) -> None:
    try:
        executor.shutdown(wait=False, cancel_futures=True)
    except (OSError, RuntimeError):  # pragma: no cover - best effort
        pass
    publication.close()


def execute_sharded_process(
    pool: ProcessShardPool,
    sharded: ShardedIndex,
    plan: "PlanNode",
    scheme: ScoringScheme,
    info: QueryInfo,
    top_k: int | None = None,
    limits: QueryLimits | None = None,
) -> ParallelResult:
    """Run one optimized plan across all shards on worker processes.

    ``sharded`` is the parent's sharded view of the same logical index
    (used for partition pruning — both sides cut shard ranges with the
    same arithmetic, so shard ids agree).  Raises
    :class:`ProcPoolUnavailableError` wrapping a submission failure
    when the plan or scheme cannot be pickled — the engine retries on
    the thread path.
    """
    if pool.num_shards != sharded.num_shards:
        raise ProcPoolUnavailableError(
            f"pool built for {pool.num_shards} shards, query wants "
            f"{sharded.num_shards}"
        )
    required = required_keywords(plan)
    live = sharded.live_shards(required)
    pruned = sharded.num_shards - len(live)
    if not live:
        # Every shard was pruned: the result is provably empty, but the
        # telemetry contract still holds — the request records an
        # (instant) "execute" phase covering the pruning decision.
        with _maybe_span(_telemetry_current(), "execute"):
            _record_shard_metrics([], pruned)
        return ParallelResult(
            results=[],
            metrics=ExecutionMetrics(),
            tripped=None,
            shard_count=sharded.num_shards,
            shards_pruned=pruned,
        )

    # Pre-flight the payload: ProcessPoolExecutor pickles work items on
    # a feeder thread, so an unpicklable plan/scheme/info would fail
    # *asynchronously* on the future — indistinguishable there from a
    # real worker error.  Pickling once up front turns it into the
    # deterministic fall-back-to-threads signal (payloads are small).
    import pickle

    try:
        pickle.dumps((plan, scheme, info))
    except Exception as exc:
        raise ProcPoolUnavailableError(
            f"cannot ship shard task to workers: {exc}"
        ) from exc

    deadline_at: float | None = None
    if limits is not None and limits.deadline_ms is not None:
        deadline_at = time.monotonic() + limits.deadline_ms / 1000.0
    shard_limits = split_limits(limits, len(live))

    rt = _telemetry_current()
    futures = []
    with _maybe_span(rt, "execute"):
        try:
            for i, shard in enumerate(live):
                futures.append(
                    pool.submit(
                        pool.publication.name,
                        pool._start_method != "fork",
                        sharded.num_shards,
                        shard.shard_id,
                        plan,
                        scheme,
                        info,
                        top_k,
                        shard_limits[i],
                        deadline_at,
                    )
                )
        except Exception as exc:
            # Unpicklable plan/scheme/info (or a dying pool): cancel
            # what was queued and let the engine fall back to threads.
            for fut in futures:
                fut.cancel()
            raise ProcPoolUnavailableError(
                f"cannot ship shard task to workers: {exc}"
            ) from exc

        from concurrent.futures import CancelledError

        completed: list[ShardRun] = []
        metrics = ExecutionMetrics()
        limit_trip: tuple | None = None
        errors: list[BaseException] = []
        for fut in futures:
            try:
                payload = fut.result()
            except CancelledError:
                # Cancelled after a sibling's failure or limit trip —
                # the cause is already recorded, not this future.
                continue
            except BaseException as exc:
                # First real failure wins; queued siblings are cancelled
                # (running ones finish — no cross-process cancel token).
                errors.append(exc)
                for pending in futures:
                    pending.cancel()
                continue
            if payload[0] == "limit":
                if limit_trip is None:
                    limit_trip = payload
                for pending in futures:
                    pending.cancel()
                continue
            _tag, run, shard_metrics, rows_charged = payload
            completed.append(run)
            fold_metrics(metrics, shard_metrics, rows_charged)
    if errors:
        raise errors[0]
    if limit_trip is not None:
        _tag, cls_name, message, limit = limit_trip
        raise _LIMIT_ERRORS.get(cls_name, ResourceExhaustedError)(
            message, limit=limit
        )

    if rt is not None:
        for run in completed:
            rt.add_shard(
                run.shard_id, run.wall_ms,
                rows=len(run.rows), tripped=run.tripped is not None,
            )
    with _maybe_span(rt, "merge"):
        merged = merge_ranked([run.rows for run in completed], top_k=top_k)
    tripped = next(
        (run.tripped for run in completed if run.tripped is not None), None
    )
    _record_shard_metrics(completed, pruned)
    from repro.obs.metrics import REGISTRY, proc_queries

    proc_queries(REGISTRY).child().inc()
    return ParallelResult(
        results=merged,
        metrics=metrics,
        tripped=tripped,
        shard_count=sharded.num_shards,
        shards_pruned=pruned,
        shard_runs=completed,
    )


def default_worker_count(num_shards: int) -> int:
    """Worker processes to start for ``num_shards`` shards: one per
    shard, but never more than the machine's schedulable cores (extra
    workers on a small box only add context switches)."""
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cores = os.cpu_count() or 1
    return max(1, min(num_shards, cores))
