"""The engine's two-tier query cache: plans, then whole results.

Tier 1 — the **plan cache** — memoizes the front half of a search
(parse → canonicalize → optimize), keyed by the exact query text, the
scheme name, the optimizer option toggles, and the index *generation*.
The generation matters even though a plan is "just" algebra: the
optimizer consults index statistics (join ordering is rarest-first, the
cost model prices leaves by document frequency), so a plan optimized
against generation N may be the wrong plan — though never a
score-inconsistent one — for generation N+1.  Keying on the generation
turns invalidation into a non-event: mutate the index and old entries
simply stop being reachable.

Tier 2 — the optional **result cache** — memoizes the entire ranked
outcome under the same key plus ``top_k``.  It is off by default
(capacity 0) because serving layers usually own result caching; when
on, the engine only consults it for plain searches (no limits, no
fault injection, no profiling, no auditing) so every observability and
robustness path still executes for real.

Both tiers are strict-LRU over an ``OrderedDict`` and count hits and
misses into :mod:`repro.obs.metrics`
(``graft_plan_cache_{hits,misses}_total``,
``graft_result_cache_{hits,misses}_total``).

The cache is **thread-safe**: the async query service
(:mod:`repro.serve`) runs searches on a thread pool, so concurrent
readers share one engine — and one cache — across threads, while a
generation bump (checkpoint, document add) rewrites every key they are
about to compute.  An ``OrderedDict`` mutated from two threads can
corrupt its internal linkage (``move_to_end`` during ``popitem``), so
every operation holds one short lock; the critical sections are a few
dict operations, far below the cost of the plan work being memoized.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

from repro.errors import GraftError


@dataclass(frozen=True)
class CacheConfig:
    """Capacities of the two cache tiers (entries, not bytes).

    ``plan_capacity=0`` disables plan caching; ``result_capacity=0``
    (the default) disables result caching.
    """

    plan_capacity: int = 256
    result_capacity: int = 0

    def __post_init__(self):
        for name in ("plan_capacity", "result_capacity"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise GraftError(
                    f"{name} must be a non-negative integer, got {value!r}"
                )

    @classmethod
    def off(cls) -> "CacheConfig":
        """Both tiers disabled (the CLI's ``--no-cache``)."""
        return cls(plan_capacity=0, result_capacity=0)


class LRUCache:
    """A minimal thread-safe strict-LRU map: get refreshes recency, put
    evicts the least recently used entry once past capacity."""

    __slots__ = ("capacity", "_data", "_lock", "hits", "misses")

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> Any | None:
        if self.capacity == 0:
            return None
        with self._lock:
            value = self._data.get(key)
            if value is None:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def stats(self) -> dict:
        """Capacity/size/hit/miss snapshot (JSON-ready), taken under the
        lock so size and counters are mutually consistent — the shape
        ``/status`` and ``/debug`` surfaces report per tier."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._data),
                "hits": self.hits,
                "misses": self.misses,
            }

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data
