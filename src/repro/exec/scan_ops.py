"""Leaf operators: the physical Atomic Match Factories.

:class:`AtomScanOp` scans the term-position index, paying one unit of work
per position it hands downstream (lazily: positions abandoned by a skip
signal are never billed).  :class:`PreCountScanOp` scans the term-document
index, paying one unit per document — the physical source of the
pre-counting speedup of Section 5.2.3.  :class:`ScoredPreCountScanOp` is
the fused eager-aggregation leaf.

Cursors bisect the substrate's ``doc_id_seq`` — a plain Python list for
object postings, a zero-copy buffer view for packed postings
(:mod:`repro.index.packed`).  Either way a seek happens once per
zig-zag probe and indexing yields Python ints, several times cheaper
per call than NumPy searchsorted at these access patterns.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.exec.iterator import DocGroup, PhysicalOp, RowSchema, Runtime
from repro.ma.match_table import ANY_POSITION

_EMPTY: list[int] = []


class AtomScanOp(PhysicalOp):
    """A(d, p, k): one row per occurrence of ``keyword``, doc-ordered."""

    def __init__(self, runtime: Runtime, var: str, keyword: str):
        self.runtime = runtime
        self.var = var
        self.keyword = keyword
        self.schema = RowSchema(positions=(var,))
        postings = runtime.index.postings(keyword)
        self._doc_ids = postings.doc_id_seq
        self._offsets = postings.offsets
        self._i = 0

    def next_doc(self) -> DocGroup | None:
        i = self._i
        if i >= len(self._doc_ids):
            return None
        doc = self._doc_ids[i]
        offsets = self._offsets[i]
        self._i = i + 1
        guard = self.runtime.guard
        if guard.active:
            # Budget accounting is eager per document: the group's
            # positions are charged up front even if a skip signal later
            # abandons some of them (metrics stay lazily billed).
            guard.charge_rows(len(offsets))
        return doc, self._rows(offsets)

    def _rows(self, offsets: tuple[int, ...]):
        metrics = self.runtime.metrics
        keyword = self.keyword
        for off in offsets:
            metrics.count_positions(keyword)
            yield (off, 1)

    def seek_doc(self, doc_id: int) -> None:
        self._i = bisect_left(self._doc_ids, doc_id, self._i)


class PreCountScanOp(PhysicalOp):
    """CA(d, p, k): one row per document containing ``keyword``, with the
    position forgotten and the row multiplicity set to #INDOC."""

    def __init__(self, runtime: Runtime, var: str, keyword: str):
        self.runtime = runtime
        self.var = var
        self.keyword = keyword
        self.schema = RowSchema(positions=(var,))
        postings = runtime.index.doc_terms.get(keyword)
        if postings is None:
            self._doc_ids = _EMPTY
            self._counts = _EMPTY
        else:
            self._doc_ids = postings.doc_id_seq
            self._counts = postings.count_seq
        self._i = 0

    def next_doc(self) -> DocGroup | None:
        i = self._i
        if i >= len(self._doc_ids):
            return None
        doc = self._doc_ids[i]
        count = self._counts[i]
        self._i = i + 1
        self.runtime.metrics.doc_entries_scanned += 1
        guard = self.runtime.guard
        if guard.active:
            guard.charge_rows()
        return doc, iter(((ANY_POSITION, count),))

    def seek_doc(self, doc_id: int) -> None:
        self._i = bisect_left(self._doc_ids, doc_id, self._i)


class ScoredPreCountScanOp(PhysicalOp):
    """Fusion of ``GroupScore(ScoreInit(CA))`` into one scan.

    In eager-aggregation plans every pre-counted leaf is immediately
    alpha-initialized and aggregated — but a pre-counted leaf already has
    one row per document, so the aggregate is just ``times(alpha, tf)``.
    Fusing the three operators removes two cursor layers per leaf (a
    physical-level rewrite; the logical plan is unchanged).
    """

    def __init__(self, runtime: Runtime, var: str, keyword: str):
        self.runtime = runtime
        self.var = var
        self.keyword = keyword
        self.schema = RowSchema(positions=(), scores=(var,))
        postings = runtime.index.doc_terms.get(keyword)
        if postings is None:
            self._doc_ids = _EMPTY
            self._counts = _EMPTY
        else:
            self._doc_ids = postings.doc_id_seq
            self._counts = postings.count_seq
        self._i = 0

    def next_doc(self) -> DocGroup | None:
        i = self._i
        if i >= len(self._doc_ids):
            return None
        doc = self._doc_ids[i]
        count = self._counts[i]
        self._i = i + 1
        runtime = self.runtime
        runtime.metrics.doc_entries_scanned += 1
        if runtime.guard.active:
            runtime.guard.charge_rows()
        scheme = runtime.scheme
        score = scheme.alpha(
            runtime.ctx, doc, self.var, self.keyword, ANY_POSITION
        )
        if count != 1:
            score = scheme.times(score, count)
        return doc, iter(((count, score),))

    def seek_doc(self, doc_id: int) -> None:
        self._i = bisect_left(self._doc_ids, doc_id, self._i)
