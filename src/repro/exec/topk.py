"""Rank-join / rank-union top-k evaluation (Section 5.2.1).

"Top-k optimizations speed up query execution by first exploring the
documents that show the highest potential for a high score, and avoiding
further exploration of lower scoring documents once the top-K are
established."  We implement the relational rank-join of Ilyas et al.
(HRJN): two score-descending streams are hash-joined with a threshold on
the best still-possible combined score; a rank-union counterpart hosts the
disjunctive combinator.

Applicability (Table 1): the hosted combinator must be monotonically
increasing and the scheme diagonal.  Our streaming construction derives
each keyword's per-document column score independently of the other
keywords, which additionally requires an idempotent alternate combinator
(so the column score does not depend on the cross-product multiplicity
contributed by the other streams); the gate in :func:`rank_join_applicable`
includes it, a restriction recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterator

from repro.errors import GraftError, OptimizationError, ResourceExhaustedError
from repro.exec.limits import QueryGuard
from repro.graft.validity import optimization_allowed
from repro.index.index import Index
from repro.mcalc.ast import And, Has, Or, Query
from repro.sa.context import IndexScoringContext, ScoringContext
from repro.sa.scheme import ScoringScheme

#: A rank stream: (score, doc) pairs in descending score order.
RankStream = Iterator[tuple[float, int]]


def rank_join_applicable(query: Query, scheme: ScoringScheme) -> bool:
    """May this (query, scheme) pair run on the rank-join top-k path?"""
    props = scheme.properties
    if not (props.diagonal and props.alt_idempotent):
        return False
    structure = _structure(query)
    if structure is None:
        return False
    kind, _ = structure
    if kind == "conj":
        return optimization_allowed("rank-join", props)
    return optimization_allowed("rank-union", props)


def _structure(query: Query) -> tuple[str, list[str]] | None:
    """A flat conjunction or flat disjunction of keywords, else None.

    Full-text predicates force position-level evaluation, which the
    column-score streams cannot provide.
    """
    if query.predicates():
        return None
    # The user-written tree: safe-range padding wraps disjunct branches
    # with EMPTY markers that are irrelevant here.
    f = query.source_formula
    if isinstance(f, Has):
        return ("conj", [f.var])
    if isinstance(f, (And, Or)):
        vars_: list[str] = []
        for op in f.operands:
            if not isinstance(op, Has):
                return None
            vars_.append(op.var)
        return ("conj" if isinstance(f, And) else "disj", vars_)
    return None


def _column_stream(
    index: Index,
    ctx: ScoringContext,
    scheme: ScoringScheme,
    var: str,
    keyword: str,
    guard: QueryGuard | None = None,
) -> list[tuple[float, int]]:
    """Per-document column scores for one keyword, descending.

    With an idempotent alternate combinator the column score of a document
    is simply alpha of any occurrence, whatever the multiplicity.
    """
    postings = index.postings(keyword)
    scored = []
    governed = guard is not None and guard.active
    for i in range(len(postings.doc_ids)):
        doc = int(postings.doc_ids[i])
        offset = postings.offsets[i][0]
        s = scheme.alpha(ctx, doc, var, keyword, offset)
        if governed:
            guard.charge_rows()
        scored.append((float(s), doc))
    scored.sort(key=lambda t: (-t[0], t[1]))
    return scored


class _HRJN:
    """Binary hash rank join producing a descending (score, doc) stream."""

    def __init__(
        self,
        left: list[tuple[float, int]],
        right: list[tuple[float, int]],
        combine: Callable[[float, float], float],
    ):
        self.left = left
        self.right = right
        self.combine = combine
        self.docs_pulled = 0

    def __iter__(self) -> RankStream:
        combine = self.combine
        seen_l: dict[int, float] = {}
        seen_r: dict[int, float] = {}
        top_l = self.left[0][0] if self.left else None
        top_r = self.right[0][0] if self.right else None
        if top_l is None or top_r is None:
            return
        buffer: list[tuple[float, int]] = []  # max-heap via negation
        i = j = 0
        last_l, last_r = top_l, top_r
        n, m = len(self.left), len(self.right)
        while i < n or j < m:
            # Pull from the stream with the higher head (HRJN strategy).
            pull_left = j >= m or (i < n and self.left[i][0] >= self.right[j][0])
            if pull_left:
                s, d = self.left[i]
                i += 1
                last_l = s
                seen_l[d] = s
                other = seen_r.get(d)
            else:
                s, d = self.right[j]
                j += 1
                last_r = s
                seen_r[d] = s
                other = seen_l.get(d)
            self.docs_pulled += 1
            if other is not None:
                total = combine(s, other) if pull_left else combine(other, s)
                heapq.heappush(buffer, (-total, d))
            threshold = max(combine(last_l, top_r), combine(top_l, last_r))
            while buffer and -buffer[0][0] >= threshold:
                neg, d = heapq.heappop(buffer)
                yield (-neg, d)
        while buffer:
            neg, d = heapq.heappop(buffer)
            yield (-neg, d)


class _RankUnion:
    """Binary rank union: every doc of either stream, combined score.

    A document absent from one stream contributes that stream's
    empty-cell score (alpha of the empty symbol).
    """

    def __init__(
        self,
        left: list[tuple[float, int]],
        right: list[tuple[float, int]],
        combine: Callable[[float, float], float],
        empty_left: Callable[[int], float],
        empty_right: Callable[[int], float],
    ):
        self.left = dict((d, s) for s, d in left)
        self.right = dict((d, s) for s, d in right)
        self.combine = combine
        self.empty_left = empty_left
        self.empty_right = empty_right

    def __iter__(self) -> RankStream:
        docs = set(self.left) | set(self.right)
        out = []
        for d in docs:
            sl = self.left.get(d)
            if sl is None:
                sl = self.empty_left(d)
            sr = self.right.get(d)
            if sr is None:
                sr = self.empty_right(d)
            out.append((self.combine(sl, sr), d))
        out.sort(key=lambda t: (-t[0], t[1]))
        yield from out


def rank_topk(
    query: Query,
    scheme: ScoringScheme,
    index: Index,
    k: int,
    ctx: ScoringContext | None = None,
    guard: QueryGuard | None = None,
) -> list[tuple[int, float]]:
    """Top-k (doc, score) results via rank join / rank union.

    ``guard`` subjects the evaluation to the same resource governance as
    plan execution; with ``on_limit="partial"`` a tripped limit returns
    the (correctly ranked, possibly empty) results accumulated so far.

    Raises:
        OptimizationError: when the (query, scheme) pair does not qualify
            (use :func:`rank_join_applicable` to pre-check).
    """
    if not rank_join_applicable(query, scheme):
        raise OptimizationError(
            "rank join requires a diagonal scheme with monotone combinators "
            "and an idempotent alternate combinator, on a predicate-free "
            "flat query"
        )
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        raise GraftError(f"top_k must be a positive integer, got {k!r}")
    if ctx is None:
        ctx = IndexScoringContext(index)
    if guard is not None:
        guard.start()
    governed = guard is not None and guard.active
    kind, vars_ = _structure(query)
    results: list[tuple[int, float]] = []
    try:
        streams = [
            _column_stream(index, ctx, scheme, v, query.var_keywords[v], guard)
            for v in vars_
        ]
        if kind == "conj":
            acc = streams[0]
            for nxt in streams[1:]:
                acc_list = []
                for pair in _HRJN(acc, nxt, scheme.conj):
                    if governed:
                        guard.tick()
                    acc_list.append(pair)
                    # Inner joins must run to completion to stay exact when
                    # composed; only the outermost level stops at k.
                acc = acc_list
            combined = acc
        else:
            def empty_for(var: str) -> Callable[[int], float]:
                keyword = query.var_keywords[var]

                def value(doc: int) -> float:
                    return float(scheme.alpha(ctx, doc, var, keyword, None))

                return value

            acc = streams[0]
            acc_empty = empty_for(vars_[0])
            for var, nxt in zip(vars_[1:], streams[1:]):
                union = _RankUnion(
                    acc, nxt, scheme.disj, acc_empty, empty_for(var)
                )
                merged = []
                for pair in union:
                    if governed:
                        guard.tick()
                    merged.append(pair)
                prev_empty, next_empty = acc_empty, empty_for(var)

                def combined_empty(doc: int, p=prev_empty, q=next_empty) -> float:
                    return scheme.disj(p(doc), q(doc))

                acc, acc_empty = merged, combined_empty
            combined = acc

        for score, doc in combined:
            results.append((doc, scheme.omega(ctx, doc, score)))
            if len(results) >= k:
                break
    except ResourceExhaustedError:
        if guard is None or guard.on_limit != "partial":
            raise
    results.sort(key=lambda r: (-r[1], r[0]))
    return results[:k]
