"""Compilation of logical GRAFT plans into physical operator trees."""

from __future__ import annotations

from repro.errors import GraftError, PlanError
from repro.exec.iterator import PhysicalOp, Runtime, _boundary_error
from repro.exec.join_ops import ForwardScanJoinOp, MergeJoinOp
from repro.exec.misc_ops import (
    AlternateElimOp,
    AntiJoinOp,
    CountOp,
    ForgetOp,
    SelectOp,
    SortOp,
)
from repro.exec.scan_ops import (
    AtomScanOp,
    PreCountScanOp,
    ScoredPreCountScanOp,
)
from repro.exec.score_ops import (
    CombinePhiOp,
    FinalizeOp,
    GroupScoreOp,
    ScoreInitOp,
)
from repro.exec.union_ops import UnionOp
from repro.graft.plan import (
    AlternateElim,
    CombinePhi,
    Finalize,
    GroupScore,
    ScoreInit,
)
from repro.ma.nodes import (
    AntiJoin,
    Atom,
    GroupCount,
    Join,
    PlanNode,
    PositionProject,
    PreCountAtom,
    Select,
    Sort,
    Union,
)


def compile_plan(node: PlanNode, runtime: Runtime) -> PhysicalOp:
    """Recursively build the physical operator for a logical plan node.

    One physical-level fusion applies: the eager-aggregation leaf pattern
    ``GroupScore(ScoreInit(PreCountAtom))`` compiles to a single fused
    scan (see :class:`repro.exec.scan_ops.ScoredPreCountScanOp`).

    When the runtime carries a :class:`repro.exec.faults.FaultInjector`,
    every compiled operator is passed through it, planting any matching
    deterministic faults; without one, operators compile unwrapped.

    When the runtime carries a :class:`repro.obs.trace.Tracer`, every
    operator is additionally wrapped in a recording
    :class:`repro.obs.trace.TracedOp`, and the tracer's enter/exit stack
    mirrors this compilation recursion into a trace tree shaped like the
    logical plan (fused operators trace as one node).  Without a tracer,
    compilation produces the exact untraced tree.
    """
    tracer = runtime.tracer
    if tracer is None:
        op = _compile_node(node, runtime)
        if runtime.faults is not None:
            op = runtime.faults.wrap(op)
        return op
    trace_node = tracer.enter(node)
    try:
        op = _compile_node(node, runtime)
    finally:
        tracer.exit(trace_node)
    if runtime.faults is not None:
        op = runtime.faults.wrap(op)
    return tracer.wrap(op, trace_node)


def compile_op(plan: PlanNode, runtime: Runtime) -> PhysicalOp:
    """Compile a plan root behind the engine's error boundary.

    Operator construction primes cursors (pulling the leaves' first doc
    groups), so a raw failure can already happen here; execution entry
    points use this wrapper so such failures surface as
    :class:`repro.errors.ExecutionError` attributed to the operator
    closest to the fault, exactly like failures during the pull loop.
    """
    try:
        return compile_plan(plan, runtime)
    except GraftError:
        raise
    except Exception as exc:
        raise _boundary_error("operator construction", exc) from exc


def _compile_node(node: PlanNode, runtime: Runtime) -> PhysicalOp:
    if (
        isinstance(node, GroupScore)
        and node.counts_incorporated
        and isinstance(node.child, ScoreInit)
        and node.child.scale_by_count
        and isinstance(node.child.child, PreCountAtom)
        and node.child.vars == (node.child.child.var,)
    ):
        leaf = node.child.child
        return ScoredPreCountScanOp(runtime, leaf.var, leaf.keyword)
    if isinstance(node, Atom):
        return AtomScanOp(runtime, node.var, node.keyword)
    if isinstance(node, PreCountAtom):
        return PreCountScanOp(runtime, node.var, node.keyword)
    if isinstance(node, PositionProject):
        return ForgetOp(runtime, compile_plan(node.child, runtime), node.vars)
    if isinstance(node, GroupCount):
        return CountOp(runtime, compile_plan(node.child, runtime))
    if isinstance(node, Join):
        left = compile_plan(node.left, runtime)
        right = compile_plan(node.right, runtime)
        if node.algorithm == "merge":
            return MergeJoinOp(runtime, left, right, node.predicates)
        if node.algorithm == "forward":
            return ForwardScanJoinOp(runtime, left, right, node.predicates)
        raise PlanError(f"unknown join algorithm {node.algorithm!r}")
    if isinstance(node, Union):
        return UnionOp(
            runtime,
            compile_plan(node.left, runtime),
            compile_plan(node.right, runtime),
        )
    if isinstance(node, Select):
        return SelectOp(runtime, compile_plan(node.child, runtime), node.predicates)
    if isinstance(node, Sort):
        return SortOp(runtime, compile_plan(node.child, runtime), node.sort_vars)
    if isinstance(node, AntiJoin):
        return AntiJoinOp(
            runtime,
            compile_plan(node.left, runtime),
            compile_plan(node.right, runtime),
        )
    if isinstance(node, ScoreInit):
        return ScoreInitOp(
            runtime,
            compile_plan(node.child, runtime),
            node.vars,
            node.scale_by_count,
        )
    if isinstance(node, CombinePhi):
        return CombinePhiOp(runtime, compile_plan(node.child, runtime))
    if isinstance(node, GroupScore):
        return GroupScoreOp(
            runtime, compile_plan(node.child, runtime), node.counts_incorporated
        )
    if isinstance(node, Finalize):
        return FinalizeOp(runtime, compile_plan(node.child, runtime))
    if isinstance(node, AlternateElim):
        return AlternateElimOp(runtime, compile_plan(node.child, runtime))
    raise PlanError(f"cannot compile plan node {type(node).__name__}")
