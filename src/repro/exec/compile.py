"""Compilation of logical GRAFT plans into physical operator trees."""

from __future__ import annotations

from repro.errors import PlanError
from repro.exec.iterator import PhysicalOp, Runtime
from repro.exec.join_ops import ForwardScanJoinOp, MergeJoinOp
from repro.exec.misc_ops import (
    AlternateElimOp,
    AntiJoinOp,
    CountOp,
    ForgetOp,
    SelectOp,
    SortOp,
)
from repro.exec.scan_ops import (
    AtomScanOp,
    PreCountScanOp,
    ScoredPreCountScanOp,
)
from repro.exec.score_ops import (
    CombinePhiOp,
    FinalizeOp,
    GroupScoreOp,
    ScoreInitOp,
)
from repro.exec.union_ops import UnionOp
from repro.graft.plan import (
    AlternateElim,
    CombinePhi,
    Finalize,
    GroupScore,
    ScoreInit,
)
from repro.ma.nodes import (
    AntiJoin,
    Atom,
    GroupCount,
    Join,
    PlanNode,
    PositionProject,
    PreCountAtom,
    Select,
    Sort,
    Union,
)


def compile_plan(node: PlanNode, runtime: Runtime) -> PhysicalOp:
    """Recursively build the physical operator for a logical plan node.

    One physical-level fusion applies: the eager-aggregation leaf pattern
    ``GroupScore(ScoreInit(PreCountAtom))`` compiles to a single fused
    scan (see :class:`repro.exec.scan_ops.ScoredPreCountScanOp`).
    """
    if (
        isinstance(node, GroupScore)
        and node.counts_incorporated
        and isinstance(node.child, ScoreInit)
        and node.child.scale_by_count
        and isinstance(node.child.child, PreCountAtom)
        and node.child.vars == (node.child.child.var,)
    ):
        leaf = node.child.child
        return ScoredPreCountScanOp(runtime, leaf.var, leaf.keyword)
    if isinstance(node, Atom):
        return AtomScanOp(runtime, node.var, node.keyword)
    if isinstance(node, PreCountAtom):
        return PreCountScanOp(runtime, node.var, node.keyword)
    if isinstance(node, PositionProject):
        return ForgetOp(runtime, compile_plan(node.child, runtime), node.vars)
    if isinstance(node, GroupCount):
        return CountOp(runtime, compile_plan(node.child, runtime))
    if isinstance(node, Join):
        left = compile_plan(node.left, runtime)
        right = compile_plan(node.right, runtime)
        if node.algorithm == "merge":
            return MergeJoinOp(runtime, left, right, node.predicates)
        if node.algorithm == "forward":
            return ForwardScanJoinOp(runtime, left, right, node.predicates)
        raise PlanError(f"unknown join algorithm {node.algorithm!r}")
    if isinstance(node, Union):
        return UnionOp(
            runtime,
            compile_plan(node.left, runtime),
            compile_plan(node.right, runtime),
        )
    if isinstance(node, Select):
        return SelectOp(runtime, compile_plan(node.child, runtime), node.predicates)
    if isinstance(node, Sort):
        return SortOp(runtime, compile_plan(node.child, runtime), node.sort_vars)
    if isinstance(node, AntiJoin):
        return AntiJoinOp(
            runtime,
            compile_plan(node.left, runtime),
            compile_plan(node.right, runtime),
        )
    if isinstance(node, ScoreInit):
        return ScoreInitOp(
            runtime,
            compile_plan(node.child, runtime),
            node.vars,
            node.scale_by_count,
        )
    if isinstance(node, CombinePhi):
        return CombinePhiOp(runtime, compile_plan(node.child, runtime))
    if isinstance(node, GroupScore):
        return GroupScoreOp(
            runtime, compile_plan(node.child, runtime), node.counts_incorporated
        )
    if isinstance(node, Finalize):
        return FinalizeOp(runtime, compile_plan(node.child, runtime))
    if isinstance(node, AlternateElim):
        return AlternateElimOp(runtime, compile_plan(node.child, runtime))
    raise PlanError(f"cannot compile plan node {type(node).__name__}")
