"""Outer bag-union: the physical operator behind disjunction.

Rows from each branch are padded with the empty symbol in the position
columns the branch lacks — this is where the EMPTY predicates of padded
disjuncts (Section 3.1) materialize.  In eager-aggregation plans the
branches carry pre-aggregated *score* columns; a missing score column is
padded with the alternate-fold of ``count`` copies of ``alpha(empty)``,
i.e. ``times(alpha(empty), count)``, preserving the counts-incorporated
invariant (every score column of a row aggregates exactly ``count``
match-table sub-rows).
"""

from __future__ import annotations

from typing import Iterator

from repro.exec.iterator import (
    DocCursor,
    DocGroup,
    PhysicalOp,
    RowSchema,
    Runtime,
)


class _BranchPad:
    """Precomputed projection of one branch's rows into the union schema."""

    def __init__(self, runtime: Runtime, branch: RowSchema, out: RowSchema):
        self.runtime = runtime
        # For each output position column: the branch row index, or None.
        self.position_map = [
            branch.positions.index(v) if v in branch.positions else None
            for v in out.positions
        ]
        self.count_index = branch.count_index
        # For each output score column: branch score row-index, or the
        # variable name to pad with alpha(empty).
        self.score_map: list[int | str] = [
            branch.score_index(v) if v in branch.scores else v
            for v in out.scores
        ]
        self.needs_padding = any(i is None for i in self.position_map) or any(
            isinstance(m, str) for m in self.score_map
        )

    def project(self, doc: int, rows: Iterator[tuple]) -> Iterator[tuple]:
        if not self.needs_padding:
            yield from rows
            return
        runtime = self.runtime
        info = runtime.info
        scheme = runtime.scheme
        empty_alpha_cache: dict[str, object] = {}

        def empty_alpha(var: str):
            if var not in empty_alpha_cache:
                empty_alpha_cache[var] = scheme.alpha(
                    runtime.ctx, doc, var, info.var_keywords[var], None
                )
            return empty_alpha_cache[var]

        for row in rows:
            cells = tuple(
                row[i] if i is not None else None for i in self.position_map
            )
            count = row[self.count_index]
            scores = tuple(
                row[m]
                if isinstance(m, int)
                else (
                    scheme.times(empty_alpha(m), count)
                    if count != 1
                    else empty_alpha(m)
                )
                for m in self.score_map
            )
            yield cells + (count,) + scores


class UnionOp(PhysicalOp):
    """Outer bag-union of two doc-ordered streams (left rows first)."""

    def __init__(self, runtime: Runtime, left: PhysicalOp, right: PhysicalOp):
        self.runtime = runtime
        self.left = DocCursor(left)
        self.right = DocCursor(right)
        lpos, rpos = left.schema.positions, right.schema.positions
        lsc, rsc = left.schema.scores, right.schema.scores
        self.schema = RowSchema(
            positions=lpos + tuple(v for v in rpos if v not in lpos),
            scores=lsc + tuple(v for v in rsc if v not in lsc),
        )
        self._lpad = _BranchPad(runtime, left.schema, self.schema)
        self._rpad = _BranchPad(runtime, right.schema, self.schema)
        # Branch advancement is deferred until the emitted (lazy) row
        # iterator has been abandoned — advancing immediately would
        # invalidate the child rows the parent has not consumed yet.
        self._advance_left = False
        self._advance_right = False

    def _settle(self) -> None:
        if self._advance_left:
            self.left.advance()
            self._advance_left = False
        if self._advance_right:
            self.right.advance()
            self._advance_right = False

    def next_doc(self) -> DocGroup | None:
        self._settle()
        guard = self.runtime.guard
        if guard.active:
            guard.tick()
        dl = self.left.doc()
        dr = self.right.doc()
        if dl is None and dr is None:
            return None
        if dr is None or (dl is not None and dl < dr):
            self._advance_left = True
            return dl, self._lpad.project(dl, self.left.rows())
        if dl is None or dr < dl:
            self._advance_right = True
            return dr, self._rpad.project(dr, self.right.rows())
        # Same document in both branches: left branch's rows first.
        self._advance_left = True
        self._advance_right = True
        return dl, self._chain(
            self._lpad.project(dl, self.left.rows()),
            self._rpad.project(dl, self.right.rows()),
        )

    @staticmethod
    def _chain(first: Iterator[tuple], second: Iterator[tuple]) -> Iterator[tuple]:
        yield from first
        yield from second

    def seek_doc(self, doc_id: int) -> None:
        self._settle()
        self.left.seek(doc_id)
        self.right.seek(doc_id)
