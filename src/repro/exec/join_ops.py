"""Physical joins.

:class:`MergeJoinOp` is the zig-zag join of Section 5.2.1: both inputs are
doc-ordered and seekable, and each side's seek "signals the index scan
operator to skip directly to the value of the other join attribute", even
through several operator levels — :meth:`DocCursor.seek` propagates all
the way to the leaf scans.  Within a matching document it produces the
cross product of the two sides' rows (lazily, left-major), filtered by any
full-text predicates pushed into the join.

:class:`ForwardScanJoinOp` (Section 5.2.2) additionally emits *at most one
match per document*, found in a single forward pass; it may miss matches,
which is exactly why it is valid only for constant scoring schemes.

Score scaling: in eager-aggregation plans the join's inputs carry
pre-aggregated score columns; each side's scores are scaled by the other
side's row multiplicity (Yan & Larson), preserving the invariant that a
row's score columns aggregate exactly ``count`` match-table sub-rows.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import ExecutionError
from repro.exec.iterator import (
    DocCursor,
    DocGroup,
    PhysicalOp,
    RowSchema,
    Runtime,
)
from repro.ma.match_table import ANY_POSITION
from repro.mcalc.ast import Pred
from repro.mcalc.predicates import PredicateImpl, get_predicate


class _CompiledPred:
    """A predicate bound to row positions of the output schema."""

    __slots__ = ("impl", "indices", "constants", "structural")

    def __init__(self, pred: Pred, schema: RowSchema):
        self.impl: PredicateImpl = get_predicate(pred.name)
        self.indices = tuple(schema.position_index(v) for v in pred.vars)
        self.constants = pred.constants
        self.structural = self.impl.structural

    def holds(self, row: tuple, sentence_starts: tuple[int, ...] = ()) -> bool:
        # Hot path: one comprehension + one tuple() per candidate row
        # (a generator expression here is measurably slower — CPython
        # specializes list comprehensions; see bench_pred_holds.py).
        positions = tuple([row[i] for i in self.indices])
        if ANY_POSITION in positions:
            raise ExecutionError(
                "full-text predicate applied to a pre-counted column; "
                "the optimizer must not forget positions a predicate needs"
            )
        return self.impl.holds(positions, self.constants, sentence_starts)


def compile_predicates(
    predicates: tuple[Pred, ...], schema: RowSchema
) -> tuple[_CompiledPred, ...]:
    return tuple(_CompiledPred(p, schema) for p in predicates)


def doc_structure(runtime: Runtime, preds, doc: int) -> tuple[int, ...]:
    """The document's sentence offsets, fetched only when some predicate
    is structural."""
    if any(p.structural for p in preds):
        return runtime.index.sentence_starts_of(doc)
    return ()


class MergeJoinOp(PhysicalOp):
    """Zig-zag natural join on the document column."""

    def __init__(
        self,
        runtime: Runtime,
        left: PhysicalOp,
        right: PhysicalOp,
        predicates: tuple[Pred, ...],
    ):
        self.runtime = runtime
        self.left = DocCursor(left)
        self.right = DocCursor(right)
        lpos, rpos = left.schema.positions, right.schema.positions
        overlap = set(lpos) & set(rpos)
        if overlap:
            raise ExecutionError(f"join inputs share position columns {overlap}")
        self.schema = RowSchema(
            positions=lpos + rpos,
            scores=left.schema.scores + right.schema.scores,
        )
        self._l_width = len(lpos)
        self._l_count = left.schema.count_index
        self._r_count = right.schema.count_index
        self._l_has_scores = bool(left.schema.scores)
        self._r_has_scores = bool(right.schema.scores)
        self._preds = compile_predicates(predicates, self.schema)

    def next_doc(self) -> DocGroup | None:
        guard = self.runtime.guard
        if guard.active:
            guard.tick()
        doc = self._align()
        if doc is None:
            return None
        lrows = list(self.left.rows())
        rrows = list(self.right.rows())
        self.left.advance()
        self.right.advance()
        starts = doc_structure(self.runtime, self._preds, doc)
        return doc, self._cross(doc, lrows, rrows, starts)

    def _align(self) -> int | None:
        """Zig-zag both inputs until their current docs coincide."""
        while True:
            dl = self.left.doc()
            dr = self.right.doc()
            if dl is None or dr is None:
                return None
            if dl < dr:
                self.left.seek(dr)
            elif dr < dl:
                self.right.seek(dl)
            else:
                return dl

    def _cross(
        self,
        doc: int,
        lrows: list[tuple],
        rrows: list[tuple],
        starts: tuple[int, ...] = (),
    ) -> Iterator[tuple]:
        times = self.runtime.scheme.times
        metrics = self.runtime.metrics
        guard = self.runtime.guard
        governed = guard.active
        preds = self._preds
        lw, lc, rc = self._l_width, self._l_count, self._r_count
        for lrow in lrows:
            lcells = lrow[:lw]
            lcount = lrow[lc]
            lscores = lrow[lc + 1:]
            for rrow in rrows:
                rcells = rrow[:rc]
                rcount = rrow[rc]
                rscores = rrow[rc + 1:]
                cells = lcells + rcells
                if preds:
                    row_probe = cells + (0,)
                    if not all(p.holds(row_probe, starts) for p in preds):
                        if governed:
                            # Filtered combinations are still enumerated
                            # work; keep the deadline responsive here.
                            guard.tick()
                        continue
                ls = lscores
                rs = rscores
                if self._l_has_scores and rcount != 1:
                    ls = tuple(times(s, rcount) for s in ls)
                if self._r_has_scores and lcount != 1:
                    rs = tuple(times(s, lcount) for s in rs)
                metrics.rows_joined += 1
                if governed:
                    guard.charge_rows()
                    guard.charge_doc_rows(doc)
                yield cells + (lcount * rcount,) + ls + rs

    def seek_doc(self, doc_id: int) -> None:
        self.left.seek(doc_id)
        self.right.seek(doc_id)


class ForwardScanJoinOp(MergeJoinOp):
    """Merge join that emits at most one (the first) match per document.

    When both inputs are bare position streams and the join predicates are
    binary forward-class predicates over one column from each side, the
    first match is located by the classic two-pointer forward sweep in
    ``O(|A| + |B|)``; otherwise the lazy cross product is simply abandoned
    after its first satisfying row (still a single forward pass over each
    input's materialized rows).
    """

    def next_doc(self) -> DocGroup | None:
        guard = self.runtime.guard
        governed = guard.active
        while True:
            if governed:
                guard.tick()
            doc = self._align()
            if doc is None:
                return None
            lrows = list(self.left.rows())
            rrows = list(self.right.rows())
            self.left.advance()
            self.right.advance()
            starts = doc_structure(self.runtime, self._preds, doc)
            row = self._first_match(doc, lrows, rrows, starts)
            if row is not None:
                return doc, iter((row,))
            # No match in this document: move on rather than emit an
            # empty group for every joint document.

    #: Predicates for which the advance-the-smaller sweep is *complete*
    #: (finds a match whenever one exists): symmetric threshold predicates.
    #: If (a, b) with a <= b fails, then b - a exceeds the threshold and no
    #: later b can help, so advancing a is safe.  DISTANCE and ORDER do not
    #: have this property and use the generic first-match scan instead.
    _SWEEPABLE = frozenset({"PROXIMITY", "WINDOW"})

    def _first_match(
        self,
        doc: int,
        lrows: list[tuple],
        rrows: list[tuple],
        starts: tuple[int, ...],
    ) -> tuple | None:
        if self._can_sweep():
            return self._sweep(lrows, rrows)
        for row in self._cross(doc, lrows, rrows, starts):
            return row
        return None

    def _can_sweep(self) -> bool:
        if (
            len(self._preds) != 1
            or self._l_width != 1
            or len(self.schema.positions) != 2
            or self.schema.scores
        ):
            return False
        pred = self._preds[0]
        return pred.impl.name in self._SWEEPABLE and len(pred.indices) == 2

    def _sweep(self, lrows: list[tuple], rrows: list[tuple]) -> tuple | None:
        pred = self._preds[0]
        a = [r[0] for r in lrows]
        b = [r[0] for r in rrows]
        i = j = 0
        while i < len(a) and j < len(b):
            row = (a[i], b[j], 1)
            if pred.holds(row):
                return row
            if a[i] <= b[j]:
                i += 1
            else:
                j += 1
        return None
