"""Selection, sort, counting, anti-join and alternate elimination.

Operators that emit lazy per-document row iterators defer advancing their
child until the next ``next_doc``/``seek_doc`` call, honoring the contract
that a group's rows remain valid until then.
"""

from __future__ import annotations

from typing import Iterator

from repro.exec.iterator import (
    DocCursor,
    DocGroup,
    PhysicalOp,
    RowSchema,
    Runtime,
)
from repro.exec.join_ops import compile_predicates, doc_structure
from repro.ma.match_table import ANY_POSITION, cell_sort_key
from repro.mcalc.ast import Pred


class UnaryLazyOp(PhysicalOp):
    """Base for per-document row transformations (lazy, deferred advance)."""

    def __init__(self, runtime: Runtime, child: PhysicalOp):
        self.runtime = runtime
        self.child = DocCursor(child)
        self.schema = child.schema
        self._pending_advance = False

    def _settle(self) -> None:
        if self._pending_advance:
            self.child.advance()
            self._pending_advance = False

    def next_doc(self) -> DocGroup | None:
        self._settle()
        guard = self.runtime.guard
        if guard.active:
            guard.tick()
        doc = self.child.doc()
        if doc is None:
            return None
        self._pending_advance = True
        return doc, self.transform(doc, self.child.rows())

    def seek_doc(self, doc_id: int) -> None:
        self._settle()
        self.child.seek(doc_id)

    def transform(self, doc: int, rows: Iterator[tuple]) -> Iterator[tuple]:
        raise NotImplementedError


class SelectOp(UnaryLazyOp):
    """Filter rows by a conjunction of full-text predicates."""

    def __init__(self, runtime: Runtime, child: PhysicalOp, predicates: tuple[Pred, ...]):
        super().__init__(runtime, child)
        self._preds = compile_predicates(predicates, self.schema)

    def transform(self, doc: int, rows: Iterator[tuple]) -> Iterator[tuple]:
        preds = self._preds
        starts = doc_structure(self.runtime, preds, doc)
        return (row for row in rows if all(p.holds(row, starts) for p in preds))


class ForgetOp(UnaryLazyOp):
    """Generalized projection forgetting the positions of some columns
    (first half of the pre-counting chain)."""

    def __init__(self, runtime: Runtime, child: PhysicalOp, vars: tuple[str, ...]):
        super().__init__(runtime, child)
        self._indices = tuple(self.schema.position_index(v) for v in vars)

    def transform(self, doc: int, rows: Iterator[tuple]) -> Iterator[tuple]:
        indices = self._indices
        for row in rows:
            out = list(row)
            for i in indices:
                out[i] = ANY_POSITION
            yield tuple(out)


class SortOp(PhysicalOp):
    """Per-document lexicographic sort.

    The canonical plan's global sort orders rows by (doc, positions...);
    since every stream is already doc-major, sorting within each document
    is equivalent and keeps the operator streaming.
    """

    def __init__(self, runtime: Runtime, child: PhysicalOp, sort_vars: tuple[str, ...]):
        self.runtime = runtime
        self.child = DocCursor(child)
        self.schema = child.schema
        self._indices = tuple(
            self.schema.position_index(v)
            for v in sort_vars
            if v in self.schema.positions
        )

    def next_doc(self) -> DocGroup | None:
        doc = self.child.doc()
        if doc is None:
            return None
        indices = self._indices
        rows = sorted(
            self.child.rows(),
            key=lambda r: tuple(cell_sort_key(r[i]) for i in indices),
        )
        self.child.advance()
        guard = self.runtime.guard
        if guard.active:
            guard.charge_rows(len(rows))
        return doc, iter(rows)

    def seek_doc(self, doc_id: int) -> None:
        self.child.seek(doc_id)


class CountOp(PhysicalOp):
    """Eager counting: collapse identical rows into one row whose
    multiplicity is the sum of the collapsed rows' multiplicities."""

    def __init__(self, runtime: Runtime, child: PhysicalOp):
        self.runtime = runtime
        self.child = DocCursor(child)
        self.schema = child.schema
        self._count_index = self.schema.count_index

    def next_doc(self) -> DocGroup | None:
        doc = self.child.doc()
        if doc is None:
            return None
        ci = self._count_index
        tally: dict[tuple, int] = {}
        for row in self.child.rows():
            key = row[:ci]
            tally[key] = tally.get(key, 0) + row[ci]
        self.child.advance()
        self.runtime.metrics.rows_grouped += len(tally)
        guard = self.runtime.guard
        if guard.active:
            guard.charge_rows(len(tally))
        return doc, (key + (count,) for key, count in tally.items())

    def seek_doc(self, doc_id: int) -> None:
        self.child.seek(doc_id)


class AntiJoinOp(PhysicalOp):
    """Document-level anti-join: left documents absent from the right."""

    def __init__(self, runtime: Runtime, left: PhysicalOp, right: PhysicalOp):
        self.runtime = runtime
        self.left = DocCursor(left)
        self.right = DocCursor(right)
        self.schema = left.schema
        self._pending_advance = False

    def next_doc(self) -> DocGroup | None:
        if self._pending_advance:
            self.left.advance()
            self._pending_advance = False
        guard = self.runtime.guard
        governed = guard.active
        while True:
            if governed:
                guard.tick()
            doc = self.left.doc()
            if doc is None:
                return None
            self.right.seek(doc)
            if self.right.doc() == doc:
                self.left.advance()
                continue
            self._pending_advance = True
            return doc, self.left.rows()

    def seek_doc(self, doc_id: int) -> None:
        if self._pending_advance:
            self.left.advance()
            self._pending_advance = False
        self.left.seek(doc_id)


class AlternateElimOp(PhysicalOp):
    """The delta operator: first row per document, then skip.

    "It emits a new result match as soon as a new group is seen instead of
    waiting to see all group members, and it signals its child operators
    to skip any further tuples in the group" — the skip signal here is
    simply abandoning the child's lazy row iterator and advancing, which
    leaves unconsumed join combinations ungenerated and unbilled.
    """

    def __init__(self, runtime: Runtime, child: PhysicalOp):
        self.runtime = runtime
        self.child = DocCursor(child)
        base = child.schema
        self.schema = base

    def next_doc(self) -> DocGroup | None:
        guard = self.runtime.guard
        governed = guard.active
        while True:
            if governed:
                guard.tick()
            doc = self.child.doc()
            if doc is None:
                return None
            first = next(iter(self.child.rows()), None)
            self.child.advance()
            if first is None:
                # The document's rows were all filtered out: not a match.
                continue
            ci = self.schema.count_index
            if first[ci] != 1:
                # Multiplicity is meaningless once duplicates are skipped.
                first = first[:ci] + (1,) + first[ci + 1:]
            return doc, iter((first,))

    def seek_doc(self, doc_id: int) -> None:
        self.child.seek(doc_id)
