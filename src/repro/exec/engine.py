"""Plan execution entry points.

Execution is resource-governed: the runtime's
:class:`repro.exec.limits.QueryGuard` is armed when a plan starts and
checked cooperatively inside every operator's ``next_doc`` loop.  On
budget exhaustion :func:`execute` either propagates the trip
(``on_limit="error"``) or returns the correctly-ranked prefix of the
rows produced so far (``on_limit="partial"``) — callers read
``runtime.guard.tripped`` to learn whether (and why) the result was
degraded.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.errors import GraftError, ResourceExhaustedError
from repro.exec.compile import compile_op
from repro.exec.iterator import Runtime, pull_doc
from repro.exec.limits import QueryGuard, QueryLimits
from repro.graft.canonical import QueryInfo
from repro.graft.plan import validate_plan
from repro.index.index import Index
from repro.ma.nodes import PlanNode
from repro.sa.context import IndexScoringContext, ScoringContext
from repro.sa.scheme import ScoringScheme

if TYPE_CHECKING:
    from repro.exec.faults import FaultInjector
    from repro.obs.trace import Tracer


def make_runtime(
    index: Index,
    scheme: ScoringScheme,
    info: QueryInfo,
    ctx: ScoringContext | None = None,
    limits: QueryLimits | None = None,
    faults: "FaultInjector | None" = None,
    tracer: "Tracer | None" = None,
) -> Runtime:
    """Assemble the shared execution state for one plan run.

    ``limits`` installs a resource guard over the run; ``faults``
    attaches a deterministic fault injector (testing only); ``tracer``
    attaches the per-operator execution tracer
    (:mod:`repro.obs.trace`) behind EXPLAIN ANALYZE and profiling.
    """
    if ctx is None:
        ctx = IndexScoringContext(index)
    return Runtime(
        index=index,
        ctx=ctx,
        scheme=scheme,
        info=info,
        guard=QueryGuard(limits),
        faults=faults,
        tracer=tracer,
    )


def validate_top_k(top_k: int | None) -> None:
    """Reject non-positive ``top_k`` values.

    ``results[:top_k]`` with a negative k silently drops results from
    the *end* of the ranking — a classic slicing bug — so the engine
    refuses anything below 1 outright.
    """
    if top_k is None:
        return
    if not isinstance(top_k, int) or isinstance(top_k, bool) or top_k < 1:
        raise GraftError(f"top_k must be a positive integer, got {top_k!r}")


def execute_streaming(plan: PlanNode, runtime: Runtime) -> Iterator[tuple[int, float]]:
    """Execute a complete GRAFT plan, yielding (doc_id, score) pairs in
    ascending document order."""
    validate_plan(plan)
    runtime.guard.start()
    # Compilation pulls the leaves' first doc groups (DocCursor priming),
    # so it sits inside the same error boundary as the pull loop.
    root = compile_op(plan, runtime)
    score_index = root.schema.score_index("score")
    guard = runtime.guard
    governed = guard.active
    while True:
        group = pull_doc(root)
        if group is None:
            return
        if governed:
            guard.tick()
        doc, rows = group
        for row in rows:
            yield doc, row[score_index]


def execute(
    plan: PlanNode,
    runtime: Runtime,
    top_k: int | None = None,
) -> list[tuple[int, float]]:
    """Execute a plan and return ranked results.

    Results are sorted by descending score, ties broken by ascending doc
    id; ``top_k`` (which must be >= 1) truncates after ranking
    (rank-join based early termination lives in :mod:`repro.exec.topk`).

    Under a resource guard with ``on_limit="partial"``, a tripped limit
    ends the scan early and the documents scored so far are ranked and
    returned; ``runtime.guard.tripped`` names the limit.  Every returned
    prefix is exactly ranked — degradation drops tail documents, never
    reorders scored ones.
    """
    validate_top_k(top_k)
    results: list[tuple[int, float]] = []
    tracer = runtime.tracer
    if tracer is not None:
        tracer.begin()
    try:
        for pair in execute_streaming(plan, runtime):
            results.append(pair)
    except ResourceExhaustedError:
        if runtime.guard.on_limit != "partial":
            raise
    finally:
        if tracer is not None:
            tracer.finish()
    results.sort(key=lambda r: (-r[1], r[0]))
    if top_k is not None:
        return results[:top_k]
    return results
