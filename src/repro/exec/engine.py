"""Plan execution entry points."""

from __future__ import annotations

from typing import Iterator

from repro.exec.compile import compile_plan
from repro.exec.iterator import Runtime
from repro.graft.canonical import QueryInfo
from repro.graft.plan import validate_plan
from repro.index.index import Index
from repro.ma.nodes import PlanNode
from repro.sa.context import IndexScoringContext, ScoringContext
from repro.sa.scheme import ScoringScheme


def make_runtime(
    index: Index,
    scheme: ScoringScheme,
    info: QueryInfo,
    ctx: ScoringContext | None = None,
) -> Runtime:
    """Assemble the shared execution state for one plan run."""
    if ctx is None:
        ctx = IndexScoringContext(index)
    return Runtime(index=index, ctx=ctx, scheme=scheme, info=info)


def execute_streaming(plan: PlanNode, runtime: Runtime) -> Iterator[tuple[int, float]]:
    """Execute a complete GRAFT plan, yielding (doc_id, score) pairs in
    ascending document order."""
    validate_plan(plan)
    root = compile_plan(plan, runtime)
    score_index = root.schema.score_index("score")
    while True:
        group = root.next_doc()
        if group is None:
            return
        doc, rows = group
        for row in rows:
            yield doc, row[score_index]


def execute(
    plan: PlanNode,
    runtime: Runtime,
    top_k: int | None = None,
) -> list[tuple[int, float]]:
    """Execute a plan and return ranked results.

    Results are sorted by descending score, ties broken by ascending doc
    id; ``top_k`` truncates after ranking (rank-join based early
    termination lives in :mod:`repro.exec.topk`).
    """
    results = list(execute_streaming(plan, runtime))
    results.sort(key=lambda r: (-r[1], r[0]))
    if top_k is not None:
        return results[:top_k]
    return results
