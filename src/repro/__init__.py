"""GRAFT: score-consistent algebraic optimization of full-text search.

A from-scratch reproduction of Bales, Deutsch & Vassalos, "Score-Consistent
Algebraic Optimization of Full-Text Search Queries with GRAFT"
(SIGMOD 2011): a full-text search engine architected like a relational
database, where scoring is a generic plug-in and the optimizer exploits
exactly the rewrites each scoring scheme's declared properties permit.

Quickstart::

    from repro import SearchEngine

    engine = SearchEngine()
    engine.add("wine is a free software windows emulator")
    outcome = engine.search('(windows emulator)WINDOW[50] (foss | "free software")',
                            scheme="meansum")
    for result in outcome:
        print(result.doc_id, result.score)

Layering (bottom to top): :mod:`repro.corpus` and :mod:`repro.index` are
the data substrate; :mod:`repro.mcalc` is the matching calculus;
:mod:`repro.ma` the matching algebra; :mod:`repro.sa` the scoring algebra
and the seven literature schemes; :mod:`repro.graft` the integrated plan
model and optimizer; :mod:`repro.exec` the physical engine;
:mod:`repro.baselines` the rigid Lucene/Terrier-style comparators.
"""

from repro.api import SearchEngine, SearchOutcome, SearchResult
from repro.corpus import DocumentCollection
from repro.errors import (
    GraftError,
    QueryTimeoutError,
    ResourceExhaustedError,
)
from repro.exec import CacheConfig, FaultInjector, FaultSpec, QueryLimits
from repro.graft import Optimizer, OptimizerOptions
from repro.index import build_index
from repro.mcalc import parse_query
from repro.sa import (
    ScoringScheme,
    SchemeProperties,
    available_schemes,
    get_scheme,
    register_scheme,
)

__version__ = "1.0.0"

__all__ = [
    "SearchEngine",
    "SearchResult",
    "SearchOutcome",
    "DocumentCollection",
    "parse_query",
    "build_index",
    "ScoringScheme",
    "SchemeProperties",
    "get_scheme",
    "register_scheme",
    "available_schemes",
    "Optimizer",
    "OptimizerOptions",
    "GraftError",
    "ResourceExhaustedError",
    "QueryTimeoutError",
    "QueryLimits",
    "CacheConfig",
    "FaultInjector",
    "FaultSpec",
    "__version__",
]
