"""Every public error class is raised by at least one path of the public
API — the error hierarchy is a contract, not decoration.

``test_every_public_error_class_is_exercised`` enumerates the classes in
:mod:`repro.errors` dynamically, so adding a new error class without a
raising scenario here fails the suite.
"""

from __future__ import annotations

import pytest

from repro import SearchEngine, errors
from repro.baselines.rigid import decompose_rigid
from repro.exec.engine import make_runtime
from repro.exec.faults import FaultInjector, FaultSpec
from repro.exec.limits import QueryLimits
from repro.exec.topk import rank_topk
from repro.ma.nodes import PlanNode
from repro.mcalc.parser import parse_query
from repro.sa.registry import get_scheme


@pytest.fixture
def engine():
    e = SearchEngine()
    e.add("pad " + "boom " * 40 + "tail")
    e.add("the quick brown fox jumps over the lazy dog")
    e.add("a boom and a quick dog")
    return e


def raise_graft_error(engine):
    engine.search("quick dog", top_k=0)


def raise_config_error(engine):
    SearchEngine(shards=-2)


def raise_query_syntax_error(engine):
    engine.parse('"unterminated phrase')


def raise_unsafe_query_error(engine):
    from repro.mcalc.ast import Has, Or
    from repro.mcalc.safety import check_safe

    check_safe(Or((Has("p", "a"), Has("q", "b"))), ("p", "q"))


def raise_unknown_predicate_error(engine):
    engine.parse("(a b)NOSUCH[3]")


def raise_predicate_arity_error(engine):
    engine.parse("(a)WINDOW[5] b")


def raise_unknown_scheme_error(engine):
    engine.search("quick", scheme="no-such-scheme")


def raise_plan_error(engine):
    class Bogus(PlanNode):
        pass

    from repro.exec.compile import compile_plan
    from repro.graft.canonical import make_query_info

    query = parse_query("quick", engine.collection.analyzer)
    scheme = get_scheme("sumbest")
    runtime = make_runtime(engine.index, scheme, make_query_info(query, scheme))
    compile_plan(Bogus(), runtime)


def raise_optimization_error(engine):
    # A phrase query carries predicates: the rank-join path must refuse it.
    query = parse_query('"quick dog"', engine.collection.analyzer)
    rank_topk(query, get_scheme("anysum"), engine.index, 3)


def raise_execution_error(engine):
    faults = FaultInjector([FaultSpec(op_name="FinalizeOp", fail_at_call=1)])
    engine.search("quick dog", faults=faults)


def raise_unsupported_query_error(engine):
    decompose_rigid(parse_query("(a b)WINDOW[50]"))


def raise_index_error(engine, tmp_path):
    SearchEngine.load(tmp_path / "nowhere")


def raise_index_corruption_error(engine, tmp_path):
    other = SearchEngine()
    other.add("the quick brown fox")
    other.save(tmp_path / "store")
    manifest = tmp_path / "store" / "MANIFEST"
    data = bytearray(manifest.read_bytes())
    data[70] ^= 0x01
    manifest.write_bytes(bytes(data))
    SearchEngine.load(tmp_path / "store")


def raise_store_locked_error(engine, tmp_path):
    with SearchEngine.open(tmp_path / "locked"):
        SearchEngine.open(tmp_path / "locked")


def raise_resource_exhausted_error(engine):
    engine.search("boom boom", optimize=False, limits=QueryLimits(max_rows=5))


def raise_query_timeout_error(engine):
    engine.match_table(
        "boom boom boom boom", limits=QueryLimits(deadline_ms=50)
    )


def raise_score_consistency_error(engine):
    import repro.api
    from repro.graft.optimizer import Optimizer, OptimizerOptions
    from repro.obs.audit import AuditConfig

    class GateDroppingOptimizer(Optimizer):
        def _allowed(self, name: str) -> bool:
            return True

    original = repro.api.Optimizer
    repro.api.Optimizer = GateDroppingOptimizer
    try:
        broken = SearchEngine(
            engine.collection, audit=AuditConfig(rate=1.0, mode="strict")
        )
        broken.search(
            "quick (dog | boom)",
            scheme="sumbest",
            options=OptimizerOptions(eager_aggregation=False),
        )
    finally:
        repro.api.Optimizer = original


#: error class -> callable(engine, tmp_path) raising it through the API.
SCENARIOS = {
    errors.GraftError: raise_graft_error,
    errors.ConfigError: raise_config_error,
    errors.QuerySyntaxError: raise_query_syntax_error,
    errors.UnsafeQueryError: raise_unsafe_query_error,
    errors.UnknownPredicateError: raise_unknown_predicate_error,
    errors.PredicateArityError: raise_predicate_arity_error,
    errors.UnknownSchemeError: raise_unknown_scheme_error,
    errors.PlanError: raise_plan_error,
    errors.OptimizationError: raise_optimization_error,
    errors.ExecutionError: raise_execution_error,
    errors.UnsupportedQueryError: raise_unsupported_query_error,
    errors.IndexError_: raise_index_error,
    errors.IndexCorruptionError: raise_index_corruption_error,
    errors.StoreLockedError: raise_store_locked_error,
    errors.ResourceExhaustedError: raise_resource_exhausted_error,
    errors.QueryTimeoutError: raise_query_timeout_error,
    errors.ScoreConsistencyError: raise_score_consistency_error,
}

#: Scenarios that persist state and therefore need a scratch directory.
NEEDS_TMP_PATH = {
    raise_index_error,
    raise_index_corruption_error,
    raise_store_locked_error,
}


def public_error_classes() -> list[type]:
    return [
        obj
        for name in dir(errors)
        if not name.startswith("_")
        for obj in [getattr(errors, name)]
        if isinstance(obj, type) and issubclass(obj, errors.GraftError)
    ]


def test_every_public_error_class_is_exercised():
    missing = [
        cls.__name__ for cls in public_error_classes() if cls not in SCENARIOS
    ]
    assert not missing, f"no raising scenario for: {missing}"


@pytest.mark.parametrize(
    "cls", list(SCENARIOS), ids=[c.__name__ for c in SCENARIOS]
)
def test_error_class_raised_through_public_api(cls, engine, tmp_path):
    scenario = SCENARIOS[cls]
    with pytest.raises(cls) as info:
        if scenario in NEEDS_TMP_PATH:
            scenario(engine, tmp_path)
        else:
            scenario(engine)
    # The *exact* class is raised somewhere in the hierarchy walk: assert
    # the scenario does not accidentally rely on a subclass of the target.
    assert isinstance(info.value, cls)
    assert isinstance(info.value, errors.GraftError)
