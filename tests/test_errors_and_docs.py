"""Error hierarchy and top-level packaging checks."""

import pytest

import repro
from repro import errors


def test_all_errors_derive_from_graft_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            if obj is errors.GraftError:
                continue
            assert issubclass(obj, errors.GraftError), name


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_public_api_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_readme_quickstart_matches_api():
    """The README's quickstart snippet must actually run."""
    from repro import SearchEngine

    engine = SearchEngine()
    engine.add("wine is a free software windows emulator", title="Wine")
    engine.add("an emulator makes one computer behave like another")
    outcome = engine.search(
        '(windows emulator)WINDOW[50] (foss | "free software")',
        scheme="meansum",
    )
    assert [r.doc_id for r in outcome] == [0]
    assert outcome.applied_optimizations


def test_main_module_importable():
    import importlib

    module = importlib.import_module("repro.__main__")
    assert callable(module.main)


def test_query_syntax_error_str_contains_position():
    err = errors.QuerySyntaxError("boom", position=7)
    assert "character 7" in str(err)
    assert err.position == 7


def test_design_docs_exist():
    import pathlib

    root = pathlib.Path(repro.__file__).resolve().parents[2]
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        assert (root / name).exists(), name
