"""The two-tier query cache: hits, misses, and invalidation.

The cache must be invisible except in speed: a cached search returns
exactly what the uncached search returned, and any event that could
change the answer — an index mutation, a different scheme, different
optimizer toggles — must miss.  Generation keying makes invalidation
structural (old keys become unreachable), which these tests observe
through ``SearchOutcome.plan_cached``/``result_cached`` and
``cache_stats()``."""

from __future__ import annotations

import pytest

from repro.api import SearchEngine
from repro.errors import GraftError
from repro.exec.cache import CacheConfig, LRUCache
from repro.graft.optimizer import OptimizerOptions

from tests.conftest import make_tiny_collection


@pytest.fixture()
def engine():
    return SearchEngine(
        make_tiny_collection(),
        cache=CacheConfig(plan_capacity=8, result_capacity=8),
    )


def test_repeat_query_hits_both_tiers(engine):
    first = engine.search("quick fox")
    second = engine.search("quick fox")
    assert not first.plan_cached and not first.result_cached
    assert second.plan_cached and second.result_cached
    assert second.results == first.results
    assert second.applied_optimizations == first.applied_optimizations
    assert second.plan_text == first.plan_text
    stats = engine.cache_stats()
    assert stats["plan"]["hits"] == 0  # result tier answered first
    assert stats["result"]["hits"] == 1
    assert stats["result"]["size"] == 1


def test_plan_tier_hits_when_top_k_differs(engine):
    engine.search("quick fox", top_k=5)
    outcome = engine.search("quick fox", top_k=2)
    # Different top_k: result tier misses, plan tier still hits.
    assert outcome.plan_cached and not outcome.result_cached
    assert engine.cache_stats()["plan"]["hits"] == 1


def test_scheme_change_misses(engine):
    engine.search("quick fox", scheme="sumbest")
    outcome = engine.search("quick fox", scheme="anysum")
    assert not outcome.plan_cached and not outcome.result_cached
    assert engine.cache_stats()["plan"]["size"] == 2


def test_optimizer_options_change_misses(engine):
    engine.search("quick fox")
    outcome = engine.search(
        "quick fox", options=OptimizerOptions(pre_counting=False)
    )
    assert not outcome.plan_cached
    # And the same options object content hits again.
    again = engine.search(
        "quick fox", options=OptimizerOptions(pre_counting=False)
    )
    assert again.plan_cached


def test_optimize_flag_change_misses(engine):
    engine.search("quick fox")
    outcome = engine.search("quick fox", optimize=False)
    assert not outcome.plan_cached
    assert outcome.applied_optimizations == []


def test_add_invalidates_both_tiers(engine):
    cached = engine.search("quick fox")
    assert engine.search("quick fox").result_cached
    engine.add("a brand new quick fox document")
    outcome = engine.search("quick fox")
    assert not outcome.plan_cached and not outcome.result_cached
    # The new document participates: results actually changed.
    assert len(outcome.results) == len(cached.results) + 1


def test_parsed_query_objects_bypass_the_cache(engine):
    parsed = engine.parse("quick fox")
    first = engine.search(parsed)
    second = engine.search(parsed)
    # Only raw text is a safe key; Query objects never touch the cache.
    assert not first.plan_cached and not second.plan_cached
    assert engine.cache_stats()["plan"]["size"] == 0


def test_limits_profile_and_rank_join_skip_result_tier(engine):
    from repro.exec.limits import QueryLimits

    engine.search("quick fox")
    limited = engine.search(
        "quick fox", limits=QueryLimits(max_rows=100_000)
    )
    assert not limited.result_cached
    profiled = engine.search("quick fox", profile=True)
    assert not profiled.result_cached
    assert profiled.stats is not None
    ranked = engine.search(
        "quick fox", scheme="anysum", top_k=3, use_rank_join=True
    )
    assert not ranked.result_cached
    assert ranked.applied_optimizations == ["rank-join-topk"]


def test_cached_outcome_is_a_fresh_object(engine):
    first = engine.search("quick fox")
    second = engine.search("quick fox")
    assert second is not first
    assert second.results is not first.results
    second.results.append((999, 0.0))
    third = engine.search("quick fox")
    assert (999, 0.0) not in third.results


def test_load_starts_with_cold_caches(tmp_path, engine):
    engine.search("quick fox")
    engine.save(tmp_path / "store")
    loaded = SearchEngine.load(tmp_path / "store")
    stats = loaded.cache_stats()
    assert stats["plan"]["size"] == 0 and stats["result"]["size"] == 0
    first = loaded.search("quick fox")
    assert not first.plan_cached
    assert loaded.search("quick fox").plan_cached


def test_cache_off_never_caches():
    engine = SearchEngine(make_tiny_collection(), cache=CacheConfig.off())
    engine.search("quick fox")
    outcome = engine.search("quick fox")
    assert not outcome.plan_cached and not outcome.result_cached
    stats = engine.cache_stats()
    assert stats["plan"]["size"] == 0
    assert stats["plan"]["hits"] == stats["plan"]["misses"] == 0


def test_default_config_has_no_result_tier():
    engine = SearchEngine(make_tiny_collection())
    engine.search("quick fox")
    outcome = engine.search("quick fox")
    assert outcome.plan_cached and not outcome.result_cached


def test_cache_config_validation():
    with pytest.raises(GraftError, match="plan_capacity"):
        CacheConfig(plan_capacity=-1)
    with pytest.raises(GraftError, match="result_capacity"):
        CacheConfig(result_capacity=2.5)
    assert CacheConfig.off().plan_capacity == 0


def test_lru_eviction_order():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refreshes 'a'
    cache.put("c", 3)  # evicts 'b', the least recently used
    assert "b" not in cache
    assert cache.get("b") is None
    assert cache.get("a") == 1 and cache.get("c") == 3
    assert len(cache) == 2
    assert cache.hits == 3 and cache.misses == 1


def test_cache_metrics_flow_to_registry(engine):
    from repro.obs.metrics import REGISTRY

    engine.search("quick fox")
    engine.search("quick fox")
    engine.search("quick fox", top_k=3)
    text = REGISTRY.to_prometheus_text()
    assert "graft_plan_cache_hits_total" in text
    assert "graft_result_cache_hits_total" in text
