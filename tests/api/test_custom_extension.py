"""End-to-end extensibility: user-defined schemes and predicates.

The paper's desiderata: plug-in scoring whose developer "need not
understand the optimizer", and "virtually any predicate on positions" as
a plug-in.  These tests define both from outside the library and verify
the optimizer adapts automatically.
"""

import pytest

from repro.api import SearchEngine
from repro.mcalc.predicates import PredicateImpl, register_predicate
from repro.sa.context import ScoringContext
from repro.sa.properties import Associativity, SchemeProperties
from repro.sa.registry import available_schemes, get_scheme, register_scheme
from repro.sa.scheme import ScoringScheme
from repro.sa.weighting import bm25

from tests.conftest import make_tiny_collection


class CountMatches(ScoringScheme):
    """A user scheme: score = number of matches (constant? no — counts!).

    Internal score: int count of matches.
    """

    name = "count-matches"
    properties = SchemeProperties(
        directional=None,
        positional=False,
        constant=False,
        alt_associates=Associativity.FULL,
        alt_commutes=True,
        alt_monotonic_increasing=True,
        alt_idempotent=False,
        alt_multiplies=True,
        conj_associates=Associativity.NONE,
        conj_commutes=False,
        conj_monotonic_increasing=True,
        disj_associates=Associativity.NONE,
        disj_commutes=False,
        disj_monotonic_increasing=True,
    )

    def alpha(self, ctx, doc_id, var, keyword, offset):
        return 1

    def conj(self, left, right):
        return left  # every column counts the same rows

    def disj(self, left, right):
        return left

    def alt(self, left, right):
        return left + right

    def omega(self, ctx, doc_id, score):
        return float(score)

    def times(self, score, k):
        return score * k


def test_custom_scheme_registers_and_ranks():
    register_scheme(CountMatches)
    assert "count-matches" in available_schemes()
    engine = SearchEngine(make_tiny_collection())
    out = engine.search("quick fox", scheme="count-matches")
    scores = {r.doc_id: r.score for r in out}
    # Doc 4: 'quick' x2, 'fox' x2 -> 4 matches.
    assert scores[4] == 4.0
    assert scores[0] == 1.0


def test_custom_scheme_score_consistency():
    """The optimizer must keep the match count identical across the
    canonical and optimized plans — counting is maximally sensitive to
    multiplicity bugs."""
    engine = SearchEngine(make_tiny_collection())
    query = 'quick (fox | "lazy dog") show'
    optimized = engine.search(query, scheme=CountMatches())
    canonical = engine.search(query, scheme=CountMatches(), optimize=False)
    assert [(r.doc_id, r.score) for r in optimized] == \
        [(r.doc_id, r.score) for r in canonical]


def test_custom_scheme_gets_eager_aggregation():
    engine = SearchEngine(make_tiny_collection())
    out = engine.search("quick fox", scheme=CountMatches())
    assert "eager-aggregation" in out.applied_optimizations


def test_non_commutative_custom_scheme_keeps_sort():
    class OrderSensitive(CountMatches):
        name = "order-sensitive"
        properties = SchemeProperties(
            directional="col",
            alt_commutes=False,
            alt_associates=Associativity.LEFT,
            alt_multiplies=False,
        )

        def alt(self, left, right):
            return left * 2 + right

        # alt changed, so the inherited constant-time times() no longer
        # agrees with folding; fall back to the always-correct fold.
        times = ScoringScheme.times

    engine = SearchEngine(make_tiny_collection())
    out = engine.search("quick fox", scheme=OrderSensitive())
    assert "sort-elimination" not in out.applied_optimizations
    assert "eager-aggregation" not in out.applied_optimizations
    # Still correct: canonical and "optimized" agree.
    canonical = engine.search("quick fox", scheme=OrderSensitive(), optimize=False)
    assert [(r.doc_id, r.score) for r in out] == \
        [(r.doc_id, r.score) for r in canonical]


def test_custom_predicate_end_to_end():
    impl = PredicateImpl(
        "EVENGAP",
        lambda p, c: (max(p) - min(p)) % 2 == 0,
        2,
        2,
        0,
        forward_class=False,
    )
    register_predicate(impl)
    engine = SearchEngine(make_tiny_collection())
    out = engine.search("(quick fox)EVENGAP", scheme="sumbest")
    table = engine.match_table("(quick fox)EVENGAP")
    for row in table.rows:
        assert (row[2] - row[1]) % 2 == 0
    assert len(out) == len(table.documents())
