"""End-to-end edge cases a downstream user will hit."""

import pytest

from repro.api import SearchEngine
from repro.errors import QuerySyntaxError


@pytest.fixture
def engine():
    e = SearchEngine()
    e.add("alpha beta alpha beta alpha", title="repeats")
    e.add("alpha", title="single")
    e.add("beta gamma delta epsilon zeta eta theta", title="long")
    e.add("", title="empty")
    return e


def test_empty_document_tolerated(engine):
    assert len(engine.search("alpha")) == 2


def test_repeated_keyword_in_query(engine):
    """'alpha alpha' needs two (possibly equal-position?) occurrences —
    two distinct variables over the same postings."""
    out = engine.search("alpha alpha", scheme="meansum")
    docs = [r.doc_id for r in out]
    assert set(docs) == {0, 1}
    table = engine.match_table("alpha alpha")
    # Doc 0: 3 positions -> 9 combinations; doc 1: 1 -> 1.
    assert len(table.for_document(0)) == 9
    assert len(table.for_document(1)) == 1


def test_phrase_of_identical_words(engine):
    out = engine.search('"alpha alpha"')
    assert [r.doc_id for r in out] == []  # never adjacent to itself here
    e2 = SearchEngine()
    e2.add("echo echo location")
    assert [r.doc_id for r in e2.search('"echo echo"')] == [0]


def test_window_of_one_token(engine):
    """WINDOW[1] requires identical positions — distinct keywords can
    never satisfy it."""
    assert len(engine.search("(alpha beta)WINDOW[1]")) == 0


def test_query_term_absent_from_collection(engine):
    assert len(engine.search("alpha missingword")) == 0
    assert len(engine.search("alpha | missingword")) == 2


def test_unicode_text_is_analyzed(tmp_path):
    e = SearchEngine()
    e.add("Caffè CRÈME brûlée")
    # SimpleAnalyzer splits on non-ascii-alphanumerics: accents split
    # tokens, but the engine must not crash and must match consistently.
    out = e.search("caff")
    assert [r.doc_id for r in out] == [0]


def test_very_long_phrase(engine):
    e = SearchEngine()
    e.add("one two three four five six seven eight nine ten")
    out = e.search('"three four five six seven"')
    assert [r.doc_id for r in out] == [0]


def test_whitespace_only_query_rejected(engine):
    with pytest.raises(QuerySyntaxError):
        engine.search("   ")


def test_single_document_collection():
    e = SearchEngine()
    e.add("lonely document with words")
    out = e.search("lonely words", scheme="meansum")
    assert len(out) == 1 and out[0].score > 0


def test_all_schemes_on_empty_result(engine):
    from repro.sa.registry import available_schemes

    for scheme in available_schemes():
        assert len(engine.search("qzx", scheme=scheme)) == 0


def test_large_top_k_is_safe(engine):
    assert len(engine.search("alpha", top_k=10**6)) == 2
