"""SearchEngine facade tests."""

import pytest

from repro.api import SearchEngine
from repro.errors import GraftError
from repro.graft.optimizer import OptimizerOptions
from repro.sa.registry import get_scheme

from tests.conftest import make_tiny_collection


@pytest.fixture
def engine():
    return SearchEngine(make_tiny_collection())


def test_docstring_example():
    e = SearchEngine()
    e.add("a quick brown fox")
    e.add("the fox jumped over the quick dog")
    results = e.search('"quick brown fox"', scheme="sumbest")
    assert [r.doc_id for r in results] == [0]


def test_results_ranked_descending(engine):
    out = engine.search("quick fox", scheme="sumbest")
    scores = [r.score for r in out]
    assert scores == sorted(scores, reverse=True)


def test_results_carry_titles():
    e = SearchEngine()
    e.add("quick fox", title="alpha")
    (result,) = e.search("fox").results
    assert result.title == "alpha"


def test_top_k_truncates(engine):
    full = engine.search("quick fox")
    top = engine.search("quick fox", top_k=2)
    assert len(top) == 2
    assert [r.doc_id for r in top] == [r.doc_id for r in full][:2]


def test_scheme_by_instance(engine):
    by_name = engine.search("quick fox", scheme="meansum")
    by_instance = engine.search("quick fox", scheme=get_scheme("meansum"))
    assert [(r.doc_id, r.score) for r in by_name] == \
        [(r.doc_id, r.score) for r in by_instance]


def test_unknown_scheme_rejected(engine):
    from repro.errors import UnknownSchemeError

    with pytest.raises(UnknownSchemeError):
        engine.search("fox", scheme="nope")


def test_bad_query_type_rejected(engine):
    with pytest.raises(GraftError):
        engine.search(42)


def test_optimized_and_canonical_agree(engine):
    a = engine.search("quick (fox | dog)", scheme="meansum", optimize=True)
    b = engine.search("quick (fox | dog)", scheme="meansum", optimize=False)
    assert [(r.doc_id, pytest.approx(r.score)) for r in a] == \
        [(r.doc_id, r.score) for r in b]
    assert b.applied_optimizations == []


def test_index_rebuilt_after_mutation():
    e = SearchEngine()
    e.add("quick fox")
    assert len(e.search("fox")) == 1
    e.add("another fox here")
    assert len(e.search("fox")) == 2


def test_outcome_is_sequence(engine):
    out = engine.search("fox")
    assert len(out) == len(out.results)
    assert out[0] == out.results[0]
    assert list(iter(out)) == out.results


def test_match_table_materialization(engine):
    table = engine.match_table("quick fox")
    assert table.columns == ("p0", "p1")
    assert 0 in table.documents()
    # Doc 4 has 2 quick x 2 fox = 4 matches.
    assert len(table.for_document(4)) == 4


def test_explain_shows_scheme_and_rewrites(engine):
    text = engine.explain("quick fox", scheme="anysum")
    assert "anysum" in text
    assert "alternate-elimination" in text
    assert "delta[doc]" in text


def test_explain_canonical(engine):
    text = engine.explain("quick fox", scheme="anysum", optimize=False)
    assert "rewrites: none" in text
    assert "tau[" in text


def test_optimizer_options_forwarded(engine):
    out = engine.search(
        "quick fox",
        scheme="anysum",
        options=OptimizerOptions(pre_counting=False),
    )
    assert "pre-counting" not in out.applied_optimizations


def test_metrics_exposed(engine):
    out = engine.search("quick fox", scheme="bestsum-mindist")
    assert out.metrics.positions_scanned > 0


def test_parse_uses_collection_analyzer():
    e = SearchEngine()
    e.add("Quick FOX")
    q = e.parse("QUICK")
    assert q.keywords == ("quick",)


def test_empty_result_for_unmatched_query(engine):
    assert len(engine.search("zebra")) == 0


# -- input validation and bulk ingestion ------------------------------------


@pytest.mark.parametrize("bad", [0, -1, -100, 2.5, True, "3"])
def test_invalid_top_k_rejected(engine, bad):
    with pytest.raises(GraftError):
        engine.search("quick fox", top_k=bad)


def test_top_k_one_returns_single_best(engine):
    full = engine.search("quick fox")
    out = engine.search("quick fox", top_k=1)
    assert [(r.doc_id, r.score) for r in out] == [
        (full[0].doc_id, full[0].score)
    ]


def test_add_many_returns_assigned_ids():
    e = SearchEngine()
    first = e.add("a lone seed document")
    ids = e.add_many(["quick fox", "lazy dog", "quick dog"])
    assert ids == [first + 1, first + 2, first + 3]
    assert {r.doc_id for r in e.search("quick")} == {ids[0], ids[2]}


def test_add_many_accepts_any_iterable():
    e = SearchEngine()
    ids = e.add_many(f"document number {i}" for i in range(5))
    assert ids == [0, 1, 2, 3, 4]
    assert len(e.collection) == 5


@pytest.mark.parametrize("bad_id", [-1, 99, "0", 1.0, None])
def test_matches_out_of_range_doc_id_rejected(engine, bad_id):
    with pytest.raises(GraftError) as info:
        engine.matches("quick fox", bad_id)
    msg = str(info.value)
    assert "doc_id" in msg
    if isinstance(bad_id, int):
        # The message names the offending id and the collection size.
        assert str(bad_id) in msg and str(len(engine.collection)) in msg


def test_snippet_out_of_range_doc_id_rejected(engine):
    with pytest.raises(GraftError) as info:
        engine.snippet("quick fox", len(engine.collection))
    assert "doc_id" in str(info.value)
