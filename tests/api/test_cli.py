"""CLI tests (invoked in-process)."""

import pytest

from repro.cli import main


@pytest.fixture
def docs_dir(tmp_path):
    d = tmp_path / "docs"
    d.mkdir()
    (d / "wine.txt").write_text(
        "wine is a free software windows emulator for unix"
    )
    (d / "emulator.txt").write_text(
        "an emulator lets one computer behave like another computer"
    )
    (d / "glass.txt").write_text(
        "a window is an opening in a wall fitted with glass"
    )
    return d


@pytest.fixture
def index_dir(docs_dir, tmp_path):
    out = tmp_path / "idx"
    assert main(["index", str(docs_dir), str(out)]) == 0
    return out


def test_index_reports_counts(docs_dir, tmp_path, capsys):
    main(["index", str(docs_dir), str(tmp_path / 'i')])
    out = capsys.readouterr().out
    assert "indexed 3 documents" in out


def test_index_empty_directory_fails(tmp_path, capsys):
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["index", str(empty), str(tmp_path / "i")]) == 1
    assert "no .txt files" in capsys.readouterr().err


def test_search_ranks_and_titles(index_dir, capsys):
    assert main(["search", str(index_dir), "windows emulator"]) == 0
    out = capsys.readouterr().out
    assert "wine" in out
    assert out.strip().startswith("1.")


def test_search_phrase(index_dir, capsys):
    assert main(["search", str(index_dir), '"free software"']) == 0
    out = capsys.readouterr().out
    assert "wine" in out and "glass" not in out


def test_search_no_matches(index_dir, capsys):
    assert main(["search", str(index_dir), "zebra"]) == 0
    assert "no matches" in capsys.readouterr().out


def test_search_with_scheme_and_topk(index_dir, capsys):
    assert main([
        "search", str(index_dir), "emulator", "--scheme", "meansum",
        "--top-k", "1",
    ]) == 0
    out = capsys.readouterr().out
    assert len(out.strip().splitlines()) == 1


def test_search_unknown_scheme_errors(index_dir, capsys):
    assert main(["search", str(index_dir), "emulator", "--scheme", "x"]) == 2
    assert "error:" in capsys.readouterr().err


def test_search_bad_query_errors(index_dir, capsys):
    assert main(["search", str(index_dir), "(unbalanced"]) == 2
    assert "error:" in capsys.readouterr().err


def test_explain_shows_plan(index_dir, capsys):
    assert main(["explain", str(index_dir), "windows emulator",
                 "--scheme", "anysum"]) == 0
    out = capsys.readouterr().out
    assert "scheme: anysum" in out
    assert "alternate-elimination" in out
    assert "delta[doc]" in out


def test_explain_canonical(index_dir, capsys):
    assert main(["explain", str(index_dir), "windows emulator",
                 "--no-optimize"]) == 0
    out = capsys.readouterr().out
    assert "rewrites: none" in out
    assert "tau[" in out


def test_schemes_lists_all(capsys):
    assert main(["schemes"]) == 0
    out = capsys.readouterr().out
    for name in ("anysum", "meansum", "bestsum-mindist", "lucene"):
        assert name in out
    assert "constant" in out
    assert "positional" in out


def test_search_max_rows_error_mode(index_dir, capsys):
    assert main(["search", str(index_dir), "windows emulator",
                 "--max-rows", "1"]) == 2
    assert "error:" in capsys.readouterr().err


def test_search_max_rows_partial_mode(index_dir, capsys):
    assert main(["search", str(index_dir), "windows emulator",
                 "--max-rows", "1", "--on-limit", "partial"]) == 0
    captured = capsys.readouterr()
    assert "partial results" in captured.err
    assert "max_rows" in captured.err


def test_search_generous_limits_match_unrestricted(index_dir, capsys):
    assert main(["search", str(index_dir), "windows emulator"]) == 0
    unrestricted = capsys.readouterr().out
    assert main(["search", str(index_dir), "windows emulator",
                 "--timeout-ms", "60000", "--max-rows", "1000000",
                 "--max-matches-per-doc", "1000000"]) == 0
    governed = capsys.readouterr()
    assert governed.out == unrestricted
    assert "partial" not in governed.err


def test_search_invalid_limit_flag_errors(index_dir, capsys):
    assert main(["search", str(index_dir), "emulator",
                 "--timeout-ms", "-5"]) == 2
    assert "error:" in capsys.readouterr().err


def test_index_with_sentences_enables_samesentence(tmp_path, capsys):
    docs = tmp_path / "sdocs"
    docs.mkdir()
    (docs / "a.txt").write_text("the fox runs fast. the dog sleeps here.")
    (docs / "b.txt").write_text("the fox chases the dog around the yard.")
    out = tmp_path / "sidx"
    assert main(["index", str(docs), str(out), "--sentences"]) == 0
    capsys.readouterr()
    assert main(["search", str(out), "(fox dog)SAMESENTENCE"]) == 0
    text = capsys.readouterr().out
    # Only b.txt holds fox and dog in one sentence.
    assert "[1] b" in text and "[0] a" not in text


class TestStoreCommands:
    def test_index_writes_a_store(self, index_dir):
        from repro.index.store import IndexStore

        assert IndexStore.is_store(index_dir)

    def test_verify_clean_store(self, index_dir, capsys):
        assert main(["verify", str(index_dir)]) == 0
        out = capsys.readouterr().out
        assert "store OK" in out
        assert "sha256 verified" in out

    def test_verify_corrupt_store_names_the_file(self, index_dir, capsys):
        target = next(index_dir.glob("gen-*/postings.npz"))
        data = bytearray(target.read_bytes())
        data[len(data) // 2] ^= 0x01
        target.write_bytes(bytes(data))
        assert main(["verify", str(index_dir)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "postings.npz" in err

    def test_search_corrupt_store_is_a_typed_error(self, index_dir, capsys):
        (index_dir / "MANIFEST").write_bytes(b"garbage")
        assert main(["search", str(index_dir), "emulator"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_checkpoint_compacts_wal(self, index_dir, capsys):
        from repro.api import SearchEngine

        with SearchEngine.open(index_dir) as engine:
            engine.add("a fresh walled document about emulators")
        capsys.readouterr()
        assert main(["checkpoint", str(index_dir)]) == 0
        out = capsys.readouterr().out
        assert "checkpointed 4 documents" in out
        assert (index_dir / "wal.jsonl").stat().st_size == 0

    def test_search_warns_about_pending_wal_documents(self, index_dir, capsys):
        from repro.api import SearchEngine

        with SearchEngine.open(index_dir) as engine:
            engine.add("pending wal document")
        capsys.readouterr()
        assert main(["search", str(index_dir), "emulator"]) == 0
        assert "not yet checkpointed" in capsys.readouterr().err


class TestLegacyLayoutCli:
    @pytest.fixture
    def legacy_dir(self, docs_dir, tmp_path):
        """A v1 (pre-store) index directory, as old CLI versions wrote."""
        import json

        from repro.corpus.analyzer import SimpleAnalyzer
        from repro.index.builder import IndexBuilder
        from repro.index.io import save_index

        analyzer = SimpleAnalyzer()
        builder = IndexBuilder()
        titles = []
        for doc_id, path in enumerate(sorted(docs_dir.glob("*.txt"))):
            analyzed = analyzer.analyze(path.read_text())
            builder.add_document(doc_id, analyzed.tokens,
                                 analyzed.sentence_starts)
            titles.append(path.stem)
        out = save_index(builder.build(), tmp_path / "v1idx")
        (out / "titles.json").write_text(json.dumps(titles))
        return out

    def test_search_still_reads_legacy_layout(self, legacy_dir, capsys):
        assert main(["search", str(legacy_dir), "windows emulator"]) == 0
        out = capsys.readouterr().out
        assert "wine" in out

    def test_verify_reports_legacy_layout(self, legacy_dir, capsys):
        assert main(["verify", str(legacy_dir)]) == 0
        assert "legacy (v1) index OK" in capsys.readouterr().out

    def test_missing_titles_warns_instead_of_silent(self, legacy_dir, capsys):
        (legacy_dir / "titles.json").unlink()
        assert main(["search", str(legacy_dir), "windows emulator"]) == 0
        captured = capsys.readouterr()
        assert "warning:" in captured.err and "titles.json" in captured.err
        # Results still print, with the doc-id fallback title.
        assert captured.out.strip().startswith("1.")
        assert "doc2" in captured.out


def test_index_without_sentences_uses_fallback(tmp_path, capsys):
    docs = tmp_path / "pdocs"
    docs.mkdir()
    (docs / "a.txt").write_text("the fox runs fast. the dog sleeps here.")
    out = tmp_path / "pidx"
    assert main(["index", str(docs), str(out)]) == 0
    capsys.readouterr()
    assert main(["search", str(out), "(fox dog)SAMESENTENCE"]) == 0
    # Fixed-span fallback (20 tokens): the whole document is one bucket.
    assert "[0] a" in capsys.readouterr().out
