"""Concurrent ``search()`` and ``checkpoint()`` on one engine.

``checkpoint()`` compacts the WAL into a new store generation and bumps
the engine's cache generation, but never mutates the loaded collection
or index — so searches racing a checkpoint must complete normally on
the already-loaded state with bit-identical scores.  The score audit
gate runs in strict mode throughout: any divergence between the
optimized plan and the canonical score-isolated plan raises instead of
passing silently.
"""

from __future__ import annotations

import threading

from repro.api import SearchEngine
from repro.index.store import IndexStore
from repro.obs.audit import AuditConfig, Auditor

TEXTS = [
    "the quick brown fox jumps over the lazy dog",
    "a quick quick fox and a slow dog walk home",
    "quick release fox terrier dog show dog fox",
    "slow brown dog naps while the fox watches",
    "quick dog quick fox quick everything here",
]
QUERIES = ("quick fox", "quick (fox | dog)", '"quick fox"')


def test_searches_racing_checkpoint_are_bit_identical(tmp_path):
    root = tmp_path / "store"
    with SearchEngine.open(root) as setup:
        for i, text in enumerate(TEXTS[:3]):
            setup.add(text, title=f"doc{i}")
        setup.checkpoint()

    engine = SearchEngine.open(root)
    # open() has no audit parameter (stores are audited via `repro
    # verify`); arm the strict gate directly for the race.
    engine._auditor = Auditor(AuditConfig(rate=1.0, mode="strict"))
    try:
        # WAL-append two more docs: the checkpoint below has real work.
        for i, text in enumerate(TEXTS[3:], start=3):
            engine.add(text, title=f"doc{i}")

        reference = {
            q: tuple(
                (r.doc_id, r.score) for r in engine.search(q).results
            )
            for q in QUERIES
        }
        errors: list[BaseException] = []
        mismatches: list[str] = []
        start = threading.Barrier(5)
        checkpointed = threading.Event()
        generations: list[str] = []

        def searcher(seed: int) -> None:
            try:
                start.wait()
                rounds = 0
                # Keep searching until well past the checkpoint.
                while not checkpointed.is_set() or rounds < 30:
                    q = QUERIES[(seed + rounds) % len(QUERIES)]
                    got = tuple(
                        (r.doc_id, r.score)
                        for r in engine.search(q).results
                    )
                    if got != reference[q]:
                        mismatches.append(
                            f"{q!r}: {got} != {reference[q]}"
                        )
                    rounds += 1
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        def checkpointer() -> None:
            try:
                start.wait()
                generations.append(engine.checkpoint())
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                checkpointed.set()

        threads = [
            threading.Thread(target=searcher, args=(i,)) for i in range(4)
        ] + [threading.Thread(target=checkpointer)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors, errors  # strict audit never tripped
        assert not mismatches, mismatches[:3]
        assert checkpointed.is_set() and generations

        # The checkpoint really happened: the store's manifest moved to
        # the new generation and carries all five documents.
        report = IndexStore.open(root).verify()
        assert report["generation"] == generations[0]
        assert report["doc_count"] == len(TEXTS)
        assert report["wal_pending"] == 0

        # And post-checkpoint searches still match bit-identically.
        for q in QUERIES:
            got = tuple(
                (r.doc_id, r.score) for r in engine.search(q).results
            )
            assert got == reference[q]
    finally:
        engine.close()

    # A fresh reader of the new generation agrees with the scores the
    # racing searches saw (same corpus, same algebra, same floats).
    fresh = SearchEngine.load(root)
    for q in QUERIES:
        got = tuple((r.doc_id, r.score) for r in fresh.search(q).results)
        assert got == reference[q]
