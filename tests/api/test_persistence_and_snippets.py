"""Engine persistence and hit-highlighting helpers."""

import pytest

from repro.api import SearchEngine
from repro.corpus.io import load_collection, save_collection
from repro.errors import IndexError_

from tests.conftest import make_tiny_collection


class TestCollectionIO:
    def test_round_trip(self, tmp_path, tiny_collection):
        save_collection(tiny_collection, tmp_path)
        loaded = load_collection(tmp_path)
        assert len(loaded) == len(tiny_collection)
        for a, b in zip(loaded, tiny_collection):
            assert a.tokens == b.tokens
            assert a.title == b.title

    def test_sentence_starts_survive(self, tmp_path):
        from repro.corpus.analyzer import SentenceAnalyzer
        from repro.corpus.collection import DocumentCollection

        col = DocumentCollection(analyzer=SentenceAnalyzer())
        col.add_text("one sentence here. another one there.")
        save_collection(col, tmp_path)
        loaded = load_collection(tmp_path)
        assert loaded[0].sentence_starts == col[0].sentence_starts

    def test_missing_raises(self, tmp_path):
        with pytest.raises(IndexError_):
            load_collection(tmp_path / "none")


class TestEngineSaveLoad:
    def test_identical_results_after_reload(self, tmp_path):
        engine = SearchEngine(make_tiny_collection())
        before = engine.search('quick (fox | "lazy dog")', scheme="meansum")
        engine.save(tmp_path / "engine")
        restored = SearchEngine.load(tmp_path / "engine")
        after = restored.search('quick (fox | "lazy dog")', scheme="meansum")
        assert [(r.doc_id, r.score, r.title) for r in before] == \
            [(r.doc_id, r.score, r.title) for r in after]

    def test_loaded_engine_can_keep_indexing(self, tmp_path):
        engine = SearchEngine(make_tiny_collection())
        engine.save(tmp_path / "engine")
        restored = SearchEngine.load(tmp_path / "engine")
        restored.add("a brand new fox appears")
        results = restored.search("fox")
        assert len(results) == len(engine.search("fox")) + 1


class TestDurableOpen:
    """Engine-level surface of the crash-safe store (details in
    tests/index/test_store.py and test_store_faults.py)."""

    def test_open_add_survives_without_explicit_save(self, tmp_path):
        with SearchEngine.open(tmp_path / "engine") as engine:
            engine.add("a wal protected fox", title="walled")
        restored = SearchEngine.load(tmp_path / "engine")
        assert [r.title for r in restored.search("fox")] == ["walled"]

    def test_save_then_open_then_checkpoint_round_trip(self, tmp_path):
        engine = SearchEngine(make_tiny_collection())
        engine.save(tmp_path / "engine")
        with SearchEngine.open(tmp_path / "engine") as writer:
            writer.add("a brand new fox appears")
            writer.checkpoint()
        restored = SearchEngine.load(tmp_path / "engine")
        assert len(restored.search("fox")) == \
            len(engine.search("fox")) + 1

    def test_store_path_property(self, tmp_path):
        engine = SearchEngine()
        assert engine.store_path is None
        with SearchEngine.open(tmp_path / "engine") as opened:
            assert opened.store_path == tmp_path / "engine"


class TestMatchesAndSnippets:
    @pytest.fixture
    def engine(self):
        return SearchEngine(make_tiny_collection())

    def test_matches_maps_variables_to_offsets(self, engine):
        (match,) = engine.matches('"quick fox"', doc_id=4, limit=1)
        assert match == {"p0": 0, "p1": 1}

    def test_matches_limit(self, engine):
        # Doc 4 has 2x2 quick/fox combinations.
        found = engine.matches("quick fox", doc_id=4, limit=3)
        assert len(found) == 3

    def test_matches_absent_document(self, engine):
        assert engine.matches("quick fox", doc_id=5) == []

    def test_matches_report_empty_cells(self, engine):
        found = engine.matches("quick (fox | terrier)", doc_id=0, limit=10)
        assert any(m["p2"] is None for m in found)

    def test_snippet_shows_context(self, engine):
        text = engine.snippet("lazy dog", doc_id=0)
        assert "lazy" in text and "dog" in text

    def test_snippet_empty_for_non_matching_doc(self, engine):
        assert engine.snippet("zebra", doc_id=0) == ""
