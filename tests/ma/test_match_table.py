"""Match-table value-type tests."""

from repro.ma.match_table import (
    ANY_POSITION,
    MatchTable,
    cell_repr,
    cell_sort_key,
    row_sort_key,
)


def test_cell_order_any_then_positions_then_empty():
    cells = [None, 5, ANY_POSITION, 0, 100]
    ordered = sorted(cells, key=cell_sort_key)
    assert ordered == [ANY_POSITION, 0, 5, 100, None]


def test_row_order_is_lexicographic_doc_major():
    rows = [
        (1, 5, None),
        (0, 9, 1),
        (1, 5, 3),
        (0, 2, 7),
    ]
    assert sorted(rows, key=row_sort_key) == [
        (0, 2, 7),
        (0, 9, 1),
        (1, 5, 3),
        (1, 5, None),
    ]


def test_cell_repr():
    assert cell_repr(None) == "-"
    assert cell_repr(ANY_POSITION) == "*"
    assert cell_repr(12) == "12"


def test_table_sorted_copy():
    t = MatchTable(("a",), [(1, 2), (0, 5), (1, None)])
    s = t.sorted()
    assert s.rows == [(0, 5), (1, 2), (1, None)]
    assert t.rows[0] == (1, 2)  # original untouched


def test_for_document_filters():
    t = MatchTable(("a",), [(1, 2), (0, 5), (1, 3)])
    assert t.for_document(1).rows == [(1, 2), (1, 3)]


def test_documents_distinct_sorted():
    t = MatchTable(("a",), [(3, 1), (1, 2), (3, 9)])
    assert t.documents() == [1, 3]


def test_column_values():
    t = MatchTable(("a", "b"), [(0, 1, 2), (0, 3, None)])
    assert t.column_values("b") == [2, None]


def test_str_renders_all_rows():
    t = MatchTable(("a",), [(0, 1), (0, None)])
    text = str(t)
    assert "1" in text and "-" in text
