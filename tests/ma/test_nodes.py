"""Logical plan node structural tests."""

import pytest

from repro.errors import PlanError
from repro.ma.nodes import (
    Atom,
    GroupCount,
    Join,
    PositionProject,
    PreCountAtom,
    Select,
    Sort,
    Union,
    merge_vars,
)
from repro.mcalc.ast import Pred


def test_atom_schema():
    a = Atom("p0", "fox")
    assert a.position_vars == ("p0",)
    assert not a.counted


def test_precount_atom_is_counted():
    assert PreCountAtom("p0", "fox").counted


def test_join_concatenates_schemas():
    j = Join(Atom("a", "x"), Atom("b", "y"))
    assert j.position_vars == ("a", "b")


def test_join_schema_deduplicates():
    assert merge_vars(("a", "b"), ("b", "c")) == ("a", "b", "c")


def test_union_merges_schemas():
    u = Union(Atom("a", "x"), Join(Atom("b", "y"), Atom("c", "z")))
    assert u.position_vars == ("a", "b", "c")


def test_counted_propagates_through_join():
    j = Join(GroupCount(PositionProject(Atom("a", "x"), ("a",))), Atom("b", "y"))
    assert j.counted


def test_with_children_rebuilds():
    j = Join(Atom("a", "x"), Atom("b", "y"), (Pred("ORDER", ("a", "b")),))
    j2 = j.with_children(Atom("a", "x2"), Atom("b", "y"))
    assert j2.left.keyword == "x2"
    assert j2.predicates == j.predicates


def test_leaf_rejects_children():
    with pytest.raises(PlanError):
        Atom("a", "x").with_children(Atom("b", "y"))


def test_labels_are_descriptive():
    assert "fox" in Atom("p", "fox").label()
    assert "zigzag" in Join(Atom("a", "x"), Atom("b", "y")).label()
    assert "sigma" in Select(Atom("a", "x"), (Pred("ORDER", ("a", "a")),)).label()
    assert "tau" in Sort(Atom("a", "x"), ("a",)).label()


def test_walk_is_preorder():
    j = Join(Atom("a", "x"), Atom("b", "y"))
    labels = [type(n).__name__ for n in j.walk()]
    assert labels == ["Join", "Atom", "Atom"]
