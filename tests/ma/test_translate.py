"""MCalc-to-MA translation: structure and semantics-vs-oracle."""

import pytest

from repro.exec.compile import compile_plan
from repro.exec.engine import make_runtime
from repro.graft.canonical import make_query_info
from repro.ma.match_table import row_sort_key
from repro.ma.nodes import Atom, Join, Select, Sort, Union
from repro.ma.translate import matching_subplan
from repro.mcalc.oracle import match_table
from repro.mcalc.parser import parse_query
from repro.sa.registry import get_scheme

from tests.conftest import TINY_QUERIES


def run_matching(query, index):
    """Execute the canonical matching subplan; rows as (doc, cells...) in
    query column order."""
    scheme = get_scheme("sumbest")
    info = make_query_info(query, scheme)
    runtime = make_runtime(index, scheme, info)
    op = compile_plan(matching_subplan(query), runtime)
    order = [op.schema.position_index(v) for v in query.free_vars]
    rows = []
    while True:
        group = op.next_doc()
        if group is None:
            break
        doc, row_iter = group
        rows.extend((doc,) + tuple(r[i] for i in order) for r in row_iter)
    return rows


class TestStructure:
    def test_canonical_shape_sort_select_joins(self):
        q = parse_query("(a b)WINDOW[5] c")
        plan = matching_subplan(q)
        assert isinstance(plan, Sort)
        assert isinstance(plan.child, Select)

    def test_right_deep_in_keyword_order(self):
        q = parse_query("a b c")
        plan = matching_subplan(q)
        join = plan.child  # no predicates -> no Select
        assert isinstance(join, Join)
        assert isinstance(join.left, Atom) and join.left.keyword == "a"
        inner = join.right
        assert isinstance(inner.left, Atom) and inner.left.keyword == "b"
        assert isinstance(inner.right, Atom) and inner.right.keyword == "c"

    def test_all_predicates_in_one_top_selection(self):
        """Canonical Plan 7: selections follow all joins."""
        q = parse_query('(a b)WINDOW[50] (c | "d e")')
        plan = matching_subplan(q)
        select = plan.child
        assert isinstance(select, Select)
        assert sorted(p.name for p in select.predicates) == ["DISTANCE", "WINDOW"]

    def test_disjunction_becomes_union(self):
        q = parse_query("a (b | c)")
        plan = matching_subplan(q)
        kinds = [type(n).__name__ for n in plan.walk()]
        assert "Union" in kinds

    def test_sort_vars_are_query_order(self):
        q = parse_query("b a")
        plan = matching_subplan(q)
        assert plan.sort_vars == ("p0", "p1")


class TestSemantics:
    @pytest.mark.parametrize("text", TINY_QUERIES)
    def test_subplan_rows_equal_oracle(self, text, tiny_collection, tiny_index):
        q = parse_query(text)
        got = run_matching(q, tiny_index)
        want = match_table(q, tiny_collection).rows
        assert sorted(got, key=row_sort_key) == sorted(want, key=row_sort_key)

    def test_q3_over_wine_matches_figure_2(self, wine_env):
        col, idx, _ = wine_env
        q = parse_query('(windows emulator)WINDOW[50] (foss | "free software")')
        got = run_matching(q, idx)
        assert sorted(got, key=row_sort_key) == [
            (0, 27, 64, 179, None, None),
            (0, 27, 64, None, 3, 4),
            (0, 42, 64, 179, None, None),
            (0, 42, 64, None, 3, 4),
        ]
